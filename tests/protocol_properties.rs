//! Property-based tests on the SecDDR protocol: soundness (honest traffic
//! always verifies) and completeness of detection (randomized tampering is
//! always caught), over both encryption modes.

use proptest::prelude::*;

use secddr::crypto::crc::WriteAddress;
use secddr::functional::bus::{Interposer, ReadResponse, WriteAction, WriteTransaction};
use secddr::functional::dimm::WriteOutcome;
use secddr::functional::{EncryptionMode, SecureChannel};

#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u8, u8),
    Read(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(a, v)| Op::Write(a, v)),
        any::<u8>().prop_map(Op::Read),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: arbitrary honest operation sequences never fail
    /// verification and always return the latest written value.
    #[test]
    fn honest_sequences_verify(ops in proptest::collection::vec(op_strategy(), 1..80),
                               seed in any::<u64>(), xts in any::<bool>()) {
        let mode = if xts { EncryptionMode::Xts } else { EncryptionMode::Ctr };
        let mut ch = SecureChannel::new_attested(mode, seed);
        let mut model = std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Write(slot, v) => {
                    let addr = u64::from(slot) * 64;
                    let data = [v; 64];
                    prop_assert_eq!(ch.write(addr, &data), WriteOutcome::Committed);
                    model.insert(addr, data);
                }
                Op::Read(slot) => {
                    let addr = u64::from(slot) * 64;
                    if let Some(expected) = model.get(&addr) {
                        let got = ch.read(addr);
                        prop_assert!(got.is_ok(), "honest read failed at {addr:#x}");
                        prop_assert_eq!(&got.expect("checked"), expected);
                    }
                }
            }
        }
    }

    /// Detection: flipping any single bit of any read response (data or
    /// E-MAC lane) fails verification.
    #[test]
    fn any_response_bit_flip_is_detected(seed in any::<u64>(),
                                         flip_emac in any::<bool>(),
                                         byte in 0usize..64, bit in 0u8..8) {
        #[derive(Debug)]
        struct Flip {
            emac: bool,
            byte: usize,
            bit: u8,
        }
        impl Interposer for Flip {
            fn on_read_resp(&mut self, resp: &mut ReadResponse) {
                if self.emac {
                    resp.emac ^= 1 << (self.byte % 64);
                } else {
                    resp.data[self.byte] ^= 1 << self.bit;
                }
            }
        }
        let mut ch = SecureChannel::with_interposer(
            EncryptionMode::Xts,
            seed,
            Flip { emac: flip_emac, byte, bit },
        );
        ch.write(0x4000, &[0x5A; 64]);
        prop_assert!(ch.read(0x4000).is_err());
    }

    /// Detection: corrupting any field of a write's observed address is
    /// rejected by the encrypted eWCRC at the chip.
    #[test]
    fn any_write_address_corruption_is_rejected(seed in any::<u64>(),
                                                field in 0u8..5, xor in 1u32..256) {
        #[derive(Debug)]
        struct Corrupt {
            field: u8,
            xor: u32,
        }
        impl Interposer for Corrupt {
            fn on_write(&mut self, tx: &mut WriteTransaction) -> WriteAction {
                let a: &mut WriteAddress = &mut tx.addr;
                match self.field {
                    0 => a.rank ^= (self.xor & 1) as u8,
                    1 => a.bank_group ^= (self.xor & 3) as u8,
                    2 => a.bank ^= (self.xor & 3) as u8,
                    3 => a.row ^= self.xor,
                    _ => a.column ^= (self.xor & 0x7F) as u16,
                }
                WriteAction::Deliver
            }
        }
        // Guarantee the corruption actually changes the address.
        prop_assume!(match field {
            0 => xor & 1 != 0,
            1 | 2 => xor & 3 != 0,
            4 => xor & 0x7F != 0,
            _ => true,
        });
        let mut ch = SecureChannel::with_interposer(
            EncryptionMode::Xts,
            seed,
            Corrupt { field, xor },
        );
        prop_assert_eq!(ch.write(0x9000, &[1; 64]), WriteOutcome::EwcrcRejected);
    }

    /// Detection: replaying any earlier response over any later read fails.
    #[test]
    fn replay_of_any_earlier_response_fails(seed in any::<u64>(),
                                            capture in 0u64..6, gap in 1u64..6) {
        use secddr::functional::attacks::BusReplay;
        let replay_on = capture + gap;
        let mut ch = SecureChannel::with_interposer(
            EncryptionMode::Xts,
            seed,
            BusReplay::new(capture, replay_on),
        );
        for i in 0..=replay_on {
            let addr = (i % 3) * 64; // a few addresses, revisited
            ch.write(addr, &[i as u8; 64]);
            let r = ch.read(addr);
            if i == replay_on {
                prop_assert!(r.is_err(), "replayed response verified");
            } else {
                prop_assert!(r.is_ok(), "honest read {i} failed");
            }
        }
    }

    /// Confidentiality sanity: bus ciphertext never equals plaintext for
    /// non-degenerate data, and XTS ciphertext differs across addresses.
    #[test]
    fn bus_data_is_encrypted(seed in any::<u64>(), v in any::<u8>()) {
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, seed);
        let data = [v; 64];
        let tx_a = ch.processor.begin_write(0x1000, &data);
        let tx_b = ch.processor.begin_write(0x2000, &data);
        prop_assert_ne!(tx_a.data, data);
        prop_assert_ne!(tx_a.data, tx_b.data, "spatial variation");
    }
}
