//! Differential tests for the sharded multi-channel subsystem:
//!
//! * `ShardedEngine` with one shard must be **observationally identical**
//!   to a bare `SecurityEngine` — same per-access submit results, same
//!   completion stream tick by tick, same engine/DRAM statistics — both
//!   at the engine level over randomized traffic and end-to-end through
//!   `CpuSystem` (mirroring `tests/scheduler_differential.rs`);
//! * across shard counts, data traffic is conserved: every access lands
//!   on exactly one shard, so per-shard data reads/writes sum to the
//!   unsharded counts for the same input;
//! * the sharded batched ingestion path matches per-call submission.

use proptest::prelude::*;
use secddr::channels::{Interleave, ShardedEngine};
use secddr::core::config::SecurityConfig;
use secddr::core::engine::{EngineOptions, SecurityEngine};
use secddr::cpu::system::{AccessKind, BatchAccess, MemoryBackend};
use secddr::cpu::{CpuConfig, CpuSystem};
use secddr::dram::Advance;
use secddr::workloads::Benchmark;

const CPU_MHZ: u32 = 3200;

fn options(advance: Advance) -> EngineOptions {
    EngineOptions {
        advance,
        ..EngineOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine-level identity: a single-shard `ShardedEngine` answers
    /// every submit with the same result (and token value), delivers the
    /// same completions at the same ticks, and accumulates the same
    /// statistics as the bare engine it wraps.
    #[test]
    fn single_shard_matches_bare_engine(
        accesses in proptest::collection::vec(
            (any::<bool>(), 0u64..(1u64 << 32), any::<bool>()),
            1..40,
        ),
        gap in 1u64..500,
        xor in any::<bool>(),
    ) {
        let il = if xor { Interleave::xor(1) } else { Interleave::modulo(1) };
        let mut bare = SecurityEngine::new(SecurityConfig::secddr_ctr(), CPU_MHZ);
        let mut sharded = ShardedEngine::new(SecurityConfig::secddr_ctr(), CPU_MHZ, il);
        let mut now = 100u64;
        for &(read, addr, pf) in &accesses {
            let kind = if read { AccessKind::Read } else { AccessKind::Write };
            let addr = addr & !63;
            prop_assert_eq!(
                sharded.submit(kind, addr, now, pf),
                bare.submit(kind, addr, now, pf),
                "submit diverged at cycle {}", now
            );
            now += gap;
            prop_assert_eq!(sharded.tick(now), bare.tick(now), "tick diverged at {}", now);
        }
        for _ in 0..300 {
            now += 60;
            prop_assert_eq!(sharded.tick(now), bare.tick(now), "drain diverged at {}", now);
        }
        prop_assert_eq!(sharded.stats(), bare.stats());
        prop_assert_eq!(sharded.dram_stats(), bare.dram_stats());
    }

    /// Sharded batched ingestion matches per-call submission for a
    /// non-power-of-two shard count (modulo interleave), including the
    /// merged-back result order and all statistics.
    #[test]
    fn sharded_batch_matches_per_call(
        accesses in proptest::collection::vec(
            (any::<bool>(), 0u64..(1u64 << 32), any::<bool>()),
            1..32,
        ),
        gap in 1u64..400,
    ) {
        let build = || ShardedEngine::new(
            SecurityConfig::secddr_ctr(), CPU_MHZ, Interleave::modulo(3),
        );
        let mut per_call = build();
        let mut batched = build();
        let mut now = 100u64;
        for chunk in accesses.chunks(7) {
            let batch: Vec<BatchAccess> = chunk
                .iter()
                .map(|&(read, addr, pf)| BatchAccess {
                    kind: if read { AccessKind::Read } else { AccessKind::Write },
                    addr: addr & !63,
                    is_prefetch: pf,
                })
                .collect();
            let per_call_results: Vec<_> = batch
                .iter()
                .map(|b| per_call.submit(b.kind, b.addr, now, b.is_prefetch))
                .collect();
            let mut batch_results = Vec::new();
            batched.submit_batch(&batch, now, &mut batch_results);
            prop_assert_eq!(&per_call_results, &batch_results);
            now += gap;
            prop_assert_eq!(per_call.tick(now), batched.tick(now));
        }
        for _ in 0..200 {
            now += 50;
            prop_assert_eq!(per_call.tick(now), batched.tick(now));
        }
        prop_assert_eq!(per_call.stats(), batched.stats());
        prop_assert_eq!(per_call.dram_stats(), batched.dram_stats());
    }
}

/// End-to-end identity: a full benchmark run through `CpuSystem` over
/// `ShardedEngine{N=1}` is bit-identical to the same run over a bare
/// `SecurityEngine` — `SimResult` (so every dispatch/retire decision and
/// the cycle count), `EngineStats`, and `DramStats` — under both advance
/// policies and both interleave hashes.
#[test]
fn single_shard_is_observationally_identical_end_to_end() {
    let bench = Benchmark::by_name("omnetpp").expect("omnetpp exists");
    let trace: Vec<_> = bench.generate(30_000, 0xD5);
    for advance in [Advance::ToNextEvent, Advance::PerCycle] {
        let cpu_cfg = CpuConfig {
            advance,
            ..CpuConfig::default()
        };
        let bare = {
            let engine = SecurityEngine::with_options(
                SecurityConfig::secddr_ctr(),
                cpu_cfg.clock_mhz,
                options(advance),
            );
            let mut sys = CpuSystem::new(cpu_cfg, engine);
            let sim = sys.run(trace.iter().copied());
            (sim, sys.backend().stats(), sys.backend().dram_stats())
        };
        for il in [Interleave::xor(1), Interleave::modulo(1)] {
            let engine = ShardedEngine::with_options(
                SecurityConfig::secddr_ctr(),
                cpu_cfg.clock_mhz,
                il,
                options(advance),
            );
            let mut sys = CpuSystem::new(cpu_cfg, engine);
            let sim = sys.run(trace.iter().copied());
            assert_eq!(sim, bare.0, "{advance:?}/{il:?}: SimResult diverged");
            assert_eq!(
                sys.backend_mut().stats(),
                bare.1,
                "{advance:?}/{il:?}: EngineStats diverged"
            );
            assert_eq!(
                sys.backend_mut().dram_stats(),
                bare.2,
                "{advance:?}/{il:?}: DramStats diverged"
            );
        }
    }
}

/// Sharding conserves data traffic: for any shard count, each access
/// lands on exactly one shard, so summed per-shard data reads and writes
/// equal the unsharded engine's counts for the same input stream, and
/// every accepted read completes.
#[test]
fn sharding_conserves_data_traffic() {
    // Paced so neither the single queue nor any shard queue ever fills:
    // every engine accepts the identical access stream, which is what
    // makes the cross-engine traffic counts comparable.
    let drive = |engine: &mut dyn MemoryBackend| -> (u64, u64) {
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let mut now = 100u64;
        for i in 0..300u64 {
            let addr = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) & !63;
            let kind = if i % 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            engine
                .submit(kind, addr, now, false)
                .expect("paced stream must never see Busy");
            if kind == AccessKind::Read {
                submitted += 1;
            }
            now += 200;
            completed += engine.tick(now).len() as u64;
        }
        for _ in 0..2_000 {
            now += 50;
            completed += engine.tick(now).len() as u64;
        }
        (submitted, completed)
    };

    let mut bare = SecurityEngine::new(SecurityConfig::secddr_ctr(), CPU_MHZ);
    let (bare_reads, bare_completed) = drive(&mut bare);
    assert_eq!(bare_reads, bare_completed, "bare engine must drain");

    for n in [2usize, 3, 4, 8] {
        let il = if n.is_power_of_two() {
            Interleave::xor(n)
        } else {
            Interleave::modulo(n)
        };
        let mut sharded = ShardedEngine::new(SecurityConfig::secddr_ctr(), CPU_MHZ, il);
        let (reads, completed) = drive(&mut sharded);
        assert_eq!(reads, completed, "N={n}: accepted reads must all complete");
        let stats = sharded.stats();
        assert_eq!(
            stats.data_reads,
            bare.stats().data_reads,
            "N={n}: data reads not conserved"
        );
        assert_eq!(
            stats.data_writes,
            bare.stats().data_writes,
            "N={n}: data writes not conserved"
        );
        let per_shard: u64 = (0..n).map(|s| sharded.shard(s).stats().data_reads).sum();
        assert_eq!(
            per_shard, stats.data_reads,
            "N={n}: merge() must sum shards"
        );
        assert!(
            (0..n).all(|s| sharded.shard(s).stats().data_reads > 0),
            "N={n}: the hash must spread traffic over every shard"
        );
    }
}
