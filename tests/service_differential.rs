//! Differential tests for the experiment service: a job submitted
//! through [`ExperimentService`] must produce **bit-identical**
//! `SimResult`s (and engine statistics) to calling the simulation
//! library directly — `run_trace_with_options` for the 1-core/1-channel
//! shape, `CpuSystem` over `ShardedEngine` for multi-channel, and
//! `MultiCoreSystem` rate mode for multi-core — plus a proptest pinning
//! the `JobSpec` JSON codec as lossless over randomized valid specs.

use proptest::prelude::*;
use secddr::core::config::SecurityConfig;
use secddr::core::engine::EngineOptions;
use secddr::core::metadata::DATA_SPAN;
use secddr::core::system::run_trace_with_options;
use secddr::cpu::{Advance, CpuSystem};
use secddr::service::{ExperimentService, JobSpec, Json, SuiteSel, Workload};
use secddr::workloads::Benchmark;
use secddr::{CoreTrace, MultiCoreSystem, ShardedEngine};

const INSTRS: u64 = 12_000;
const SEED: u64 = 0xD5;

fn spec(name: &str, cores: usize, channels: usize) -> JobSpec {
    let mut spec = JobSpec::bench(name);
    spec.cores = cores;
    spec.channels = channels;
    spec.instructions = INSTRS;
    spec.seed = SEED;
    spec
}

#[test]
fn single_core_single_channel_matches_direct_run() {
    let service = ExperimentService::with_threads(2);
    let outcome = service.submit(spec("mcf", 1, 1)).unwrap().wait();
    assert!(outcome.finished());
    let cell = &outcome.cells[0];

    let bench = Benchmark::by_name("mcf").unwrap();
    let trace = bench.generate(INSTRS, SEED);
    let direct = run_trace_with_options(
        &bench,
        &trace,
        &SecurityConfig::secddr_ctr(),
        EngineOptions::default(),
    );
    assert_eq!(cell.per_core, vec![direct.sim], "SimResult bit-identity");
    assert_eq!(cell.engine, direct.engine, "EngineStats bit-identity");
}

#[test]
fn multi_channel_matches_direct_sharded_run() {
    let service = ExperimentService::with_threads(2);
    let job = spec("omnetpp", 1, 4);
    let outcome = service.submit(job.clone()).unwrap().wait();
    assert!(outcome.finished());
    let cell = &outcome.cells[0];

    let bench = Benchmark::by_name("omnetpp").unwrap();
    let trace = bench.generate(INSTRS, SEED);
    let cpu_cfg = job.cpu_config();
    let engine = ShardedEngine::with_options(
        SecurityConfig::secddr_ctr(),
        cpu_cfg.clock_mhz,
        job.interleave(),
        job.options,
    );
    let mut sys = CpuSystem::new(cpu_cfg, engine);
    let sim = sys.run(trace.iter().copied());
    assert_eq!(cell.per_core, vec![sim], "SimResult bit-identity");
    assert_eq!(cell.engine, sys.backend_mut().stats(), "EngineStats");
}

#[test]
fn multi_core_rate_mode_matches_direct_multicore_run() {
    let service = ExperimentService::with_threads(2);
    let job = spec("mcf", 4, 4);
    let outcome = service.submit(job.clone()).unwrap().wait();
    assert!(outcome.finished());
    let cell = &outcome.cells[0];

    let bench = Benchmark::by_name("mcf").unwrap();
    let trace = bench.generate_shared(INSTRS, SEED);
    let cpu_cfg = job.cpu_config();
    let engine = ShardedEngine::with_options(
        SecurityConfig::secddr_ctr(),
        cpu_cfg.clock_mhz,
        job.interleave(),
        job.options,
    );
    let mut sys = MultiCoreSystem::new(4, cpu_cfg, engine);
    let direct = sys.run(CoreTrace::rate(&trace, DATA_SPAN, 4));
    assert_eq!(cell.per_core, direct.per_core, "per-core SimResults");
    assert_eq!(cell.engine, sys.backend_mut().stats(), "EngineStats");
    assert_eq!(cell.merged(), direct.merged(), "merged aggregate");
}

#[test]
fn per_cycle_jobs_match_event_driven_jobs() {
    // The advance policy rides the spec's options; both policies must
    // agree through the whole service path (the kernel contract, now
    // exercised one layer up).
    let service = ExperimentService::with_threads(2);
    let mut fast = spec("pr", 2, 2);
    fast.instructions = 6_000;
    let mut reference = fast.clone();
    reference.options = EngineOptions {
        advance: Advance::PerCycle,
        ..reference.options
    };
    let fast_outcome = service.submit(fast).unwrap().wait();
    let ref_outcome = service.submit(reference).unwrap().wait();
    assert_eq!(
        fast_outcome.cells[0].per_core, ref_outcome.cells[0].per_core,
        "event-driven service job diverged from per-cycle"
    );
    assert_eq!(fast_outcome.cells[0].engine, ref_outcome.cells[0].engine);
}

// ---- JobSpec JSON codec ------------------------------------------------

fn arb_config() -> impl Strategy<Value = SecurityConfig> {
    use secddr::core::config::{EncMode, Mechanism};
    (0u8..6, any::<bool>(), 0u32..3).prop_map(|(mech, flag, packing_sel)| {
        let ctr_packing = [8u32, 64, 128][packing_sel as usize];
        let (mechanism, enc) = match mech {
            0 => (Mechanism::Tdx, pick_enc(flag)),
            1 => (
                Mechanism::CounterTree {
                    arity: if flag { 64 } else { 128 },
                },
                EncMode::Ctr,
            ),
            2 => (
                Mechanism::HashTree {
                    arity: if flag { 8 } else { 64 },
                },
                pick_enc(flag),
            ),
            3 => (Mechanism::SecDdr, pick_enc(flag)),
            4 => (Mechanism::EncryptOnly, pick_enc(flag)),
            _ => (Mechanism::InvisiMem { realistic: flag }, pick_enc(!flag)),
        };
        SecurityConfig {
            mechanism,
            enc,
            ctr_packing,
        }
    })
}

fn pick_enc(xts: bool) -> secddr::core::config::EncMode {
    if xts {
        secddr::core::config::EncMode::Xts
    } else {
        secddr::core::config::EncMode::Ctr
    }
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        0usize..29,
        proptest::collection::vec(arb_config(), 1..4),
        (1usize..5, 1usize..9),
        (1u64..1_000_000, any::<u64>()),
        any::<u8>(),
        (any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(bench_at, configs, (cores, channels), (instructions, seed), priority, knobs)| {
                let all = Benchmark::all();
                let workload = if bench_at % 7 == 0 {
                    Workload::Suite(match bench_at % 3 {
                        0 => SuiteSel::Spec,
                        1 => SuiteSel::Gapbs,
                        _ => SuiteSel::All,
                    })
                } else {
                    Workload::Bench(all[bench_at].name().to_string())
                };
                JobSpec {
                    workload,
                    configs,
                    options: EngineOptions {
                        serial_tree_fetch: knobs.0,
                        force_bl8: knobs.1,
                        batched_ingestion: knobs.2,
                        advance: if knobs.0 {
                            Advance::PerCycle
                        } else {
                            Advance::ToNextEvent
                        },
                        ..EngineOptions::default()
                    },
                    cores,
                    channels,
                    instructions,
                    seed,
                    // Exercise both the off (0) and on states of the
                    // series codec without a dedicated strategy slot.
                    epoch_width: seed % 100_000,
                    // The shim has no signed Arbitrary; fold a u8 over
                    // the full i8 range instead.
                    #[allow(clippy::cast_possible_wrap)]
                    priority: priority as i8,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The JSON codec is lossless over randomized valid specs: parse ∘
    /// print ∘ encode == identity (u64 seeds included — the hand-rolled
    /// JSON keeps integers exact).
    #[test]
    fn jobspec_json_round_trips(spec in arb_spec()) {
        // Some generated mechanism × enc pairs are invalid by the
        // paper's compatibility argument; those must fail *validation*,
        // not corrupt the codec.
        let encoded = spec.to_json().to_string();
        let parsed = Json::parse(&encoded).expect("codec emits valid JSON");
        match JobSpec::from_json(&parsed) {
            Ok(back) => {
                prop_assert_eq!(&back, &spec);
                prop_assert!(spec.validate().is_ok());
            }
            Err(_) => prop_assert!(spec.validate().is_err(), "decode only rejects invalid specs"),
        }
    }

    /// The canonical content hash (the fleet's dedupe and memoization
    /// key) survives codec round-trips and ignores `priority` — the
    /// one field that affects scheduling but not results.
    #[test]
    fn content_hash_survives_round_trips_and_ignores_priority(spec in arb_spec()) {
        let hash = spec.content_hash();
        let encoded = spec.to_json().to_string();
        let parsed = Json::parse(&encoded).expect("codec emits valid JSON");
        if let Ok(back) = JobSpec::from_json(&parsed) {
            prop_assert_eq!(back.content_hash(), hash, "round-trip preserves the hash");
        }
        let mut bumped = spec.clone();
        bumped.priority = bumped.priority.wrapping_add(1);
        prop_assert_eq!(bumped.content_hash(), hash, "priority is excluded");
    }
}
