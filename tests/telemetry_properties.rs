//! Property tests for the telemetry snapshot algebra: merging is
//! associative and commutative on counters, gauges, and histogram
//! buckets, so shard/record/process snapshots can be folded in any
//! order (exactly what `ShardedEngine::dram_telemetry` and the bench
//! harness rely on).

use proptest::prelude::*;
use secddr::telemetry::{HistogramSnapshot, TelemetrySnapshot};

/// One recorded metric: (metric index, kind, value). Kind 0 = counter,
/// 1 = gauge, 2 = histogram sample. A handful of shared names forces
/// real key collisions between the merged snapshots.
type Op = (u8, u8, u64);

const NAMES: [&str; 5] = ["a.x", "a.y", "b.x", "b.y", "c.z"];

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..NAMES.len() as u8, 0u8..3, 0u64..(1 << 48))
}

fn snapshot_from(ops: &[Op]) -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::new();
    for &(name, kind, value) in ops {
        let name = NAMES[name as usize];
        match kind {
            0 => snap.add_counter(name, value),
            1 => snap.set_gauge(name, value),
            _ => {
                let mut h = HistogramSnapshot::default();
                h.record(value);
                snap.add_histogram(name, &h);
            }
        }
    }
    snap
}

fn merged(a: &TelemetrySnapshot, b: &TelemetrySnapshot) -> TelemetrySnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(op_strategy(), 0..24),
        b in proptest::collection::vec(op_strategy(), 0..24),
    ) {
        let (a, b) = (snapshot_from(&a), snapshot_from(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(op_strategy(), 0..16),
        b in proptest::collection::vec(op_strategy(), 0..16),
        c in proptest::collection::vec(op_strategy(), 0..16),
    ) {
        let (a, b, c) = (snapshot_from(&a), snapshot_from(&b), snapshot_from(&c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn merge_preserves_counter_sums_and_histogram_counts(
        a in proptest::collection::vec(op_strategy(), 0..24),
        b in proptest::collection::vec(op_strategy(), 0..24),
    ) {
        let (sa, sb) = (snapshot_from(&a), snapshot_from(&b));
        let m = merged(&sa, &sb);
        prop_assert_eq!(
            m.counter_prefix_sum(""),
            sa.counter_prefix_sum("") + sb.counter_prefix_sum("")
        );
        let hist_count = |s: &TelemetrySnapshot| -> u64 {
            s.histograms.values().map(|h| h.count).sum()
        };
        prop_assert_eq!(hist_count(&m), hist_count(&sa) + hist_count(&sb));
    }
}
