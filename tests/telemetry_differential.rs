//! Telemetry must be provably non-perturbing: a run with the span
//! ring buffer enabled and the global registry active produces
//! **bit-identical** simulation observables (`SimResult` /
//! `MultiCoreResult`, `EngineStats`, `DramStats`) to a run with no
//! telemetry touched at all. The always-on counters are plain `u64`s
//! outside the compared structs, and the `TraceSink` only copies
//! already-computed cycle numbers — these tests pin that neither can
//! bend the simulation.

use proptest::prelude::*;
use secddr::core::config::SecurityConfig;
use secddr::core::engine::{EngineOptions, EngineStats};
use secddr::core::metadata::DATA_SPAN;
use secddr::cpu::{CpuConfig, CpuSystem, SimResult, TraceOp};
use secddr::dram::{Advance, DramStats};
use secddr::telemetry::chrome_trace;
use secddr::workloads::Benchmark;
use secddr::{CoreTrace, Interleave, MultiCoreSystem, Registry, ShardedEngine};

const CPU_MHZ: u32 = 3200;

fn options(advance: Advance) -> EngineOptions {
    EngineOptions {
        advance,
        ..EngineOptions::default()
    }
}

fn cpu_cfg(advance: Advance) -> CpuConfig {
    CpuConfig {
        advance,
        ..CpuConfig::default()
    }
}

fn engine(advance: Advance, traced: bool) -> ShardedEngine {
    let mut engine = ShardedEngine::with_options(
        SecurityConfig::secddr_ctr(),
        CPU_MHZ,
        Interleave::xor(4),
        options(advance),
    );
    if traced {
        engine.enable_trace(4096);
        // Hammer the process-wide registry too: shared atomics must be
        // just as invisible to the simulation as the span ring.
        Registry::global().counter("test.pollution").inc();
        Registry::global().histogram("test.pollution_us").record(7);
    }
    engine
}

fn decode(ops: &[(u64, u64, u64)]) -> Vec<TraceOp> {
    ops.iter()
        .map(|&(sel, addr, n)| match sel % 5 {
            0 => TraceOp::Compute((n % 48 + 1) as u32),
            1 | 4 => TraceOp::Load(addr),
            2 => TraceOp::DependentLoad(addr),
            _ => TraceOp::Store(addr),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized single-core streams over a traced 4-way sharded
    /// backend, under both advance policies: identical `SimResult`,
    /// engine statistics, and DRAM statistics to the untraced run.
    #[test]
    fn tracing_never_perturbs_random_streams(
        ops in proptest::collection::vec(
            (0u64..5, 0u64..(1u64 << 32), 1u64..50),
            1..40,
        ),
        event_driven in any::<bool>(),
    ) {
        let trace = decode(&ops);
        let advance = if event_driven { Advance::ToNextEvent } else { Advance::PerCycle };
        let run = |traced: bool| -> (SimResult, EngineStats, DramStats) {
            let mut sys = CpuSystem::new(cpu_cfg(advance), engine(advance, traced));
            let sim = sys.run(trace.iter().copied());
            (sim, sys.backend_mut().stats(), sys.backend_mut().dram_stats())
        };
        prop_assert_eq!(run(true), run(false), "telemetry perturbed the run ({:?})", advance);
    }
}

/// End-to-end on a real benchmark: a 4-core rate-mode mcf job over
/// `ShardedEngine{N=4}` with the span ring live and the global registry
/// polluted is bit-identical to the plain run — and the captured
/// telemetry itself is well-formed (causes partition the decision
/// cycles, wakes partition the event-driven schedule, the sink renders
/// straight into a loadable Chrome trace document).
#[test]
fn traced_multicore_run_is_bit_identical_and_exports() {
    let bench = Benchmark::by_name("mcf").expect("mcf exists");
    let trace = bench.generate_shared(6_000, 0xD5);
    let advance = Advance::ToNextEvent;

    let mut plain = MultiCoreSystem::new(4, cpu_cfg(advance), engine(advance, false));
    let plain_result = plain.run(CoreTrace::rate(&trace, DATA_SPAN, 4));

    let mut traced = MultiCoreSystem::new(4, cpu_cfg(advance), engine(advance, true));
    let traced_result = traced.run(CoreTrace::rate(&trace, DATA_SPAN, 4));

    assert_eq!(traced_result, plain_result, "results diverged");
    assert_eq!(
        traced.backend_mut().stats(),
        plain.backend_mut().stats(),
        "engine stats diverged"
    );
    assert_eq!(
        traced.backend_mut().dram_stats(),
        plain.backend_mut().dram_stats(),
        "dram stats diverged"
    );

    // The attribution gathered along the way reconciles exactly.
    let dram_t = traced.backend_mut().dram_telemetry();
    assert_eq!(dram_t.causes.total(), dram_t.decision_cycles);
    assert!(dram_t.causes.completion > 0, "work completed");
    let wake = traced.wake_reasons();
    assert!(wake.total() > 0, "event-driven cores woke");
    let snap = traced.telemetry_snapshot();
    assert_eq!(snap.counter_prefix_sum("multicore.wake."), wake.total());

    // And the span ring renders into a Chrome trace document.
    let sink = traced
        .backend_mut()
        .take_trace()
        .expect("trace was enabled");
    assert!(!sink.is_empty(), "shards recorded spans");
    let json = chrome_trace::render(&sink, &[(0, "shard 0"), (1, "shard 1")]);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"shard 0\""));
    assert!(json.trim_end().ends_with("]}"));
}
