//! Property-based tests on the workload generators: budgets, determinism,
//! and address-range discipline across the whole benchmark suite.

use proptest::prelude::*;

use secddr::cpu::TraceOp;
use secddr::workloads::{Benchmark, Suite};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every benchmark honours its instruction budget (within the final
    /// compute-record coalescing slack).
    #[test]
    fn budgets_are_respected(idx in 0usize..29, budget in 5_000u64..40_000, seed in any::<u64>()) {
        let bench = Benchmark::all()[idx];
        let trace = bench.generate(budget, seed);
        let instrs: u64 = trace.iter().map(|o| o.instructions()).sum();
        prop_assert!(instrs <= budget + 70_000, "{}: {instrs} vs {budget}", bench.name());
        prop_assert!(instrs + 70_000 >= budget, "{}: {instrs} vs {budget}", bench.name());
    }

    /// Traces are deterministic in (budget, seed).
    #[test]
    fn traces_are_deterministic(idx in 0usize..29, seed in any::<u64>()) {
        let bench = Benchmark::all()[idx];
        prop_assert_eq!(bench.generate(8_000, seed), bench.generate(8_000, seed));
    }

    /// Addresses stay below the protected span the engine expects
    /// (metadata regions start at 10 GiB).
    #[test]
    fn addresses_stay_in_data_span(idx in 0usize..29, seed in any::<u64>()) {
        let bench = Benchmark::all()[idx];
        for op in bench.generate(8_000, seed) {
            if let Some(a) = op.address() {
                prop_assert!(
                    a < secddr::core::metadata::DATA_SPAN,
                    "{} address {a:#x}",
                    bench.name()
                );
            }
        }
    }

    /// Every trace contains a sensible mix: some memory operations, some
    /// compute, no empty traces.
    #[test]
    fn traces_are_nontrivial(idx in 0usize..29) {
        let bench = Benchmark::all()[idx];
        let trace = bench.generate(30_000, 1);
        let mem = trace.iter().filter(|o| o.address().is_some()).count();
        let compute: u64 = trace
            .iter()
            .filter_map(|o| match o {
                TraceOp::Compute(n) => Some(u64::from(*n)),
                _ => None,
            })
            .sum();
        prop_assert!(mem > 100, "{}: {mem} memory ops", bench.name());
        prop_assert!(compute > 100, "{}: {compute} compute instrs", bench.name());
    }
}

/// Suite-level sanity outside proptest: the GAPBS kernels genuinely differ
/// from each other (no copy-paste traces).
#[test]
fn gapbs_kernels_have_distinct_traces() {
    let kernels: Vec<Benchmark> = Benchmark::all()
        .into_iter()
        .filter(|b| b.suite() == Suite::Gapbs)
        .collect();
    let traces: Vec<Vec<TraceOp>> = kernels.iter().map(|k| k.generate(10_000, 3)).collect();
    for i in 0..traces.len() {
        for j in i + 1..traces.len() {
            assert_ne!(
                traces[i],
                traces[j],
                "{} and {} produced identical traces",
                kernels[i].name(),
                kernels[j].name()
            );
        }
    }
}
