//! Cross-crate integration tests: the paper's full attack matrix executed
//! through the facade crate, under both encryption modes.

use secddr::functional::attacks::{AddressCorruptor, BusReplay, CommandConverter, WriteDropper};
use secddr::functional::dimm::WriteOutcome;
use secddr::functional::{EncryptionMode, SecureChannel};

const MODES: [EncryptionMode; 2] = [EncryptionMode::Xts, EncryptionMode::Ctr];
const LINE: u64 = 0x6_4000;

#[test]
fn replay_detected_under_both_encryption_modes() {
    for mode in MODES {
        let mut ch = SecureChannel::with_interposer(mode, 31, BusReplay::new(0, 1));
        ch.write(LINE, &[1; 64]);
        assert!(ch.read(LINE).is_ok());
        ch.write(LINE, &[2; 64]);
        assert!(ch.read(LINE).is_err(), "replay must fail under {mode:?}");
    }
}

#[test]
fn address_corruption_detected_under_both_modes() {
    for mode in MODES {
        let mut ch =
            SecureChannel::with_interposer(mode, 32, AddressCorruptor::redirect_row(0, 0x200));
        assert_eq!(ch.write(LINE, &[1; 64]), WriteOutcome::EwcrcRejected);
    }
}

#[test]
fn dropped_write_detected_under_both_modes() {
    for mode in MODES {
        let mut ch = SecureChannel::with_interposer(mode, 33, WriteDropper::new(0));
        ch.write(LINE, &[1; 64]);
        assert!(ch.read(LINE).is_err());
    }
}

#[test]
fn command_conversion_detected_under_both_modes() {
    for mode in MODES {
        let mut ch = SecureChannel::with_interposer(mode, 34, CommandConverter::new(0));
        ch.write(LINE, &[1; 64]);
        assert!(ch.read(LINE).is_err());
    }
}

#[test]
fn attack_then_detection_is_permanent() {
    // After any counter-desynchronizing attack, no later traffic ever
    // verifies again (no resynchronization hole).
    let mut ch = SecureChannel::with_interposer(EncryptionMode::Xts, 35, CommandConverter::new(0));
    ch.write(LINE, &[1; 64]);
    for i in 0..50u64 {
        if i % 3 == 0 {
            ch.write(i * 64, &[i as u8; 64]);
        }
        assert!(ch.read(i * 64).is_err(), "op {i} must still fail");
    }
}

#[test]
fn honest_traffic_never_false_positives() {
    for mode in MODES {
        let mut ch = SecureChannel::new_attested(mode, 36);
        let mut model = std::collections::HashMap::new();
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for i in 0..400u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = (x % 512) * 64;
            if i % 3 != 0 {
                let mut data = [0u8; 64];
                data[0..8].copy_from_slice(&x.to_le_bytes());
                assert_eq!(ch.write(addr, &data), WriteOutcome::Committed);
                model.insert(addr, data);
            } else if let Some(expected) = model.get(&addr) {
                assert_eq!(&ch.read(addr).expect("honest read verifies"), expected);
            }
        }
    }
}

#[test]
fn per_rank_channels_are_independent() {
    // Two ranks, two channels: desynchronizing one must not affect the
    // other (Section III-E: independent ECC chips and counters per rank).
    let mut rank0 = SecureChannel::with_interposer(EncryptionMode::Xts, 37, WriteDropper::new(0));
    let mut rank1 = SecureChannel::new_attested(EncryptionMode::Xts, 38);
    rank0.write(LINE, &[1; 64]); // dropped: rank0 poisoned
    rank1.write(LINE, &[2; 64]);
    assert!(rank0.read(LINE).is_err());
    assert_eq!(rank1.read(LINE).unwrap(), [2; 64]);
}
