//! Series recording must be provably non-perturbing and exactly
//! reconciled: a run with sim-time series recording enabled at *any*
//! epoch width produces **bit-identical** simulation observables
//! (`SimResult` / `MultiCoreResult`, `EngineStats`, `DramStats`) to a
//! recording-off run under both advance policies, and the per-epoch
//! sums of every recorded counter equal the aggregate
//! `TelemetrySnapshot` value of the same name. The recorders are plain
//! non-atomic `u64`s behind `Option`s, outside every compared struct —
//! these tests pin that the time axis is free.

use proptest::prelude::*;
use secddr::core::config::SecurityConfig;
use secddr::core::engine::{EngineOptions, EngineStats};
use secddr::core::metadata::DATA_SPAN;
use secddr::cpu::{CpuConfig, CpuSystem, SimResult, TraceOp};
use secddr::dram::{Advance, DramStats};
use secddr::workloads::Benchmark;
use secddr::{CoreTrace, Interleave, MultiCoreSystem, ShardedEngine};

const CPU_MHZ: u32 = 3200;

fn options(advance: Advance) -> EngineOptions {
    EngineOptions {
        advance,
        ..EngineOptions::default()
    }
}

fn cpu_cfg(advance: Advance) -> CpuConfig {
    CpuConfig {
        advance,
        ..CpuConfig::default()
    }
}

fn engine(advance: Advance, epoch_width: Option<u64>) -> ShardedEngine {
    let mut engine = ShardedEngine::with_options(
        SecurityConfig::secddr_ctr(),
        CPU_MHZ,
        Interleave::xor(4),
        options(advance),
    );
    if let Some(width) = epoch_width {
        engine.enable_series(width);
    }
    engine
}

fn decode(ops: &[(u64, u64, u64)]) -> Vec<TraceOp> {
    ops.iter()
        .map(|&(sel, addr, n)| match sel % 5 {
            0 => TraceOp::Compute((n % 48 + 1) as u32),
            1 | 4 => TraceOp::Load(addr),
            2 => TraceOp::DependentLoad(addr),
            _ => TraceOp::Store(addr),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized single-core streams over a series-recording 4-way
    /// sharded backend at a randomized epoch width, under both advance
    /// policies: identical `SimResult`, engine statistics, and DRAM
    /// statistics to the recording-off run — and the recorded series
    /// reconciles with the aggregate controller telemetry.
    #[test]
    fn series_recording_never_perturbs_random_streams(
        ops in proptest::collection::vec(
            (0u64..5, 0u64..(1u64 << 32), 1u64..50),
            1..40,
        ),
        event_driven in any::<bool>(),
        width in 1u64..200_000,
    ) {
        let trace = decode(&ops);
        let advance = if event_driven { Advance::ToNextEvent } else { Advance::PerCycle };
        let run = |width: Option<u64>| -> (SimResult, EngineStats, DramStats) {
            let mut sys = CpuSystem::new(cpu_cfg(advance), engine(advance, width));
            let sim = sys.run(trace.iter().copied());
            let series = sys.backend_mut().series_snapshot();
            prop_assert_eq!(series.is_some(), width.is_some(), "series opt-in mismatch");
            if let Some(series) = series {
                let mut aggregate = secddr::TelemetrySnapshot::default();
                sys.backend_mut().dram_telemetry().render_into(&mut aggregate);
                prop_assert!(
                    series.reconciles_with(&aggregate),
                    "per-epoch sums diverged from the aggregate"
                );
            }
            (sim, sys.backend_mut().stats(), sys.backend_mut().dram_stats())
        };
        prop_assert_eq!(
            run(Some(width)),
            run(None),
            "series recording perturbed the run ({:?})",
            advance
        );
    }
}

/// End-to-end on a real benchmark: a 16-core rate-mode mcf job over
/// `ShardedEngine{N=4}` with series recording on every layer is
/// bit-identical to the recording-off run under both advance policies —
/// and the merged cross-layer series reconciles with the merged
/// aggregate snapshot.
#[test]
fn series_recording_is_bit_identical_end_to_end() {
    let bench = Benchmark::by_name("mcf").expect("mcf exists");
    let trace = bench.generate_shared(6_000, 0xD5);

    for advance in [Advance::PerCycle, Advance::ToNextEvent] {
        let width = 16_384;

        let mut plain = MultiCoreSystem::new(16, cpu_cfg(advance), engine(advance, None));
        let plain_result = plain.run(CoreTrace::rate(&trace, DATA_SPAN, 16));

        let mut recorded = MultiCoreSystem::new(16, cpu_cfg(advance), engine(advance, Some(width)));
        recorded.enable_series(width);
        let recorded_result = recorded.run(CoreTrace::rate(&trace, DATA_SPAN, 16));

        assert_eq!(
            recorded_result, plain_result,
            "results diverged ({advance:?})"
        );
        assert_eq!(
            recorded.backend_mut().stats(),
            plain.backend_mut().stats(),
            "engine stats diverged ({advance:?})"
        );
        assert_eq!(
            recorded.backend_mut().dram_stats(),
            plain.backend_mut().dram_stats(),
            "dram stats diverged ({advance:?})"
        );

        // The cross-layer merge reconciles with the merged aggregate.
        let mut aggregate = recorded.telemetry_snapshot();
        recorded
            .backend_mut()
            .dram_telemetry()
            .render_into(&mut aggregate);
        let mut series = recorded
            .backend_mut()
            .series_snapshot()
            .expect("backend series enabled");
        series.merge(
            &recorded
                .series_snapshot()
                .expect("scheduler series enabled"),
        );
        assert!(
            series.reconciles_with(&aggregate),
            "merged series diverged from the merged aggregate ({advance:?})"
        );
        assert!(series.epochs() > 1, "the run spans several epochs");
    }
}
