//! Property tests for the channel-interleave bijection: every physical
//! line maps to exactly one `(shard, local line)`, round-trips exactly,
//! and no two physical lines alias to the same slot of the same shard —
//! for every shard count in `1..=8` (modulo) and every power of two in
//! that range (xor).

use proptest::prelude::*;
use secddr::channels::{Interleave, LINE_BYTES};

/// Physical addresses are constrained below 2^56 so reconstructing a
/// line from `(shard, local)` cannot overflow for any shard count <= 8.
const ADDR_SPAN: u64 = 1 << 56;

fn interleaves_for(n: usize) -> Vec<Interleave> {
    let mut out = vec![Interleave::modulo(n)];
    if n.is_power_of_two() {
        out.push(Interleave::xor(n));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forward round trip: `to_physical(to_local(a)) == a`, the shard
    /// index is in range, and the intra-line offset is preserved. With
    /// `to_local` total, this makes the map injective — two physical
    /// lines can never alias to the same (shard, local line).
    #[test]
    fn physical_round_trips_through_local(
        addr in 0u64..ADDR_SPAN,
        n in 1usize..=8,
    ) {
        for il in interleaves_for(n) {
            let (shard, local) = il.to_local(addr);
            prop_assert!(shard < n, "{il:?}: shard {shard} out of range");
            prop_assert_eq!(local & (LINE_BYTES - 1), addr & (LINE_BYTES - 1));
            prop_assert_eq!(il.to_physical(shard, local), addr, "{:?}", il);
            prop_assert_eq!(il.shard_of(addr), shard);
        }
    }

    /// Reverse round trip: every `(shard, local line)` slot is the image
    /// of exactly the physical line `to_physical` reconstructs. Together
    /// with the forward direction this pins a bijection onto a dense
    /// per-shard local space.
    #[test]
    fn local_round_trips_through_physical(
        local in 0u64..(ADDR_SPAN / 8),
        shard in 0usize..8,
        n in 1usize..=8,
    ) {
        let shard = shard % n;
        for il in interleaves_for(n) {
            let addr = il.to_physical(shard, local);
            prop_assert_eq!(il.to_local(addr), (shard, local), "{:?}", il);
        }
    }

    /// Dense local spaces partition the physical lines: over an aligned
    /// window of `k * n` consecutive lines, every shard serves exactly
    /// `k` lines and their local lines are distinct.
    #[test]
    fn consecutive_lines_spread_evenly(
        base_block in 0u64..(ADDR_SPAN >> 10),
        k in 1u64..16,
        n in 1usize..=8,
    ) {
        for il in interleaves_for(n) {
            let base_line = base_block * n as u64;
            let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); n];
            for i in 0..k * n as u64 {
                let (s, local) = il.to_local((base_line + i) * LINE_BYTES);
                per_shard[s].push(local);
            }
            for (s, locals) in per_shard.iter_mut().enumerate() {
                prop_assert_eq!(locals.len() as u64, k, "{:?} shard {}", il, s);
                locals.sort_unstable();
                locals.dedup();
                prop_assert_eq!(locals.len() as u64, k, "{:?}: aliasing in shard {}", il, s);
            }
        }
    }
}
