//! TCP front-end tests: ≥4 simultaneous clients over a loopback
//! [`ExperimentServer`], per-job event-stream ordering, cancellation
//! that actually stops work, the cache-stats endpoint, and clean
//! shutdown.

use secddr::core::config::SecurityConfig;
use secddr::service::{
    ExperimentServer, ExperimentService, JobSpec, ServiceClient, SuiteSel, WireEvent, Workload,
};
use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes the tests in this binary: the trace-cache counters the
/// cache-stats assertions read are *process-wide*, so a concurrently
/// running sibling test would perturb the deltas.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Binds an ephemeral-port server and returns its address plus the
/// serve-loop join handle (joined after a client sends `shutdown`).
fn start_server(threads: usize) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = ExperimentServer::bind("127.0.0.1:0", ExperimentService::with_threads(threads))
        .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn tiny_spec(name: &str, instructions: u64) -> JobSpec {
    let mut spec = JobSpec::bench(name);
    spec.instructions = instructions;
    spec
}

/// Asserts one job's full stream is well-ordered: queued → started →
/// cells with ascending indices, each followed by one live metrics
/// frame → finished; returns the cell count.
fn assert_ordered_stream(events: &[WireEvent], job: u64) -> u64 {
    assert!(
        matches!(events.first(), Some(WireEvent::Queued { job: j, .. }) if *j == job),
        "stream starts with queued: {events:?}"
    );
    assert!(
        matches!(events.get(1), Some(WireEvent::Started { job: j }) if *j == job),
        "queued then started: {events:?}"
    );
    let mut expected_index = 0u64;
    let mut frames = 0u64;
    for event in &events[2..events.len() - 1] {
        match event {
            WireEvent::Cell { index, total, .. } => {
                assert_eq!(*index, expected_index, "ascending cell indices");
                assert_eq!(*total, (events.len() as u64 - 3) / 2, "cell total");
                expected_index += 1;
            }
            WireEvent::Metrics { job: j, .. } => {
                assert_eq!(*j, job, "frames carry their job id");
                frames += 1;
                assert_eq!(frames, expected_index, "one frame right after each cell");
            }
            other => panic!("unexpected event between started and terminal: {other:?}"),
        }
    }
    let Some(WireEvent::Finished { cells, .. }) = events.last() else {
        panic!("terminal must be finished: {events:?}");
    };
    assert_eq!(*cells, expected_index);
    assert_eq!(frames, expected_index, "every cell streamed a live frame");
    expected_index
}

#[test]
fn four_concurrent_clients_stream_ordered_results() {
    let _guard = serialize();
    let (addr, server) = start_server(3);
    let benchmarks = ["mcf", "omnetpp", "povray", "pr"];
    let mut clients: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for (i, name) in benchmarks.into_iter().enumerate() {
        clients.push(std::thread::spawn(move || {
            let mut client = ServiceClient::connect(addr).expect("connect");
            // Distinct shapes per client: exercise single- and
            // multi-core, single- and multi-channel, multi-config.
            let mut spec = tiny_spec(name, 5_000);
            match i {
                0 => {
                    spec.configs =
                        vec![SecurityConfig::secddr_ctr(), SecurityConfig::tdx_baseline()];
                }
                1 => spec.channels = 2,
                2 => {
                    spec.cores = 2;
                    spec.channels = 2;
                }
                _ => {}
            }
            let expected_cells = (spec.cell_count().unwrap()) as u64;
            let job = client.submit(&spec).expect("submit");
            let events = client.stream_job(job).expect("stream");
            let cells = assert_ordered_stream(&events, job);
            assert_eq!(cells, expected_cells);
        }));
    }
    for client in clients {
        client.join().expect("client thread");
    }
    let mut closer = ServiceClient::connect(addr).expect("connect for shutdown");
    let stats = closer.cache_stats().expect("cache stats");
    assert_eq!(stats.jobs_submitted, 4);
    assert_eq!(stats.jobs_completed, 4);
    closer.shutdown_server().expect("shutdown");
    server
        .join()
        .expect("serve thread")
        .expect("clean serve exit");
}

#[test]
fn one_connection_multiplexes_two_jobs() {
    let _guard = serialize();
    let (addr, server) = start_server(2);
    let mut client = ServiceClient::connect(addr).expect("connect");
    let job_a = client.submit(&tiny_spec("mcf", 5_000)).expect("submit a");
    let job_b = client
        .submit(&tiny_spec("povray", 5_000))
        .expect("submit b");
    assert_ne!(job_a, job_b);
    // Streaming job A first leaves job B's interleaved events queued;
    // both streams must come out whole and ordered.
    let events_a = client.stream_job(job_a).expect("stream a");
    let events_b = client.stream_job(job_b).expect("stream b");
    assert_ordered_stream(&events_a, job_a);
    assert_ordered_stream(&events_b, job_b);
    client.shutdown_server().expect("shutdown");
    server.join().expect("serve thread").expect("clean exit");
}

#[test]
fn cancellation_over_tcp_stops_work() {
    let _guard = serialize();
    // One worker thread: a long blocker occupies it while the victim
    // job is still queued, so the cancel provably lands before any of
    // the victim's cells run.
    let (addr, server) = start_server(1);
    let mut client = ServiceClient::connect(addr).expect("connect");
    let blocker = client
        .submit(&tiny_spec("povray", 20_000))
        .expect("blocker");
    let mut victim_spec = tiny_spec("mcf", 20_000);
    victim_spec.workload = Workload::Suite(SuiteSel::Gapbs); // 6 cells
    let victim = client.submit(&victim_spec).expect("victim");
    assert!(client.cancel(victim).expect("cancel"), "victim was live");
    let victim_events = client.stream_job(victim).expect("victim stream");
    let Some(WireEvent::Cancelled { completed, .. }) = victim_events.last() else {
        panic!("victim must end cancelled: {victim_events:?}");
    };
    assert_eq!(*completed, 0, "no victim cell ran after the cancel");
    assert!(
        !victim_events
            .iter()
            .any(|e| matches!(e, WireEvent::Cell { .. })),
        "cancellation stopped all work: {victim_events:?}"
    );
    let blocker_events = client.stream_job(blocker).expect("blocker stream");
    assert_ordered_stream(&blocker_events, blocker);
    // Cancelling a finished job is a no-op the server reports honestly.
    assert!(!client.cancel(victim).expect("re-cancel"));
    client.shutdown_server().expect("shutdown");
    server.join().expect("serve thread").expect("clean exit");
}

#[test]
fn warm_trace_cache_is_visible_through_cache_stats() {
    let _guard = serialize();
    let (addr, server) = start_server(2);
    let mut client = ServiceClient::connect(addr).expect("connect");
    // Unique (budget, seed) so parallel test binaries cannot have
    // warmed this key in *this* process; the disk tier may still hit
    // from an earlier run, which is exactly what it is for.
    let mut spec = tiny_spec("gcc", 7_321);
    spec.seed = 0xC0FF_EE42;
    let cold = client.submit(&spec).expect("cold submit");
    client.stream_job(cold).expect("cold stream");
    let after_cold = client.cache_stats().expect("stats after cold");

    let warm = client.submit(&spec).expect("warm submit");
    client.stream_job(warm).expect("warm stream");
    let after_warm = client.cache_stats().expect("stats after warm");
    assert_eq!(
        after_warm.trace_generated + after_warm.trace_disk_hits,
        after_cold.trace_generated + after_cold.trace_disk_hits,
        "the second identical-spec job regenerated nothing and read no disk"
    );
    assert!(
        after_warm.trace_memory_hits > after_cold.trace_memory_hits,
        "the second identical-spec job hit the warm in-process cache"
    );
    client.shutdown_server().expect("shutdown");
    server.join().expect("serve thread").expect("clean exit");
}

#[test]
fn malformed_requests_keep_the_connection_alive() {
    let _guard = serialize();
    let (addr, server) = start_server(1);
    let mut client = ServiceClient::connect(addr).expect("connect");
    // An unknown benchmark is rejected server-side with an error line…
    let bad = tiny_spec("mcf", 1_000);
    let mut bad = bad;
    bad.workload = Workload::Bench("not-a-benchmark".into());
    let err = client
        .submit(&bad)
        .expect_err("server rejects unknown bench");
    assert!(err.to_string().contains("unknown benchmark"), "{err}");
    // …and the connection still serves the next request.
    let job = client
        .submit(&tiny_spec("povray", 2_000))
        .expect("good submit");
    let events = client.stream_job(job).expect("stream");
    assert_ordered_stream(&events, job);
    client.shutdown_server().expect("shutdown");
    server.join().expect("serve thread").expect("clean exit");
}
