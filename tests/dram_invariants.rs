//! Property-based invariants on the DDR4 timing simulator.

use proptest::prelude::*;

use secddr::dram::{DramConfig, DramSystem, MemRequest, ReqKind};

#[derive(Debug, Clone, Copy)]
struct GenReq {
    addr: u64,
    is_write: bool,
    gap: u8,
}

fn req_strategy() -> impl Strategy<Value = GenReq> {
    (any::<u64>(), any::<bool>(), any::<u8>()).prop_map(|(addr, is_write, gap)| GenReq {
        addr: (addr % (16 << 30)) & !63,
        is_write,
        gap,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every accepted request completes exactly once, regardless of the
    /// arrival pattern, and read latency never beats the physical minimum.
    #[test]
    fn requests_complete_exactly_once(reqs in proptest::collection::vec(req_strategy(), 1..150)) {
        let cfg = DramConfig::ddr4_3200();
        let min_read = cfg.t_rcd + cfg.t_cl + cfg.read_burst_cycles;
        let mut dram = DramSystem::new(cfg);
        let mut pending = reqs.clone();
        pending.reverse();
        let mut accepted = 0u64;
        let mut completed = std::collections::HashMap::new();
        let mut id = 0u64;
        let mut idle_gap = 0u8;
        for _ in 0..4_000_000u64 {
            if idle_gap > 0 {
                idle_gap -= 1;
            } else if let Some(r) = pending.last().copied() {
                let kind = if r.is_write { ReqKind::Write } else { ReqKind::Read };
                if dram.enqueue(MemRequest::new(id, kind, r.addr, dram.cycle())).is_ok() {
                    id += 1;
                    accepted += 1;
                    idle_gap = r.gap % 16;
                    pending.pop();
                }
            }
            for c in dram.tick() {
                prop_assert!(
                    completed.insert(c.id, c).is_none(),
                    "request {} completed twice",
                    c.id
                );
                if c.kind == ReqKind::Read {
                    // Forwarded reads can be fast; real reads cannot beat
                    // tRCD+tCL+burst.
                    prop_assert!(
                        c.latency() >= 1 || c.latency() < min_read,
                        "latency {}",
                        c.latency()
                    );
                }
            }
            if pending.is_empty() && dram.is_idle() {
                break;
            }
        }
        prop_assert!(pending.is_empty(), "all requests should be accepted eventually");
        prop_assert_eq!(completed.len() as u64, accepted);
    }

    /// Statistics stay internally consistent.
    #[test]
    fn stats_are_consistent(reqs in proptest::collection::vec(req_strategy(), 1..100)) {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        for (id, r) in reqs.iter().enumerate() {
            let kind = if r.is_write { ReqKind::Write } else { ReqKind::Read };
            let _ = dram.enqueue(MemRequest::new(id as u64, kind, r.addr, dram.cycle()));
            for _ in 0..(r.gap % 8) {
                dram.tick();
            }
        }
        for _ in 0..200_000 {
            dram.tick();
            if dram.is_idle() {
                break;
            }
        }
        let s = dram.stats();
        prop_assert!(s.row_hit_rate() <= 1.0);
        prop_assert!(s.bus_utilization() <= 1.0);
        prop_assert!(s.row_hits <= s.reads - s.forwarded_reads + s.writes);
        prop_assert!(s.activates >= s.precharges.saturating_sub(s.refreshes * 32));
    }

    /// The derated (2400 MT/s) channel is never faster in wall-clock time
    /// than the 3200 MT/s channel on the same request stream.
    #[test]
    fn derated_channel_is_slower(reqs in proptest::collection::vec(req_strategy(), 8..64)) {
        let run = |cfg: DramConfig| -> f64 {
            let freq = f64::from(cfg.freq_mhz);
            let mut dram = DramSystem::new(cfg);
            for (i, r) in reqs.iter().enumerate() {
                let kind = if r.is_write { ReqKind::Write } else { ReqKind::Read };
                let _ = dram.enqueue(MemRequest::new(i as u64, kind, r.addr, 0));
            }
            let mut last = 0;
            for _ in 0..2_000_000 {
                for c in dram.tick() {
                    last = last.max(c.finish_cycle);
                }
                if dram.is_idle() {
                    break;
                }
            }
            last as f64 / freq // microseconds
        };
        let fast = run(DramConfig::ddr4_3200());
        let slow = run(DramConfig::ddr4_2400_derated());
        prop_assert!(slow >= fast * 0.999, "derated {slow}us vs full {fast}us");
    }
}
