//! End-to-end performance-shape tests: the orderings the paper's figures
//! report must hold in the reproduction at small instruction budgets.
//!
//! These run the full stack (trace generator -> OOO core -> caches ->
//! security engine -> DDR4 channel), so they are the closest thing to a
//! regression test on the headline results.

use secddr::core::config::{EncMode, SecurityConfig};
use secddr::core::system::{run_benchmark, RunParams};
use secddr::workloads::Benchmark;

fn norm(bench: &str, cfg: SecurityConfig, instructions: u64) -> f64 {
    let params = RunParams {
        instructions,
        seed: 11,
    };
    let b = Benchmark::by_name(bench).expect("benchmark exists");
    let tdx = run_benchmark(&b, &SecurityConfig::tdx_baseline(), &params);
    let r = run_benchmark(&b, &cfg, &params);
    r.ipc() / tdx.ipc()
}

/// Figure 6 ordering on a random-access, memory-intensive workload.
#[test]
fn figure6_ordering_on_random_workload() {
    let n = 120_000;
    let tree = norm("omnetpp", SecurityConfig::tree_64ary(), n);
    let secddr_ctr = norm("omnetpp", SecurityConfig::secddr_ctr(), n);
    let enc_ctr = norm("omnetpp", SecurityConfig::encrypt_only_ctr(), n);
    let secddr_xts = norm("omnetpp", SecurityConfig::secddr_xts(), n);
    let enc_xts = norm("omnetpp", SecurityConfig::encrypt_only_xts(), n);

    assert!(
        tree < secddr_ctr,
        "tree {tree} must trail SecDDR+CTR {secddr_ctr}"
    );
    assert!(
        secddr_ctr <= enc_ctr * 1.01,
        "SecDDR+CTR {secddr_ctr} bounded by encrypt-only CTR {enc_ctr}"
    );
    assert!(
        (secddr_xts - enc_xts).abs() < 0.02,
        "paper: SecDDR+XTS within 1% of encrypt-only XTS ({secddr_xts} vs {enc_xts})"
    );
    assert!(
        secddr_xts > tree * 1.1,
        "XTS SecDDR {secddr_xts} must clearly beat the tree {tree}"
    );
}

/// Figure 8: the 8-ary hash tree is by far the worst configuration.
#[test]
fn figure8_hash_tree_is_worst() {
    let n = 100_000;
    let hash8 = norm("xz", SecurityConfig::tree_8ary_hash(), n);
    let tree64 = norm("xz", SecurityConfig::tree_64ary(), n);
    let secddr = norm("xz", SecurityConfig::secddr_ctr(), n);
    assert!(hash8 < tree64, "8-ary {hash8} worse than 64-ary {tree64}");
    assert!(hash8 < secddr, "8-ary {hash8} worse than SecDDR {secddr}");
}

/// Figures 10/12: SecDDR beats both InvisiMem variants; the realistic
/// (derated) variant is the slower of the two.
#[test]
fn figure10_invisimem_ordering() {
    let n = 100_000;
    let secddr = norm("mcf", SecurityConfig::secddr_xts(), n);
    let unreal = norm(
        "mcf",
        SecurityConfig::invisimem_unrealistic(EncMode::Xts),
        n,
    );
    let real = norm("mcf", SecurityConfig::invisimem_realistic(EncMode::Xts), n);
    assert!(secddr > unreal, "SecDDR {secddr} vs unrealistic {unreal}");
    assert!(unreal > real, "unrealistic {unreal} vs realistic {real}");
}

/// The eWCRC write-burst cost shows on a write-intensive streaming
/// workload (lbm): SecDDR+CTR trails encrypt-only CTR noticeably more
/// than on a read-dominated workload.
#[test]
fn ewcrc_write_burst_penalty_on_lbm() {
    let n = 100_000;
    let lbm_gap = norm("lbm", SecurityConfig::encrypt_only_ctr(), n)
        / norm("lbm", SecurityConfig::secddr_ctr(), n);
    assert!(
        lbm_gap > 1.02,
        "lbm must pay a visible write-burst penalty (gap {lbm_gap})"
    );
}

/// Memory-intensity classification matches the paper's set on clear cases.
#[test]
fn memory_intensity_classification() {
    let params = RunParams {
        instructions: 150_000,
        seed: 11,
    };
    let mcf = run_benchmark(
        &Benchmark::by_name("mcf").expect("exists"),
        &SecurityConfig::tdx_baseline(),
        &params,
    );
    assert!(
        mcf.llc_mpki() > 10.0,
        "mcf is memory intensive: {}",
        mcf.llc_mpki()
    );
    let exchange2 = run_benchmark(
        &Benchmark::by_name("exchange2").expect("exists"),
        &SecurityConfig::tdx_baseline(),
        &params,
    );
    assert!(
        exchange2.llc_mpki() < mcf.llc_mpki() / 4.0,
        "exchange2 ({}) far below mcf ({})",
        exchange2.llc_mpki(),
        mcf.llc_mpki()
    );
}

/// Metadata traffic ordering (drives Figure 7): trees generate strictly
/// more metadata fetches than tree-less counter configs; XTS SecDDR has
/// none.
#[test]
fn metadata_traffic_ordering() {
    let params = RunParams {
        instructions: 100_000,
        seed: 11,
    };
    let b = Benchmark::by_name("omnetpp").expect("exists");
    let tree = run_benchmark(&b, &SecurityConfig::tree_64ary(), &params);
    let secddr_ctr = run_benchmark(&b, &SecurityConfig::secddr_ctr(), &params);
    let secddr_xts = run_benchmark(&b, &SecurityConfig::secddr_xts(), &params);
    let tree_md = tree.engine.leaf_fetches + tree.engine.tree_fetches;
    let sc_md = secddr_ctr.engine.leaf_fetches + secddr_ctr.engine.tree_fetches;
    assert!(tree_md > sc_md, "tree {tree_md} vs secddr+ctr {sc_md}");
    assert_eq!(secddr_xts.engine.leaf_fetches, 0);
    assert_eq!(secddr_xts.engine.tree_fetches, 0);
}
