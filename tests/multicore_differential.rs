//! Differential tests for the multi-core front-end:
//!
//! * `MultiCoreSystem` with one core must be **observationally
//!   identical** to the bare `CpuSystem` — same `SimResult` (every
//!   dispatch/retire decision and the cycle count), same engine and DRAM
//!   statistics — over randomized trace streams, under both advance
//!   policies, and over both the bare `SecurityEngine` and a
//!   `ShardedEngine` backend (mirroring `tests/sharded_differential.rs`
//!   one layer up);
//! * at N > 1, the event-driven core scheduler (min-heap over per-core
//!   wake bounds, global jump when all cores sleep) must be bit-identical
//!   to per-cycle lock-step where every core steps every cycle;
//! * the per-core shares of the shared LLC statistics must sum to the
//!   LLC's own totals.

use proptest::prelude::*;
use secddr::core::config::SecurityConfig;
use secddr::core::engine::{EngineOptions, EngineStats, SecurityEngine};
use secddr::core::metadata::DATA_SPAN;
use secddr::cpu::{CpuConfig, CpuSystem, SimResult, TraceOp};
use secddr::dram::{Advance, DramStats};
use secddr::workloads::Benchmark;
use secddr::{CoreTrace, Interleave, MultiCoreResult, MultiCoreSystem, ShardedEngine};
use std::sync::Arc;

const CPU_MHZ: u32 = 3200;

fn options(advance: Advance) -> EngineOptions {
    EngineOptions {
        advance,
        ..EngineOptions::default()
    }
}

fn cpu_cfg(advance: Advance) -> CpuConfig {
    CpuConfig {
        advance,
        ..CpuConfig::default()
    }
}

fn decode(ops: &[(u64, u64, u64)]) -> Vec<TraceOp> {
    ops.iter()
        .map(|&(sel, addr, n)| match sel % 5 {
            0 => TraceOp::Compute((n % 48 + 1) as u32),
            1 | 4 => TraceOp::Load(addr),
            2 => TraceOp::DependentLoad(addr),
            _ => TraceOp::Store(addr),
        })
        .collect()
}

type Observed = (SimResult, EngineStats, DramStats);

fn run_single_bare(trace: &[TraceOp], advance: Advance) -> Observed {
    let engine =
        SecurityEngine::with_options(SecurityConfig::secddr_ctr(), CPU_MHZ, options(advance));
    let mut sys = CpuSystem::new(cpu_cfg(advance), engine);
    let sim = sys.run(trace.iter().copied());
    (sim, sys.backend().stats(), sys.backend().dram_stats())
}

fn run_multi1_bare(trace: &[TraceOp], advance: Advance) -> Observed {
    let engine =
        SecurityEngine::with_options(SecurityConfig::secddr_ctr(), CPU_MHZ, options(advance));
    let mut sys = MultiCoreSystem::new(1, cpu_cfg(advance), engine);
    let result = sys.run(vec![trace.iter().copied()]);
    (
        result.per_core[0].clone(),
        sys.backend().stats(),
        sys.backend().dram_stats(),
    )
}

fn run_single_sharded(trace: &[TraceOp], advance: Advance) -> Observed {
    let engine = ShardedEngine::with_options(
        SecurityConfig::secddr_ctr(),
        CPU_MHZ,
        Interleave::xor(2),
        options(advance),
    );
    let mut sys = CpuSystem::new(cpu_cfg(advance), engine);
    let sim = sys.run(trace.iter().copied());
    (
        sim,
        sys.backend_mut().stats(),
        sys.backend_mut().dram_stats(),
    )
}

fn run_multi1_sharded(trace: &[TraceOp], advance: Advance) -> Observed {
    let engine = ShardedEngine::with_options(
        SecurityConfig::secddr_ctr(),
        CPU_MHZ,
        Interleave::xor(2),
        options(advance),
    );
    let mut sys = MultiCoreSystem::new(1, cpu_cfg(advance), engine);
    let result = sys.run(vec![trace.iter().copied()]);
    (
        result.per_core[0].clone(),
        sys.backend_mut().stats(),
        sys.backend_mut().dram_stats(),
    )
}

type WideObserved = (MultiCoreResult, EngineStats, DramStats);

/// Runs `cores` rate-mode copies of `trace` over the bare engine,
/// asserting on the way that the per-core LLC shares sum to the shared
/// LLC's own totals.
fn run_wide_bare(cores: usize, trace: &Arc<Vec<TraceOp>>, advance: Advance) -> WideObserved {
    let engine =
        SecurityEngine::with_options(SecurityConfig::secddr_ctr(), CPU_MHZ, options(advance));
    let mut sys = MultiCoreSystem::new(cores, cpu_cfg(advance), engine);
    let result = sys.run(CoreTrace::rate(trace, DATA_SPAN, cores));
    assert_eq!(
        &result.merged().llc,
        sys.llc_stats(),
        "{advance:?}: per-core LLC shares must sum to the shared totals"
    );
    (result, sys.backend().stats(), sys.backend().dram_stats())
}

/// Same over a 4-way sharded backend — cores × channels at width.
fn run_wide_sharded(cores: usize, trace: &Arc<Vec<TraceOp>>, advance: Advance) -> WideObserved {
    let engine = ShardedEngine::with_options(
        SecurityConfig::secddr_ctr(),
        CPU_MHZ,
        Interleave::xor(4),
        options(advance),
    );
    let mut sys = MultiCoreSystem::new(cores, cpu_cfg(advance), engine);
    let result = sys.run(CoreTrace::rate(trace, DATA_SPAN, cores));
    assert_eq!(
        &result.merged().llc,
        sys.llc_stats(),
        "{advance:?}: per-core LLC shares must sum to the shared totals"
    );
    (
        result,
        sys.backend_mut().stats(),
        sys.backend_mut().dram_stats(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One-core `MultiCoreSystem` over the bare engine answers a random
    /// trace stream with the exact `SimResult`, engine statistics, and
    /// DRAM statistics of the monolithic `CpuSystem`, under both advance
    /// policies.
    #[test]
    fn single_core_matches_cpusystem_bare(
        ops in proptest::collection::vec(
            (0u64..5, 0u64..(1u64 << 32), 1u64..50),
            1..50,
        ),
        event_driven in any::<bool>(),
    ) {
        let trace = decode(&ops);
        let advance = if event_driven { Advance::ToNextEvent } else { Advance::PerCycle };
        prop_assert_eq!(
            run_multi1_bare(&trace, advance),
            run_single_bare(&trace, advance),
            "N=1 diverged from CpuSystem ({:?})", advance
        );
    }

    /// Same pin through a sharded multi-channel backend: cores × channels
    /// compose through the one `MemoryBackend` seam.
    #[test]
    fn single_core_matches_cpusystem_sharded(
        ops in proptest::collection::vec(
            (0u64..5, 0u64..(1u64 << 32), 1u64..50),
            1..40,
        ),
        event_driven in any::<bool>(),
    ) {
        let trace = decode(&ops);
        let advance = if event_driven { Advance::ToNextEvent } else { Advance::PerCycle };
        prop_assert_eq!(
            run_multi1_sharded(&trace, advance),
            run_single_sharded(&trace, advance),
            "N=1 over ShardedEngine diverged from CpuSystem ({:?})", advance
        );
    }

    /// The event-driven core scheduler is bit-identical to per-cycle
    /// lock-step at N > 1 (heterogeneous random traces, bare engine).
    #[test]
    fn event_driven_scheduler_matches_per_cycle(
        ops_a in proptest::collection::vec(
            (0u64..5, 0u64..(1u64 << 32), 1u64..50),
            1..30,
        ),
        ops_b in proptest::collection::vec(
            (0u64..5, 0u64..(1u64 << 32), 1u64..50),
            1..30,
        ),
    ) {
        let traces = [decode(&ops_a), decode(&ops_b)];
        let run = |advance: Advance| {
            let engine = SecurityEngine::with_options(
                SecurityConfig::secddr_ctr(), CPU_MHZ, options(advance),
            );
            let mut sys = MultiCoreSystem::new(2, cpu_cfg(advance), engine);
            let result = sys.run(traces.iter().map(|t| t.iter().copied()).collect());
            (result, sys.backend().stats(), sys.backend().dram_stats())
        };
        prop_assert_eq!(run(Advance::ToNextEvent), run(Advance::PerCycle));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Eight rate-mode cores: the awake-list scheduler is bit-identical
    /// to per-cycle lock-step over both the bare engine and a 4-way
    /// sharded backend, with LLC-share conservation checked inside the
    /// runners.
    #[test]
    fn eight_core_scheduler_matches_per_cycle(
        ops in proptest::collection::vec(
            (0u64..5, 0u64..(1u64 << 32), 1u64..50),
            1..30,
        ),
        sharded in any::<bool>(),
    ) {
        let trace = Arc::new(decode(&ops));
        if sharded {
            prop_assert_eq!(
                run_wide_sharded(8, &trace, Advance::ToNextEvent),
                run_wide_sharded(8, &trace, Advance::PerCycle),
                "8-core sharded diverged"
            );
        } else {
            prop_assert_eq!(
                run_wide_bare(8, &trace, Advance::ToNextEvent),
                run_wide_bare(8, &trace, Advance::PerCycle),
                "8-core bare diverged"
            );
        }
    }

    /// Sixteen rate-mode cores, same pin: more cores than any earlier
    /// suite exercised, so sleep/wake bookkeeping errors that need deep
    /// awake-list churn to surface show up here.
    #[test]
    fn sixteen_core_scheduler_matches_per_cycle(
        ops in proptest::collection::vec(
            (0u64..5, 0u64..(1u64 << 32), 1u64..50),
            1..20,
        ),
        sharded in any::<bool>(),
    ) {
        let trace = Arc::new(decode(&ops));
        if sharded {
            prop_assert_eq!(
                run_wide_sharded(16, &trace, Advance::ToNextEvent),
                run_wide_sharded(16, &trace, Advance::PerCycle),
                "16-core sharded diverged"
            );
        } else {
            prop_assert_eq!(
                run_wide_bare(16, &trace, Advance::ToNextEvent),
                run_wide_bare(16, &trace, Advance::PerCycle),
                "16-core bare diverged"
            );
        }
    }
}

/// End-to-end identity on a real benchmark trace: `MultiCoreSystem{N=1}`
/// is bit-identical to `CpuSystem` over both backends and both advance
/// policies.
#[test]
fn single_core_is_observationally_identical_end_to_end() {
    let bench = Benchmark::by_name("omnetpp").expect("omnetpp exists");
    let trace = bench.generate_shared(25_000, 0xD5);
    for advance in [Advance::ToNextEvent, Advance::PerCycle] {
        assert_eq!(
            run_multi1_bare(&trace, advance),
            run_single_bare(&trace, advance),
            "{advance:?}: bare backend diverged"
        );
        assert_eq!(
            run_multi1_sharded(&trace, advance),
            run_single_sharded(&trace, advance),
            "{advance:?}: sharded backend diverged"
        );
    }
}

/// A 4-core rate-mode run over `ShardedEngine{N=4}` completes under both
/// advance policies with identical per-core results, engine statistics,
/// and DRAM statistics, and the per-core LLC shares sum to the shared
/// LLC's own totals.
#[test]
fn four_core_rate_mode_over_four_channels() {
    let bench = Benchmark::by_name("mcf").expect("mcf exists");
    let trace = bench.generate_shared(8_000, 0xD5);
    let per_copy: u64 = trace.iter().map(TraceOp::instructions).sum();
    let mut reference = None;
    for advance in [Advance::ToNextEvent, Advance::PerCycle] {
        let engine = ShardedEngine::with_options(
            SecurityConfig::secddr_ctr(),
            CPU_MHZ,
            Interleave::xor(4),
            options(advance),
        );
        let mut sys = MultiCoreSystem::new(4, cpu_cfg(advance), engine);
        let result = sys.run(CoreTrace::rate(&trace, DATA_SPAN, 4));
        for r in &result.per_core {
            assert_eq!(r.instructions, per_copy, "{advance:?}: every copy retires");
        }
        let merged = result.merged();
        assert_eq!(
            &merged.llc,
            sys.llc_stats(),
            "{advance:?}: per-core LLC shares must sum to the shared totals"
        );
        assert_eq!(
            merged.cycles,
            result.per_core.iter().map(|r| r.cycles).max().unwrap()
        );
        assert!(result.aggregate_ipc() > 0.0);
        let observed = (
            result,
            sys.backend_mut().stats(),
            sys.backend_mut().dram_stats(),
        );
        match &reference {
            None => reference = Some(observed),
            Some(r) => assert_eq!(
                &observed, r,
                "event-driven 4-core rate mode diverged from per-cycle"
            ),
        }
    }
}
