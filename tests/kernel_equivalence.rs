//! Equivalence of the event-driven kernel against the per-cycle
//! reference: skipping provably idle cycles must not change a single
//! statistic — CPU cycles, cache behaviour, engine metadata traffic, or
//! DRAM command counts.

use secddr::core::config::SecurityConfig;
use secddr::core::system::{run_benchmark_with_advance, RunParams, RunResult};
use secddr::cpu::{CpuConfig, CpuSystem, FixedLatencyBackend, TraceOp};
use secddr::dram::{Advance, DramConfig, DramSystem, MemRequest, ReqKind};
use secddr::workloads::Benchmark;

fn assert_identical(fast: &RunResult, reference: &RunResult, label: &str) {
    assert_eq!(fast.sim, reference.sim, "{label}: SimResult diverged");
    assert_eq!(
        fast.engine, reference.engine,
        "{label}: EngineStats diverged"
    );
    assert_eq!(fast.dram, reference.dram, "{label}: DramStats diverged");
}

/// The ISSUE's core property: a small mcf run at a fixed seed produces
/// identical `SimResult`/`EngineStats`/`DramStats` under both policies.
#[test]
fn mcf_event_driven_matches_per_cycle() {
    let bench = Benchmark::by_name("mcf").expect("mcf exists");
    let params = RunParams {
        instructions: 40_000,
        seed: 0xD5,
    };
    let cfg = SecurityConfig::secddr_ctr();
    let fast = run_benchmark_with_advance(&bench, &cfg, &params, Advance::ToNextEvent);
    let reference = run_benchmark_with_advance(&bench, &cfg, &params, Advance::PerCycle);
    assert_identical(&fast, &reference, "mcf/secddr_ctr");
}

/// The property holds across the mechanism space: metadata-free TDX,
/// tree walks with dirty evictions, and the derated InvisiMem channel
/// all exercise different engine/DRAM paths.
#[test]
fn equivalence_across_configurations() {
    let params = RunParams {
        instructions: 25_000,
        seed: 7,
    };
    let configs = [
        SecurityConfig::tdx_baseline(),
        SecurityConfig::tree_64ary(),
        SecurityConfig::secddr_xts(),
        SecurityConfig::invisimem_realistic(secddr::core::config::EncMode::Xts),
    ];
    // omnetpp is memory-intensive (stresses queue backpressure), povray is
    // compute-bound (stresses the no-skip dispatch path).
    for name in ["omnetpp", "povray"] {
        let bench = Benchmark::by_name(name).expect("known benchmark");
        for cfg in &configs {
            let fast = run_benchmark_with_advance(&bench, cfg, &params, Advance::ToNextEvent);
            let reference = run_benchmark_with_advance(&bench, cfg, &params, Advance::PerCycle);
            assert_identical(&fast, &reference, &format!("{name}/{}", cfg.label()));
        }
    }
}

/// Equivalence at the CPU layer alone, over the fixed-latency backend
/// (pointer chasing exercises the dependent-load stall skip).
#[test]
fn cpu_layer_equivalence_over_fixed_latency() {
    let make_trace = || {
        (0..3_000u64).flat_map(|i| {
            [
                TraceOp::Load(i * 64 * 131),
                TraceOp::DependentLoad(i * 64 * 977),
                TraceOp::Compute((i % 40) as u32 + 1),
                TraceOp::Store(i * 64 * 59),
            ]
            .into_iter()
        })
    };
    let run = |advance: Advance| {
        let cfg = CpuConfig {
            advance,
            ..CpuConfig::default()
        };
        CpuSystem::new(cfg, FixedLatencyBackend::new(333)).run(make_trace())
    };
    assert_eq!(run(Advance::ToNextEvent), run(Advance::PerCycle));
}

/// Equivalence at the DRAM layer alone: `advance_to` with idle-skip must
/// reproduce the per-cycle schedule (commands, latencies, refreshes) on a
/// bursty request pattern with long idle gaps.
#[test]
fn dram_layer_equivalence_with_idle_gaps() {
    let run = |advance: Advance| {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        let mut completions = Vec::new();
        let mut id = 0u64;
        // Bursts separated by gaps long enough to cross refresh windows.
        for burst in 0..8u64 {
            let target = burst * 20_000;
            completions.extend(dram.advance_to(target, advance));
            for i in 0..12u64 {
                let kind = if i % 3 == 0 {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let addr = (burst * 0x1_0000 + i * 0x940) & !63;
                dram.enqueue(MemRequest::new(id, kind, addr, dram.cycle()))
                    .unwrap();
                id += 1;
            }
        }
        completions.extend(dram.advance_to(200_000, advance));
        (completions, dram.stats().clone())
    };
    let (fast_completions, fast_stats) = run(Advance::ToNextEvent);
    let (ref_completions, ref_stats) = run(Advance::PerCycle);
    assert_eq!(
        fast_completions, ref_completions,
        "completion schedule diverged"
    );
    assert_eq!(fast_stats, ref_stats, "DRAM stats diverged");
}

/// The fast path must actually skip: on a memory-bound run it should not
/// cost more wall-clock than the reference (coarse sanity, not a perf
/// test — the real numbers live in BENCH_kernel.json).
#[test]
fn event_driven_simulates_fewer_host_operations() {
    let bench = Benchmark::by_name("mcf").expect("mcf exists");
    let params = RunParams {
        instructions: 30_000,
        seed: 1,
    };
    let cfg = SecurityConfig::tree_64ary();
    let t0 = std::time::Instant::now();
    let fast = run_benchmark_with_advance(&bench, &cfg, &params, Advance::ToNextEvent);
    let fast_wall = t0.elapsed();
    let t1 = std::time::Instant::now();
    let reference = run_benchmark_with_advance(&bench, &cfg, &params, Advance::PerCycle);
    let ref_wall = t1.elapsed();
    assert_identical(&fast, &reference, "mcf/tree_64ary");
    // Generous 2x slack: debug builds and CI noise must not flake this.
    assert!(
        fast_wall <= ref_wall * 2,
        "fast path should not be slower: {fast_wall:?} vs {ref_wall:?}"
    );
}
