//! Fleet dispatcher integration: the dispatcher's event stream is
//! bit-identical to the single-service path, identical resubmissions
//! are served entirely from the result store (zero cells executed),
//! and killing one of N workers requeues its work and completes the
//! job with correct results.

use secddr::core::config::SecurityConfig;
use secddr::fleet::{Dispatcher, DispatcherConfig};
use secddr::service::net::event_to_json;
use secddr::service::{ExperimentServer, ExperimentService, JobSpec, Json, ShutdownHandle};
use secddr::Registry;
use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes the tests in this binary: the fleet counters the
/// assertions read are process-wide, so a concurrently running sibling
/// test would perturb the deltas.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An in-process `secddr-serve` worker on an ephemeral loopback port,
/// shut down cleanly on drop.
struct WorkerGuard {
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    serve: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl WorkerGuard {
    fn start(threads: usize) -> Self {
        let server =
            ExperimentServer::bind("127.0.0.1:0", ExperimentService::with_threads(threads))
                .expect("bind worker");
        let addr = server.local_addr().expect("bound address");
        let shutdown = server.shutdown_handle();
        let serve = std::thread::spawn(move || server.serve());
        Self {
            addr,
            shutdown,
            serve: Some(serve),
        }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.shutdown.shutdown();
        if let Some(serve) = self.serve.take() {
            let _ = serve.join();
        }
    }
}

/// Drops the `job` member so streams from different front-ends (which
/// assign different ids) compare bit-identically.
fn strip_job(json: Json) -> Json {
    match json {
        Json::Obj(members) => Json::Obj(members.into_iter().filter(|(k, _)| k != "job").collect()),
        other => other,
    }
}

/// The uninterrupted single-service event stream for `spec`, as wire
/// lines minus the job id and the live metrics frames (which the
/// dispatcher, by design, does not forward).
fn reference_lines(spec: &JobSpec) -> Vec<String> {
    let service = ExperimentService::with_threads(2);
    let handle = service.submit(spec.clone()).expect("reference submit");
    handle
        .events()
        .map(|event| event_to_json(&event))
        .filter(|json| json.get("type").and_then(Json::as_str) != Some("metrics_frame"))
        .map(|json| strip_job(json).to_string())
        .collect()
}

fn fleet_lines(events: Vec<Json>) -> Vec<String> {
    events
        .into_iter()
        .map(|json| strip_job(json).to_string())
        .collect()
}

fn counter_delta(
    after: &std::collections::BTreeMap<String, u64>,
    before: &std::collections::BTreeMap<String, u64>,
    name: &str,
) -> u64 {
    after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0)
}

fn two_config_spec() -> JobSpec {
    let mut spec = JobSpec::bench("mcf");
    spec.instructions = 5_000;
    spec.configs = vec![SecurityConfig::secddr_ctr(), SecurityConfig::tdx_baseline()];
    spec
}

#[test]
fn dispatcher_stream_is_bit_identical_to_single_service() {
    let _guard = serialize();
    let worker = WorkerGuard::start(2);
    let spec = two_config_spec();
    let expected = reference_lines(&spec);
    let dispatcher = Dispatcher::start(DispatcherConfig {
        workers: vec![worker.addr.to_string()],
        ..DispatcherConfig::default()
    })
    .expect("start dispatcher");
    let handle = dispatcher.submit(&spec).expect("submit");
    assert_eq!(handle.cells, 2);
    let got = fleet_lines(handle.wait());
    assert_eq!(got, expected, "dispatched stream == single-service stream");
}

#[test]
fn identical_resubmission_executes_zero_cells_with_identical_results() {
    let _guard = serialize();
    let worker = WorkerGuard::start(2);
    let dispatcher = Dispatcher::start(DispatcherConfig {
        workers: vec![worker.addr.to_string()],
        ..DispatcherConfig::default()
    })
    .expect("start dispatcher");
    let spec = two_config_spec();
    let first = fleet_lines(dispatcher.submit(&spec).expect("first submit").wait());

    let before = Registry::global().snapshot().counters;
    let second = fleet_lines(dispatcher.submit(&spec).expect("second submit").wait());
    let after = Registry::global().snapshot().counters;

    assert_eq!(second, first, "memoized stream is bit-identical");
    assert_eq!(
        counter_delta(&after, &before, "fleet.cells.dispatched"),
        0,
        "zero cells reached a worker"
    );
    assert_eq!(
        counter_delta(&after, &before, "fleet.result_cache.hits"),
        2,
        "both cells served from the result store"
    );
    // Priority is scheduling-only: a different priority still hits.
    let mut reprioritized = spec.clone();
    reprioritized.priority = 7;
    let third = fleet_lines(
        dispatcher
            .submit(&reprioritized)
            .expect("third submit")
            .wait(),
    );
    assert_eq!(third, first);
}

#[test]
fn killing_one_of_two_workers_requeues_and_completes_identically() {
    let _guard = serialize();
    let worker_a = WorkerGuard::start(1);
    let worker_b = WorkerGuard::start(1);
    let mut spec = JobSpec::bench("omnetpp");
    spec.instructions = 5_000;
    spec.configs = vec![
        SecurityConfig::secddr_ctr(),
        SecurityConfig::secddr_xts(),
        SecurityConfig::tdx_baseline(),
        SecurityConfig::encrypt_only_ctr(),
    ];
    let expected = reference_lines(&spec);

    let before = Registry::global().snapshot().counters;
    let dispatcher = Dispatcher::start(DispatcherConfig {
        workers: vec![worker_a.addr.to_string(), worker_b.addr.to_string()],
        max_outstanding: 1, // force both workers into play
        ..DispatcherConfig::default()
    })
    .expect("start dispatcher");
    let handle = dispatcher.submit(&spec).expect("submit");
    // Cells are now in flight on both workers; tear one link down.
    dispatcher.sever_worker(0);
    let got = fleet_lines(handle.wait());
    let after = Registry::global().snapshot().counters;

    assert_eq!(
        got, expected,
        "job completes bit-identically despite the death"
    );
    let status = dispatcher.workers();
    assert!(!status[0].alive, "severed worker is reported dead");
    assert!(status[1].alive, "surviving worker is still up");
    assert!(
        counter_delta(&after, &before, "fleet.worker.deaths") >= 1,
        "the death was counted"
    );
    assert!(
        counter_delta(&after, &before, "fleet.cells.requeued") >= 1,
        "the dead worker's cell went back to the queue"
    );
}
