//! Differential tests for PR 7's event-ized *busy* path:
//!
//! `DramSystem::tick_until(target)` must be bit-identical to `target -
//! now` sequential `tick()` calls — same completion stream (with
//! cycle stamps), same statistics (command counts, refresh timing,
//! occupancy histograms), and therefore the same scheduler decisions —
//! while executing strictly fewer cycles. The per-cycle loop is the
//! retained reference, in the same spirit as PR 2's `NaiveRescan`.

use proptest::prelude::*;
use secddr::dram::{Advance, DramConfig, DramSystem, MemRequest, ReqKind};

/// One step of a randomized controller workload.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Enqueue (read?, address) at the current cycle.
    Enqueue(bool, u64),
    /// Advance the channel `n` cycles.
    Jump(u16),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<bool>(), 0u64..(1 << 28)).prop_map(|(r, a)| Step::Enqueue(r, a & !63)),
        // Write bursts over a small footprint pile onto few banks and
        // cross the drain-mode hysteresis thresholds.
        (0u64..(1 << 22)).prop_map(|a| Step::Enqueue(false, a & !63)),
        (1u16..3_000).prop_map(Step::Jump),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `tick_until` ≡ sequential ticks across random traffic, rank
    /// counts, FCFS modes, and drain boundaries. The event-driven run
    /// also re-validates the controller's incremental state (including
    /// the decision-bound cache ratchet) at the end.
    #[test]
    fn tick_until_matches_sequential_ticks(
        steps in proptest::collection::vec(step_strategy(), 1..120),
        ranks in 1u32..3,
        fcfs in any::<bool>(),
    ) {
        let run = |event_driven: bool| {
            let mut cfg = DramConfig::ddr4_3200();
            cfg.ranks = ranks;
            cfg.fcfs = fcfs;
            let mut dram = DramSystem::new(cfg);
            let mut completions = Vec::new();
            let mut id = 0u64;
            for step in &steps {
                match *step {
                    Step::Enqueue(read, addr) => {
                        let kind = if read { ReqKind::Read } else { ReqKind::Write };
                        let _ = dram.enqueue(MemRequest::new(id, kind, addr, dram.cycle()));
                        id += 1;
                    }
                    Step::Jump(n) => {
                        let target = dram.cycle() + u64::from(n);
                        if event_driven {
                            completions.extend(dram.tick_until(target));
                        } else {
                            while dram.cycle() < target {
                                let at = dram.cycle() + 1;
                                for c in dram.tick() {
                                    completions.push((at, c));
                                }
                            }
                        }
                    }
                }
            }
            // Drain so in-flight work is also compared.
            let target = dram.cycle() + 20_000;
            if event_driven {
                completions.extend(dram.tick_until(target));
                dram.validate_incremental_state().expect("incremental state consistent");
            } else {
                while dram.cycle() < target {
                    let at = dram.cycle() + 1;
                    for c in dram.tick() {
                        completions.push((at, c));
                    }
                }
            }
            (completions, dram.stats(), dram.telemetry())
        };
        let (fast_c, fast_s, fast_t) = run(true);
        let (ref_c, ref_s, ref_t) = run(false);
        prop_assert_eq!(fast_c, ref_c, "completion schedule diverged");
        prop_assert_eq!(fast_s.clone(), ref_s, "stats diverged");
        // Policy-invariant busy coverage, fewer-or-equal executed cycles,
        // and cause buckets that partition the executed cycles exactly.
        prop_assert_eq!(fast_t.busy_cycles, ref_t.busy_cycles);
        prop_assert!(fast_t.decision_cycles <= fast_s.cycles);
        prop_assert_eq!(fast_t.causes.total(), fast_t.decision_cycles);
        prop_assert_eq!(ref_t.causes.total(), ref_t.decision_cycles);
    }

    /// `advance_to(_, ToNextEvent)` (which rides `tick_until`) returns
    /// the same completion batches as the per-cycle policy at every
    /// interleaving boundary, not just in aggregate.
    #[test]
    fn advance_to_policies_agree_per_window(
        steps in proptest::collection::vec(step_strategy(), 1..80),
    ) {
        let mut fast = DramSystem::new(DramConfig::ddr4_3200());
        let mut slow = DramSystem::new(DramConfig::ddr4_3200());
        let mut id = 0u64;
        for step in &steps {
            match *step {
                Step::Enqueue(read, addr) => {
                    let kind = if read { ReqKind::Read } else { ReqKind::Write };
                    let _ = fast.enqueue(MemRequest::new(id, kind, addr, fast.cycle()));
                    let _ = slow.enqueue(MemRequest::new(id, kind, addr, slow.cycle()));
                    id += 1;
                }
                Step::Jump(n) => {
                    let target = fast.cycle() + u64::from(n);
                    prop_assert_eq!(
                        fast.advance_to(target, Advance::ToNextEvent),
                        slow.advance_to(target, Advance::PerCycle),
                        "window completions diverged"
                    );
                }
            }
        }
        prop_assert_eq!(fast.stats(), slow.stats());
    }
}

/// Refresh timing across long idle-and-busy spans: a single `tick_until`
/// jump over several tREFI intervals must arm, serialize, and issue
/// exactly the refreshes the per-cycle reference does.
#[test]
fn tick_until_preserves_refresh_timing_over_long_spans() {
    let run = |event_driven: bool| {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        let mut completions = Vec::new();
        let mut id = 0u64;
        for round in 0..6u64 {
            // A small burst, then a jump crossing multiple refresh dues.
            for i in 0..8u64 {
                let addr = ((round * 8 + i) * 0x1_1040) & !63;
                let kind = if i % 3 == 0 {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let _ = dram.enqueue(MemRequest::new(id, kind, addr, dram.cycle()));
                id += 1;
            }
            let target = dram.cycle() + 40_000;
            if event_driven {
                completions.extend(dram.tick_until(target));
            } else {
                while dram.cycle() < target {
                    let at = dram.cycle() + 1;
                    for c in dram.tick() {
                        completions.push((at, c));
                    }
                }
            }
        }
        (completions, dram.stats(), dram.telemetry())
    };
    let (fast_c, fast_s, fast_t) = run(true);
    let (ref_c, ref_s, _) = run(false);
    assert_eq!(fast_c, ref_c, "completion schedule diverged");
    assert_eq!(fast_s, ref_s, "stats diverged");
    assert!(
        fast_s.refreshes >= 2 * 6 * 3,
        "the spans must actually cross refresh intervals: {}",
        fast_s.refreshes
    );
    assert!(
        fast_t.decision_cycles * 4 < fast_s.cycles,
        "long spans must be dominated by skipped cycles: {} of {}",
        fast_t.decision_cycles,
        fast_s.cycles
    );
}
