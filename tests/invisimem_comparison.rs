//! Functional head-to-head of SecDDR and the DDR-adapted InvisiMem channel
//! (Section VI of the paper): both detect the same attack classes, but at
//! different points and with different trust requirements.

use secddr::functional::attacks::WriteDropper;
use secddr::functional::dimm::WriteOutcome;
use secddr::functional::invisimem::{attested_pair, ChannelError};
use secddr::functional::{EncryptionMode, SecureChannel};

/// Both schemes detect a dropped write; InvisiMem at the *next
/// transaction*, SecDDR at the *next read*.
#[test]
fn dropped_write_detection_points_differ() {
    // InvisiMem: the very next write fails memory-side verification.
    let (mut cpu, mut module) = attested_pair(1);
    let _dropped = cpu.begin_write(0x40, &[1; 64]);
    let next = cpu.begin_write(0x80, &[2; 64]);
    assert_eq!(
        module.accept_write(&next).unwrap_err(),
        ChannelError::BadTransactionMac,
        "InvisiMem detects at the next write, memory-side"
    );

    // SecDDR never verifies data MACs on the DIMM, but the counter
    // desynchronization scrambles the *next* write's decrypted eWCRC, so
    // the ECC chip raises an alert there; all subsequent reads fail on the
    // processor as well.
    let mut ch = SecureChannel::with_interposer(EncryptionMode::Xts, 1, WriteDropper::new(0));
    assert_eq!(ch.write(0x40, &[1; 64]), WriteOutcome::DroppedOnBus);
    let next_write = ch.write(0x80, &[2; 64]);
    assert_eq!(
        next_write,
        WriteOutcome::EwcrcRejected,
        "desynchronized write pads scramble the eWCRC at the chip"
    );
    assert_eq!(ch.rank.ewcrc_alerts, 1);
    assert!(ch.read(0x80).is_err(), "and reads fail processor-side");
}

/// Tampered writes: InvisiMem rejects in the module (needs the whole line
/// centralized and trusted); SecDDR's chip-side check covers only the
/// address binding (eWCRC), while data corruption defers to read-time MAC
/// verification.
#[test]
fn write_tamper_detection_points_differ() {
    let (mut cpu, mut module) = attested_pair(2);
    let mut pkt = cpu.begin_write(0x40, &[1; 64]);
    pkt.data[0] ^= 1;
    assert!(module.accept_write(&pkt).is_err(), "InvisiMem: immediate");

    let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 2);
    let mut tx = ch.processor.begin_write(0x40, &[1; 64]);
    tx.data[0] ^= 1; // corrupt a data lane (not the ECC lanes)
    assert_eq!(
        ch.rank.accept_write(&tx),
        WriteOutcome::Committed,
        "SecDDR: the chip does not check data MACs..."
    );
    assert!(
        ch.read(0x40).is_err(),
        "...detection lands at the next read"
    );
}

/// Replay resistance is equivalent: both channels reject stale packets.
#[test]
fn both_reject_replays() {
    // InvisiMem.
    let (mut cpu, mut module) = attested_pair(3);
    let w = cpu.begin_write(0x40, &[1; 64]);
    module.accept_write(&w).expect("honest");
    let ct = cpu.begin_read();
    let resp = module.serve_read(0x40).expect("ok");
    assert!(cpu.finish_read(0x40, ct, &resp).is_ok());
    let ct2 = cpu.begin_read();
    let _ = module.serve_read(0x40).expect("ok");
    assert!(
        cpu.finish_read(0x40, ct2, &resp).is_err(),
        "InvisiMem replay"
    );

    // SecDDR.
    use secddr::functional::attacks::BusReplay;
    let mut ch = SecureChannel::with_interposer(EncryptionMode::Xts, 3, BusReplay::new(0, 1));
    ch.write(0x40, &[1; 64]);
    assert!(ch.read(0x40).is_ok());
    assert!(ch.read(0x40).is_err(), "SecDDR replay");
}

/// The structural argument of Section VI-B: InvisiMem's memory-side
/// verification consumes the full line in one operation, which is exactly
/// what a chip-distributed DDR DIMM cannot provide. SecDDR's chip-side
/// work touches only the ECC chip's own burst (MAC + CRC).
#[test]
fn secddr_chip_work_is_local_to_the_ecc_chip() {
    // Expressed as an API-level fact: the SecDDR rank write path validates
    // with only (emac, ewcrc, addr) — 10 bytes of ECC-chip payload — while
    // the InvisiMem module path requires all 64 data bytes for its MAC.
    // (The types make the dependency explicit; this test documents it.)
    let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 4);
    let tx = ch.processor.begin_write(0x40, &[5; 64]);
    // The ECC-chip check is a function of the ECC-lane payload only: a
    // transaction with identical (addr, emac, ewcrc) but different data
    // lanes passes the chip check (and is caught later by the processor).
    let mut forged = tx;
    forged.data = [6; 64];
    assert_eq!(ch.rank.accept_write(&forged), WriteOutcome::Committed);
}
