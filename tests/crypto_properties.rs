//! Property-based tests on the cryptographic substrate.

use proptest::prelude::*;

use secddr::crypto::aes::Aes128;
use secddr::crypto::crc::{crc16, Ewcrc, WriteAddress};
use secddr::crypto::ctr::CtrStream;
use secddr::crypto::dh::U256;
use secddr::crypto::mac::Cmac;
use secddr::crypto::otp::TransactionCounter;
use secddr::crypto::sha256::Sha256;
use secddr::crypto::xts::XtsAes128;

proptest! {
    #[test]
    fn aes_roundtrips(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    #[test]
    fn aes_is_injective_per_key(key in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        prop_assume!(a != b);
        let aes = Aes128::new(&key);
        prop_assert_ne!(aes.encrypt_block(&a), aes.encrypt_block(&b));
    }

    #[test]
    fn xts_roundtrips(dk in any::<[u8; 16]>(), tk in any::<[u8; 16]>(),
                      unit in any::<u64>(), data in any::<[u8; 64]>()) {
        let xts = XtsAes128::new(&dk, &tk);
        let mut buf = data;
        xts.encrypt_units(unit, &mut buf);
        prop_assert_ne!(buf, data);
        xts.decrypt_units(unit, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn ctr_roundtrips(key in any::<[u8; 16]>(), nonce in any::<u64>(),
                      ctr in any::<u64>(), data in any::<[u8; 64]>()) {
        let ks = CtrStream::new(Aes128::new(&key));
        let mut buf = data;
        ks.xor_keystream(nonce, ctr, &mut buf);
        ks.xor_keystream(nonce, ctr, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn cmac_detects_any_single_bit_flip(key in any::<[u8; 16]>(), data in any::<[u8; 64]>(),
                                        addr in any::<u64>(), byte in 0usize..64, bit in 0u8..8) {
        let cmac = Cmac::new(Aes128::new(&key));
        let mac = cmac.line_mac(&data, addr);
        let mut corrupted = data;
        corrupted[byte] ^= 1 << bit;
        prop_assert_ne!(cmac.line_mac(&corrupted, addr), mac);
    }

    #[test]
    fn cmac_binds_address(key in any::<[u8; 16]>(), data in any::<[u8; 64]>(),
                          a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let cmac = Cmac::new(Aes128::new(&key));
        prop_assert_ne!(cmac.line_mac(&data, a), cmac.line_mac(&data, b));
    }

    #[test]
    fn crc16_linearity_like_detection(data in proptest::collection::vec(any::<u8>(), 1..64),
                                      byte_idx in 0usize..64, mask in 1u8..=255) {
        let idx = byte_idx % data.len();
        let base = crc16(&data);
        let mut corrupted = data.clone();
        corrupted[idx] ^= mask;
        prop_assert_ne!(crc16(&corrupted), base);
    }

    #[test]
    fn ewcrc_detects_any_address_field_change(data in any::<[u8; 8]>(),
                                              rank in 0u8..2, bg in 0u8..4, bank in 0u8..4,
                                              row in any::<u32>(), col in 0u16..128,
                                              row_xor in 1u32..0xFFFF) {
        let addr = WriteAddress { rank, bank_group: bg, bank, row, column: col };
        let c = Ewcrc::generate(&data, &addr);
        let wrong = WriteAddress { row: row ^ row_xor, ..addr };
        prop_assert!(!Ewcrc::verify(&data, &wrong, c));
    }

    #[test]
    fn pads_never_repeat_within_a_run(key in any::<[u8; 16]>(), seed in 0u64..1_000_000,
                                      ops in proptest::collection::vec(any::<bool>(), 1..64)) {
        let kt = Aes128::new(&key);
        let mut ct = TransactionCounter::new(seed);
        let mut seen = std::collections::HashSet::new();
        for is_write in ops {
            let pad = if is_write { ct.write_pad(&kt, 0x40) } else { ct.read_pad(&kt) };
            // Compare by effect on a fixed MAC value.
            prop_assert!(seen.insert(pad.apply(0)), "pad reuse detected");
        }
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                         split in 0usize..512) {
        let split = split.min(data.len());
        let oneshot = Sha256::digest(&data);
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn u256_modular_arithmetic_matches_u128(a in any::<u64>(), b in any::<u64>(), m in 2u64..) {
        let m256 = U256::from_u64(m);
        let a256 = U256::from_u64(a % m);
        let b256 = U256::from_u64(b % m);
        let sum = a256.add_mod(b256, &m256);
        prop_assert_eq!(sum, U256::from_u64(((u128::from(a % m) + u128::from(b % m)) % u128::from(m)) as u64));
        let prod = a256.mul_mod(b256, &m256);
        prop_assert_eq!(prod, U256::from_u64((u128::from(a % m) * u128::from(b % m) % u128::from(m)) as u64));
        let diff = a256.sub_mod(b256, &m256);
        let expect = (u128::from(a % m) + u128::from(m) - u128::from(b % m)) % u128::from(m);
        prop_assert_eq!(diff, U256::from_u64(expect as u64));
    }

    #[test]
    fn u256_pow_matches_u128(base in 1u64..1000, exp in 0u64..64, m in 2u64..1_000_000) {
        let got = U256::from_u64(base % m).pow_mod(&U256::from_u64(exp), &U256::from_u64(m));
        let mut expect: u128 = 1;
        for _ in 0..exp {
            expect = expect * u128::from(base % m) % u128::from(m);
        }
        prop_assert_eq!(got, U256::from_u64(expect as u64));
    }
}
