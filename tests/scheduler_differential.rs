//! Differential and property tests for PR 2's incremental machinery:
//!
//! * the controller's per-bank eligibility FIFOs must match a
//!   from-scratch queue rescan after arbitrary enqueue/issue/advance
//!   interleavings, and the incremental scheduler must make exactly the
//!   decisions of the retained naive-rescan reference;
//! * `MemoryBackend::submit_batch` must be observationally identical to
//!   one `submit` call per access, at the engine level and end-to-end.

use proptest::prelude::*;
use secddr::core::config::SecurityConfig;
use secddr::core::engine::{EngineOptions, SecurityEngine};
use secddr::core::system::{run_benchmark_with_options, RunParams};
use secddr::cpu::system::{AccessKind, BatchAccess, MemoryBackend};
use secddr::dram::{Advance, DramConfig, DramSystem, MemRequest, ReqKind, SchedulerMode};
use secddr::workloads::Benchmark;

/// One step of a randomized controller workload.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Enqueue (read?, address, then tick once).
    Enqueue(bool, u64),
    /// Tick `n` cycles.
    Tick(u8),
    /// `advance_to(now + n)` with the event-driven policy.
    Skip(u16),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<bool>(), 0u64..(1 << 28)).prop_map(|(r, a)| Step::Enqueue(r, a & !63)),
        (1u8..60).prop_map(Step::Tick),
        (1u16..2_000).prop_map(Step::Skip),
    ]
}

fn apply_steps(dram: &mut DramSystem, steps: &[Step], check_decisions: bool) {
    let mut id = 0u64;
    for step in steps {
        match *step {
            Step::Enqueue(read, addr) => {
                let kind = if read { ReqKind::Read } else { ReqKind::Write };
                let _ = dram.enqueue(MemRequest::new(id, kind, addr, dram.cycle()));
                id += 1;
                dram.tick();
            }
            Step::Tick(n) => {
                for _ in 0..n {
                    if check_decisions {
                        assert_eq!(
                            dram.next_sched_action(),
                            dram.next_sched_action_rescan(),
                            "scheduler decisions diverged at cycle {}",
                            dram.cycle()
                        );
                    }
                    dram.tick();
                }
            }
            Step::Skip(n) => {
                let target = dram.cycle() + u64::from(n);
                let _ = dram.advance_to(target, Advance::ToNextEvent);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The incremental per-bank eligibility state matches a from-scratch
    /// rescan of the queues after arbitrary interleavings, and the
    /// incremental scheduler always picks the rescan scheduler's action.
    #[test]
    fn incremental_state_matches_rescan(
        steps in proptest::collection::vec(step_strategy(), 1..120),
        fcfs in any::<bool>(),
    ) {
        let mut cfg = DramConfig::ddr4_3200();
        cfg.fcfs = fcfs;
        let mut dram = DramSystem::new(cfg);
        apply_steps(&mut dram, &steps, true);
        dram.validate_incremental_state().expect("incremental state consistent");
    }

    /// Driving the full controller with the incremental scheduler and
    /// with the retained naive-rescan reference yields bit-identical
    /// statistics (and therefore identical command schedules).
    #[test]
    fn incremental_and_rescan_schedules_agree(
        steps in proptest::collection::vec(step_strategy(), 1..100),
    ) {
        let run = |mode: SchedulerMode| {
            let mut dram = DramSystem::new(DramConfig::ddr4_3200());
            dram.set_scheduler_mode(mode);
            apply_steps(&mut dram, &steps, false);
            // Drain so in-flight work is also compared.
            let target = dram.cycle() + 5_000;
            let tail = dram.advance_to(target, Advance::PerCycle);
            (tail, dram.stats())
        };
        let (inc_tail, inc_stats) = run(SchedulerMode::Incremental);
        let (ref_tail, ref_stats) = run(SchedulerMode::NaiveRescan);
        prop_assert_eq!(inc_tail, ref_tail);
        prop_assert_eq!(inc_stats, ref_stats);
    }

    /// `submit_batch` is observationally identical to one `submit` per
    /// access: same per-access results, same engine statistics, same DRAM
    /// statistics, same completion stream.
    #[test]
    fn submit_batch_matches_per_call_submits(
        accesses in proptest::collection::vec(
            (any::<bool>(), 0u64..(1u64 << 32), any::<bool>()),
            1..24,
        ),
        gap in 1u64..400,
    ) {
        let build = || SecurityEngine::new(SecurityConfig::secddr_ctr(), 3200);
        let mut per_call = build();
        let mut batched = build();
        let mut now = 100u64;
        for chunk in accesses.chunks(6) {
            let batch: Vec<BatchAccess> = chunk
                .iter()
                .map(|&(read, addr, pf)| BatchAccess {
                    kind: if read { AccessKind::Read } else { AccessKind::Write },
                    addr: addr & !63,
                    is_prefetch: pf,
                })
                .collect();
            let per_call_results: Vec<_> = batch
                .iter()
                .map(|b| per_call.submit(b.kind, b.addr, now, b.is_prefetch))
                .collect();
            let mut batch_results = Vec::new();
            batched.submit_batch(&batch, now, &mut batch_results);
            prop_assert_eq!(&per_call_results, &batch_results);
            now += gap;
            prop_assert_eq!(per_call.tick(now), batched.tick(now));
        }
        for _ in 0..200 {
            now += 50;
            prop_assert_eq!(per_call.tick(now), batched.tick(now));
        }
        prop_assert_eq!(per_call.stats(), batched.stats());
        prop_assert_eq!(per_call.dram_stats(), batched.dram_stats());
    }
}

/// End-to-end: a full benchmark run with batched ingestion enabled is
/// bit-identical to the same run issuing every access through `submit`,
/// under both advance policies.
#[test]
fn batched_ingestion_is_observationally_identical_end_to_end() {
    let bench = Benchmark::by_name("omnetpp").expect("omnetpp exists");
    let params = RunParams {
        instructions: 30_000,
        seed: 0xD5,
    };
    for advance in [Advance::ToNextEvent, Advance::PerCycle] {
        let run = |batched: bool| {
            let options = EngineOptions {
                advance,
                batched_ingestion: batched,
                ..EngineOptions::default()
            };
            run_benchmark_with_options(&bench, &SecurityConfig::secddr_ctr(), &params, options)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.sim, off.sim, "{advance:?}: SimResult diverged");
        assert_eq!(on.engine, off.engine, "{advance:?}: EngineStats diverged");
        assert_eq!(on.dram, off.dram, "{advance:?}: DramStats diverged");
    }
}

/// End-to-end: the incremental scheduler and the naive-rescan reference
/// produce identical results through the whole cpu→engine→dram stack.
#[test]
fn full_stack_matches_rescan_scheduler_reference() {
    // The controller is constructed inside the engine, so compare the two
    // scheduler implementations through the public differential seam on a
    // heavy random mix instead.
    use rand::{Rng, SeedableRng};
    let run = |mode: SchedulerMode| {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        dram.set_scheduler_mode(mode);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2024);
        let mut completions = Vec::new();
        let mut id = 0;
        for t in 0..60_000u64 {
            if rng.gen_bool(0.4) {
                let kind = if rng.gen_bool(0.3) {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let addr = rng.gen_range(0..(1u64 << 30)) & !63;
                if dram.enqueue(MemRequest::new(id, kind, addr, t)).is_ok() {
                    id += 1;
                }
            }
            completions.extend(dram.tick());
        }
        (completions, dram.stats())
    };
    let (inc_c, inc_s) = run(SchedulerMode::Incremental);
    let (ref_c, ref_s) = run(SchedulerMode::NaiveRescan);
    assert_eq!(inc_c, ref_c, "completion schedules diverged");
    assert_eq!(inc_s, ref_s, "statistics diverged");
    assert!(
        inc_s.reads + inc_s.writes > 2_000,
        "the mix must exercise real traffic"
    );
}

/// Regression: a confident descending stream near address zero emits a
/// prefetch volley whose clamped targets repeat line 0. The batched
/// filter must dedupe within the volley exactly as the per-call path's
/// `outstanding` recheck does, or the two ingestion modes diverge.
#[test]
fn batched_prefetch_dedupes_clamped_descending_volley() {
    use secddr::cpu::{CpuConfig, CpuSystem, TraceOp};
    let make_trace = || {
        (0..32u64)
            .rev()
            .map(|i| TraceOp::Load(i * 64))
            .collect::<Vec<_>>()
    };
    for advance in [Advance::ToNextEvent, Advance::PerCycle] {
        let run = |batch: bool| {
            let cfg = CpuConfig {
                advance,
                batch_submit: batch,
                ..CpuConfig::default()
            };
            let engine = SecurityEngine::new(SecurityConfig::secddr_ctr(), cfg.clock_mhz);
            let mut sys = CpuSystem::new(cfg, engine);
            let sim = sys.run(make_trace().into_iter());
            (sim, sys.backend().stats(), sys.backend().dram_stats())
        };
        assert_eq!(
            run(true),
            run(false),
            "{advance:?}: ingestion modes diverged"
        );
    }
}
