//! Crash-recovery coverage: jobs written through the write-ahead log
//! survive a dispatcher death mid-queue, replay to completion with
//! results bit-identical to an uninterrupted run, and duplicate
//! `(spec, seed)` submissions execute zero new cells.

use secddr::core::config::SecurityConfig;
use secddr::fleet::{Dispatcher, DispatcherConfig};
use secddr::service::net::event_to_json;
use secddr::service::{ExperimentServer, ExperimentService, JobSpec, Json, ShutdownHandle};
use secddr::Registry;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes the tests in this binary — the fleet counters the
/// assertions read are process-wide.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("secddr-recovery-{tag}-{}-{n}", std::process::id()))
}

struct WorkerGuard {
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    serve: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl WorkerGuard {
    fn start(threads: usize) -> Self {
        let server =
            ExperimentServer::bind("127.0.0.1:0", ExperimentService::with_threads(threads))
                .expect("bind worker");
        let addr = server.local_addr().expect("bound address");
        let shutdown = server.shutdown_handle();
        let serve = std::thread::spawn(move || server.serve());
        Self {
            addr,
            shutdown,
            serve: Some(serve),
        }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.shutdown.shutdown();
        if let Some(serve) = self.serve.take() {
            let _ = serve.join();
        }
    }
}

fn strip_job(json: Json) -> Json {
    match json {
        Json::Obj(members) => Json::Obj(members.into_iter().filter(|(k, _)| k != "job").collect()),
        other => other,
    }
}

fn reference_lines(spec: &JobSpec) -> Vec<String> {
    let service = ExperimentService::with_threads(2);
    let handle = service.submit(spec.clone()).expect("reference submit");
    handle
        .events()
        .map(|event| event_to_json(&event))
        .filter(|json| json.get("type").and_then(Json::as_str) != Some("metrics_frame"))
        .map(|json| strip_job(json).to_string())
        .collect()
}

fn counter(name: &str) -> u64 {
    Registry::global()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

#[test]
fn restart_replays_incomplete_jobs_bit_identically_and_dedupes() {
    let _guard = serialize();
    let log_dir = temp_dir("log");
    let store_dir = temp_dir("store");
    let mut spec = JobSpec::bench("mcf");
    spec.instructions = 5_000;
    spec.configs = vec![SecurityConfig::secddr_ctr(), SecurityConfig::tdx_baseline()];
    let expected = reference_lines(&spec);

    // Phase 1: a dispatcher with zero workers accepts (and logs) the
    // job twice — once with a different priority, which must dedupe —
    // then dies mid-queue with nothing executed.
    {
        let dispatcher = Dispatcher::start(DispatcherConfig {
            log_dir: Some(log_dir.clone()),
            store_dir: Some(store_dir.clone()),
            ..DispatcherConfig::default()
        })
        .expect("start phase-1 dispatcher");
        let first = dispatcher.submit(&spec).expect("submit");
        let mut duplicate = spec.clone();
        duplicate.priority = 3;
        let second = dispatcher.submit(&duplicate).expect("duplicate submit");
        assert_eq!(first.cells, 2);
        assert_eq!(second.cells, 2);
        // The dispatcher drops here: queued jobs are lost from memory
        // but durable in the log.
    }

    // Phase 2: restart against the same dirs, now with a live worker.
    // The incomplete set replays — deduped by content hash — and runs
    // to completion.
    let worker = WorkerGuard::start(2);
    let dispatched_before_replay = counter("fleet.cells.dispatched");
    let dispatcher = Dispatcher::start(DispatcherConfig {
        workers: vec![worker.addr.to_string()],
        log_dir: Some(log_dir.clone()),
        store_dir: Some(store_dir.clone()),
        ..DispatcherConfig::default()
    })
    .expect("start phase-2 dispatcher");
    assert_eq!(
        dispatcher.replayed(),
        1,
        "duplicate (spec, seed) submissions dedupe to one replay"
    );
    dispatcher.drain();
    assert_eq!(
        counter("fleet.cells.dispatched") - dispatched_before_replay,
        2,
        "the replayed job executed exactly its own cells"
    );

    // Phase 3: an identical resubmission is served entirely from the
    // result store the replay filled — zero new cells, and the stream
    // is bit-identical to the uninterrupted single-service run (which
    // also proves the replayed results themselves were bit-identical).
    let dispatched_before = counter("fleet.cells.dispatched");
    let hits_before = counter("fleet.result_cache.hits");
    let handle = dispatcher.submit(&spec).expect("resubmit");
    let got: Vec<String> = handle
        .wait()
        .into_iter()
        .map(|json| strip_job(json).to_string())
        .collect();
    assert_eq!(got, expected, "replayed+memoized results are bit-identical");
    assert_eq!(
        counter("fleet.cells.dispatched") - dispatched_before,
        0,
        "duplicate executed zero new cells"
    );
    assert_eq!(
        counter("fleet.result_cache.hits") - hits_before,
        2,
        "both cells came from the result store"
    );

    // Phase 4: a further restart finds a fully-terminal log — nothing
    // replays.
    drop(dispatcher);
    let dispatcher = Dispatcher::start(DispatcherConfig {
        workers: vec![worker.addr.to_string()],
        log_dir: Some(log_dir.clone()),
        store_dir: Some(store_dir.clone()),
        ..DispatcherConfig::default()
    })
    .expect("start phase-4 dispatcher");
    assert_eq!(dispatcher.replayed(), 0, "terminal jobs do not replay");
    drop(dispatcher);

    std::fs::remove_dir_all(&log_dir).ok();
    std::fs::remove_dir_all(&store_dir).ok();
}

#[test]
fn log_survives_results_served_across_dispatcher_generations() {
    let _guard = serialize();
    let log_dir = temp_dir("genlog");
    let store_dir = temp_dir("genstore");
    let mut spec = JobSpec::bench("povray");
    spec.instructions = 4_000;

    let worker = WorkerGuard::start(2);
    let first = {
        let dispatcher = Dispatcher::start(DispatcherConfig {
            workers: vec![worker.addr.to_string()],
            log_dir: Some(log_dir.clone()),
            store_dir: Some(store_dir.clone()),
            ..DispatcherConfig::default()
        })
        .expect("start generation 1");
        let events = dispatcher.submit(&spec).expect("submit").wait();
        events
            .into_iter()
            .map(|json| strip_job(json).to_string())
            .collect::<Vec<_>>()
    };

    // A brand-new dispatcher generation serves the same spec from the
    // on-disk store without dispatching anything.
    let dispatched_before = counter("fleet.cells.dispatched");
    let dispatcher = Dispatcher::start(DispatcherConfig {
        workers: vec![worker.addr.to_string()],
        log_dir: Some(log_dir.clone()),
        store_dir: Some(store_dir.clone()),
        ..DispatcherConfig::default()
    })
    .expect("start generation 2");
    assert_eq!(dispatcher.replayed(), 0);
    let second: Vec<String> = dispatcher
        .submit(&spec)
        .expect("resubmit")
        .wait()
        .into_iter()
        .map(|json| strip_job(json).to_string())
        .collect();
    assert_eq!(second, first, "disk store serves across generations");
    assert_eq!(counter("fleet.cells.dispatched") - dispatched_before, 0);
    drop(dispatcher);

    std::fs::remove_dir_all(&log_dir).ok();
    std::fs::remove_dir_all(&store_dir).ok();
}
