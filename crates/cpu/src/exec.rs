//! The reusable per-core step state machine.
//!
//! [`CoreEngine`] is the monolithic `CpuSystem::run` loop body extracted
//! into a steppable unit: one ROB-limited OOO core with its private L1D
//! and stream prefetcher, advanced one cycle at a time against a
//! *borrowed* shared LLC and a *borrowed* [`MemoryBackend`]. Everything
//! that was per-run local state in the old loop (trace exhaustion, the
//! stalled op, the idle-skip heuristics) lives inside the engine, so a
//! caller owns only the clock, the LLC, and the backend:
//!
//! * [`crate::system::CpuSystem`] drives one `CoreEngine` and is
//!   observationally identical to the pre-extraction monolith;
//! * `secddr-multicore` drives N of them against one shared LLC and one
//!   shared backend, interleaving cores by next-event time.
//!
//! The event-driven contract is unchanged: [`CoreEngine::wake_bound`] is
//! a lower bound on the next cycle at which this core's per-cycle step
//! could do any work, so a scheduler may skip the core (or the whole
//! simulation) up to that cycle and stay bit-identical to lock-step
//! semantics.

use std::collections::VecDeque;

use sim_kernel::FxHashMap;

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::core::{CpuConfig, Rob};
use crate::prefetcher::StreamPrefetcher;
use crate::system::{AccessKind, BatchAccess, Busy, MemoryBackend, SimResult};
use crate::trace::TraceOp;

/// A computed wake-up must skip at least this many cycles to count as
/// paying for its own bound computation (drives the backoff heuristic).
const MIN_SKIP_YIELD: u64 = 16;

/// Number of consecutive idle cycles before the run loop starts probing
/// skip bounds: short bubbles are cheaper to simulate than to analyze.
const MIN_IDLE_STREAK: u32 = 16;

#[derive(Debug)]
struct Outstanding {
    waiters: Vec<u64>, // ROB sequence numbers
    fill_write: bool,  // install dirty (RFO)
    prefetch: bool,
}

/// What one [`CoreEngine::step`] did, for the scheduler above it.
///
/// (Whether the step *progressed* stays internal: it only feeds the
/// core's own idle-streak gating, which [`CoreEngine::sleep_bound`]
/// already encapsulates for schedulers.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// The step submitted at least one *accepted* access to the backend.
    /// A multi-core scheduler must refresh other sleeping cores' wake
    /// bounds after such a cycle: their bounds were computed against the
    /// pre-submission backend state.
    pub submitted: bool,
    /// The core drained everything: trace exhausted, ROB empty, no
    /// outstanding misses, no pending writebacks. It needs no further
    /// steps.
    pub finished: bool,
}

/// How a multi-core scheduler should treat a core after a step, from
/// [`CoreEngine::sleep_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepPlan {
    /// The next per-cycle step might do work: keep stepping.
    Run,
    /// Nothing this core's per-cycle step does before `wake_at` can have
    /// any effect, except that one of its own routed completions
    /// arriving earlier must wake it immediately.
    Sleep {
        /// Self-scheduled wake-up cycle. `None` means the core has no
        /// self-scheduled event at all — only a routed completion can
        /// make its step do work (e.g. a pointer chase whose ROB head is
        /// the waiting load).
        wake_at: Option<u64>,
        /// The bound is derived from shared backend *capacity* state
        /// (blocked writebacks or a Busy-stalled op). Capacity is shared
        /// between cores, so after any other core's accepted submission
        /// the scheduler must re-derive this bound (keeping the
        /// earlier); non-capacity sleeps are exact and never need
        /// refreshing.
        capacity: bool,
    },
}

/// One ROB-limited OOO core with private L1D and stream prefetcher,
/// steppable against a borrowed shared LLC and memory backend.
#[derive(Debug)]
pub struct CoreEngine {
    cfg: CpuConfig,
    l1: Cache,
    prefetcher: StreamPrefetcher,
    rob: Rob,
    instructions: u64,
    /// line address -> outstanding miss state
    outstanding: FxHashMap<u64, Outstanding>,
    /// backend token -> line address
    token_line: FxHashMap<u64, u64>,
    /// Writebacks the backend refused; retried each cycle.
    pending_writebacks: VecDeque<u64>,
    /// A dispatch-blocked memory op waiting for backend space.
    stalled_op: Option<TraceOp>,
    /// Line of the most recent dependent load still in flight (serializes
    /// pointer-chase chains).
    chase_outstanding: Option<u64>,
    /// Exponential backoff for skip attempts in event-dense phases where
    /// the bounds keep yielding tiny skips (heuristic only — never
    /// affects simulated results, just when bounds are computed).
    skip_backoff: u32,
    /// Remaining idle cycles to run per-cycle before probing again.
    skip_cooldown: u32,
    /// Consecutive do-nothing cycles so far (gates bound probing).
    idle_streak: u32,
    /// The trace iterator ran dry.
    trace_done: bool,
    /// Cycle at which the finish condition first held.
    finished_at: Option<u64>,
    /// This core's share of the (possibly shared) LLC statistics,
    /// accumulated as per-step deltas — per-core shares always sum to the
    /// LLC's own totals because every LLC access happens inside a step.
    llc_stats: CacheStats,
    /// Whether the current step accepted a backend submission.
    step_submitted: bool,
    /// Scratch buffers for [`MemoryBackend::submit_batch`] calls (reused
    /// to keep the batched paths allocation-free).
    batch_buf: Vec<BatchAccess>,
    batch_results: Vec<Result<u64, Busy>>,
}

impl CoreEngine {
    /// Builds a core with Table I core parameters and L1D geometry.
    #[must_use]
    pub fn new(cfg: CpuConfig) -> Self {
        Self {
            l1: Cache::new(CacheConfig::l1d()),
            prefetcher: StreamPrefetcher::new(cfg.line_bytes),
            rob: Rob::new(cfg.rob_entries),
            instructions: 0,
            outstanding: FxHashMap::default(),
            token_line: FxHashMap::default(),
            pending_writebacks: VecDeque::new(),
            stalled_op: None,
            chase_outstanding: None,
            skip_backoff: 0,
            skip_cooldown: 0,
            idle_streak: 0,
            trace_done: false,
            finished_at: None,
            llc_stats: CacheStats::default(),
            step_submitted: false,
            batch_buf: Vec::new(),
            batch_results: Vec::new(),
            cfg,
        }
    }

    /// The configuration the core was built with.
    #[must_use]
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// True once the core has drained everything (same condition
    /// [`StepOutcome::finished`] reported).
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Re-arms the core for another trace: clears trace exhaustion, the
    /// recorded finish cycle, and the idle streak — the state the
    /// pre-extraction monolithic run loop kept per run. A subsequent run
    /// then continues *cumulatively* (warm caches, continuing clock,
    /// accumulating statistics), exactly as calling the monolith's `run`
    /// twice did; without this re-arm a drained core treats any further
    /// trace as already finished.
    pub fn begin_trace(&mut self) {
        self.trace_done = false;
        self.finished_at = None;
        self.idle_streak = 0;
    }

    /// The core's results so far. `cycles` is the cycle the finish
    /// condition first held (the single-core run loop's final cycle), or
    /// zero while the core is still running.
    #[must_use]
    pub fn result(&self) -> SimResult {
        SimResult {
            instructions: self.instructions,
            cycles: self.finished_at.unwrap_or(0),
            l1: *self.l1.stats(),
            llc: self.llc_stats,
            prefetches: self.prefetcher.issued(),
        }
    }

    /// Runs one cycle of the per-cycle reference semantics at `now`:
    /// handle the routed `completions`, retry refused writebacks, retire,
    /// dispatch, and re-evaluate the finish condition.
    ///
    /// `completions` must be exactly the backend read tokens belonging to
    /// this core that completed at `now` (the caller ticks the shared
    /// backend once per cycle and routes tokens to their owning cores).
    pub fn step<B: MemoryBackend, T: Iterator<Item = TraceOp>>(
        &mut self,
        now: u64,
        llc: &mut Cache,
        backend: &mut B,
        trace: &mut T,
        completions: &[u64],
    ) -> StepOutcome {
        let llc_before = *llc.stats();
        self.step_submitted = false;
        let mut progressed = false;

        // 1. Memory completions.
        for &token in completions {
            self.handle_completion(token, llc, backend, now);
            progressed = true;
        }

        // 2. Retry refused writebacks — as one batch (the backend's
        // per-call backpressure bookkeeping amortizes, and a rejected
        // write leaves backend state unchanged, so attempting the
        // whole set is identical to stopping at the first Busy).
        if !self.pending_writebacks.is_empty() {
            if self.cfg.batch_submit {
                self.batch_buf.clear();
                self.batch_buf
                    .extend(self.pending_writebacks.iter().map(|&addr| BatchAccess {
                        kind: AccessKind::Write,
                        addr,
                        is_prefetch: false,
                    }));
                self.batch_results.clear();
                backend.submit_batch(&self.batch_buf, now, &mut self.batch_results);
                let mut kept = 0;
                for (i, result) in self.batch_results.iter().enumerate() {
                    if result.is_ok() {
                        progressed = true;
                        self.step_submitted = true;
                    } else {
                        let addr = self.pending_writebacks[i];
                        self.pending_writebacks[kept] = addr;
                        kept += 1;
                    }
                }
                self.pending_writebacks.truncate(kept);
            } else {
                while let Some(&wb) = self.pending_writebacks.front() {
                    if backend.submit(AccessKind::Write, wb, now, false).is_ok() {
                        self.pending_writebacks.pop_front();
                        progressed = true;
                        self.step_submitted = true;
                    } else {
                        break;
                    }
                }
            }
        }

        // 3. Retire.
        let retired = self.rob.retire(self.cfg.retire_width, now);
        self.instructions += retired;
        progressed |= retired > 0;

        // 4. Dispatch.
        let mut budget = self.cfg.dispatch_width;
        while budget > 0 {
            let op = match self.stalled_op.take() {
                Some(op) => op,
                None => {
                    if self.trace_done {
                        break;
                    }
                    match trace.next() {
                        Some(op) => op,
                        None => {
                            self.trace_done = true;
                            break;
                        }
                    }
                }
            };
            match self.dispatch(op, &mut budget, llc, backend, now) {
                Ok(()) => {}
                Err(op) => {
                    self.stalled_op = Some(op);
                    break;
                }
            }
        }

        progressed |= budget < self.cfg.dispatch_width;
        self.idle_streak = if progressed { 0 } else { self.idle_streak + 1 };

        // 5. Termination.
        let finished = self.trace_done
            && self.stalled_op.is_none()
            && self.rob.is_empty()
            && self.outstanding.is_empty()
            && self.pending_writebacks.is_empty();
        if finished && self.finished_at.is_none() {
            self.finished_at = Some(now);
        }

        // Attribute this step's shared-LLC activity to this core. Misses
        // forgotten by a Busy-retry path were counted earlier in the same
        // step, so each per-step delta is non-negative.
        let llc_after = *llc.stats();
        self.llc_stats.merge(&CacheStats {
            hits: llc_after.hits - llc_before.hits,
            misses: llc_after.misses - llc_before.misses,
            writebacks: llc_after.writebacks - llc_before.writebacks,
        });

        StepOutcome {
            submitted: self.step_submitted,
            finished,
        }
    }

    /// Heuristically gated wake-bound probe, for the event-driven run
    /// loops: returns a sound wake-up cycle only once the core has been
    /// idle long enough that computing the bound pays for itself, and
    /// applies exponential backoff in event-dense phases (both heuristics
    /// affect wall-clock only, never simulated results).
    ///
    /// The caller may skip the core (or the global clock) to `wake - 1`
    /// whenever `wake > now + 1`.
    pub fn sleep_bound<B: MemoryBackend>(&mut self, now: u64, backend: &B) -> Option<u64> {
        if !self.cfg.advance.is_event_driven() || self.idle_streak < MIN_IDLE_STREAK {
            return None;
        }
        if self.skip_cooldown > 0 {
            // Recent bounds yielded next to nothing (an event-dense
            // phase): run per-cycle for a while instead of paying for
            // bounds that cannot pay off.
            self.skip_cooldown -= 1;
            return None;
        }
        let wake = self.wake_bound(now, backend)?;
        let skip_yield = wake.saturating_sub(now + 1);
        if skip_yield >= MIN_SKIP_YIELD {
            self.skip_backoff = 0;
        } else {
            // A probe that did not pay for itself — whether it bought
            // nothing or only a handful of cycles, the phase is
            // event-dense, so probe exponentially less often (small
            // skips are still taken by the caller).
            self.skip_backoff = (self.skip_backoff * 2 + 1).min(256);
            self.skip_cooldown = self.skip_backoff;
        }
        Some(wake)
    }

    /// Lower bound on the next cycle at which the per-cycle step could do
    /// any work, or `None` when it must run the very next cycle.
    ///
    /// Skipping is sound only when nothing can happen in between:
    ///
    /// * *dispatch* makes progress every cycle unless the ROB is full,
    ///   the trace is exhausted, or the front op is stalled — and every
    ///   stall reason resolves via a retirement or a backend event;
    /// * *retirement* is in order, so it cannot happen before the ROB
    ///   head's ready cycle;
    /// * *completions* and *writeback retries* (backend queue space only
    ///   frees when the backend makes progress) cannot happen before
    ///   [`MemoryBackend::next_event`].
    ///
    /// The bound is computed against the backend's *current* state; a
    /// later accepted submission (by this core or, under a shared
    /// backend, any other core) invalidates it, so multi-core schedulers
    /// must re-derive sleeping cores' bounds after any cycle that
    /// submitted (see [`StepOutcome::submitted`]).
    #[must_use]
    pub fn wake_bound<B: MemoryBackend>(&self, now: u64, backend: &B) -> Option<u64> {
        if !self.dispatch_idle() {
            return None;
        }
        let mut bound = u64::MAX;
        if let Some(t) = self.rob.next_retire_at() {
            // Cheap early-out for one-cycle retire bubbles: the head
            // retires next cycle, so no skip is possible and the backend
            // bound (the expensive part) is not worth computing.
            if t <= now + 1 {
                return None;
            }
            bound = bound.min(t);
        }
        // Backend queue-space changes are only observable through a
        // blocked writeback or a Busy-stalled op; a pure completion wait
        // can use the (often much larger) completion bound, and a load
        // stalled on read capacity the read-issue bound.
        let busy_stalled = self.busy_stalled();
        let backend_bound = if !self.pending_writebacks.is_empty()
            || matches!(busy_stalled, Some(TraceOp::Store(_)))
        {
            // Write-queue capacity must be watched at full granularity.
            backend.next_event(now)
        } else if let Some(TraceOp::Load(addr) | TraceOp::DependentLoad(addr)) = busy_stalled {
            let line = addr & !(self.cfg.line_bytes - 1);
            backend.next_read_capacity_event(now, line)
        } else {
            backend.next_completion_event(now)
        };
        if let Some(t) = backend_bound {
            bound = bound.min(t);
        }
        if bound == u64::MAX {
            // Nothing scheduled at all: the core is about to finish.
            return None;
        }
        Some(bound.max(now + 1))
    }

    /// True when the dispatch stage cannot make progress this cycle —
    /// the precondition for any sleep.
    fn dispatch_idle(&self) -> bool {
        match &self.stalled_op {
            // A compute remainder only stalls on ROB space (a plain
            // budget cut dispatches again next cycle with fresh width).
            Some(TraceOp::Compute(_)) => self.rob.space() == 0,
            // A blocked pointer chase resumes on its completion event.
            Some(TraceOp::DependentLoad(_)) if self.chase_outstanding.is_some() => true,
            // Other memory ops stalled on ROB space (retire event) or a
            // busy backend (backend queues only drain on backend events).
            Some(_) => true,
            // A fresh op could dispatch unless the ROB is full (it would
            // merely become the stalled op, which is equivalent).
            None => self.trace_done || self.rob.space() == 0,
        }
    }

    /// The stalled op if it is waiting on backend *capacity* (Busy
    /// rejection) rather than ROB space or its own chase completion.
    fn busy_stalled(&self) -> Option<TraceOp> {
        match &self.stalled_op {
            Some(TraceOp::Compute(_)) | None => None,
            Some(TraceOp::DependentLoad(_)) if self.chase_outstanding.is_some() => None,
            Some(op) if self.rob.space() > 0 => Some(*op), // Busy, not ROB-stalled
            Some(_) => None,
        }
    }

    /// Classifies this core's wait for a multi-core next-event scheduler,
    /// right after a step at `now`.
    ///
    /// The key split is *exact* versus *capacity-bounded* waits. A core
    /// that is not blocked on backend capacity (no refused writebacks, no
    /// Busy-stalled op) can only be woken by in-order retirement — whose
    /// exact cycle [`crate::core::CpuConfig::rob_entries`]-bounded
    /// `next_retire_at` gives — or by one of its *own* read completions,
    /// which the scheduler already delivers as exact routed events. Such
    /// a sleep needs no backend probe at all, never fires spuriously, and
    /// stays valid across other cores' submissions. Capacity waits are
    /// only *bounded* by the shared backend's queue-space events, so they
    /// carry `capacity: true` (refresh-on-submit) and are gated by the
    /// same streak/backoff heuristics as [`Self::sleep_bound`] — the
    /// probe folds DRAM state and must pay for itself (wall-clock only,
    /// never simulated results).
    pub fn sleep_plan<B: MemoryBackend>(&mut self, now: u64, backend: &B) -> SleepPlan {
        if !self.cfg.advance.is_event_driven() || !self.dispatch_idle() {
            return SleepPlan::Run;
        }
        let retire = self.rob.next_retire_at();
        if let Some(t) = retire {
            if t <= now + 1 {
                return SleepPlan::Run;
            }
        }
        if self.pending_writebacks.is_empty() && self.busy_stalled().is_none() {
            // Exact wait: own completions (routed) plus in-order retire.
            return SleepPlan::Sleep {
                wake_at: retire,
                capacity: false,
            };
        }
        if self.idle_streak < MIN_IDLE_STREAK {
            return SleepPlan::Run;
        }
        if self.skip_cooldown > 0 {
            self.skip_cooldown -= 1;
            return SleepPlan::Run;
        }
        let Some(wake) = self.wake_bound(now, backend) else {
            return SleepPlan::Run;
        };
        let skip_yield = wake.saturating_sub(now + 1);
        if skip_yield >= MIN_SKIP_YIELD {
            self.skip_backoff = 0;
        } else {
            self.skip_backoff = (self.skip_backoff * 2 + 1).min(256);
            self.skip_cooldown = self.skip_backoff;
        }
        if wake > now + 1 {
            SleepPlan::Sleep {
                wake_at: Some(wake),
                capacity: true,
            }
        } else {
            SleepPlan::Run
        }
    }

    /// Attempts to dispatch one trace op; returns it back on stall.
    fn dispatch<B: MemoryBackend>(
        &mut self,
        op: TraceOp,
        budget: &mut u32,
        llc: &mut Cache,
        backend: &mut B,
        now: u64,
    ) -> Result<(), TraceOp> {
        match op {
            TraceOp::Compute(n) => {
                let space = self.rob.space().min(*budget as usize) as u32;
                if space == 0 {
                    return Err(op);
                }
                let take = n.min(space);
                self.rob.push_compute(take, now);
                *budget -= take;
                if take < n {
                    return Err(TraceOp::Compute(n - take));
                }
                Ok(())
            }
            TraceOp::Load(addr) | TraceOp::DependentLoad(addr) => {
                let dependent = matches!(op, TraceOp::DependentLoad(_));
                if dependent && self.chase_outstanding.is_some() {
                    // The previous pointer in the chain has not returned:
                    // the address of this load is not known yet.
                    return Err(op);
                }
                if self.rob.space() == 0 {
                    return Err(op);
                }
                let line = addr & !(self.cfg.line_bytes - 1);
                if let Some(pending) = self.outstanding.get_mut(&line) {
                    // MSHR merge into the in-flight miss (not a new miss).
                    let seq = self.rob.push_load(None);
                    pending.waiters.push(seq);
                    pending.prefetch = false;
                    if dependent {
                        self.chase_outstanding = Some(line);
                    }
                } else if self.l1.access(line, false) {
                    self.rob.push_load(Some(now + self.cfg.l1_latency));
                } else if llc.access(line, false) {
                    self.rob.push_load(Some(now + self.cfg.llc_latency));
                    self.fill_l1(line, false, llc, backend, now);
                } else {
                    // LLC demand miss: go to memory.
                    match backend.submit(AccessKind::Read, line, now, false) {
                        Ok(token) => {
                            self.step_submitted = true;
                            let seq = self.rob.push_load(None);
                            self.outstanding.insert(
                                line,
                                Outstanding {
                                    waiters: vec![seq],
                                    fill_write: false,
                                    prefetch: false,
                                },
                            );
                            self.token_line.insert(token, line);
                            if dependent {
                                self.chase_outstanding = Some(line);
                            }
                            self.train_prefetcher(line, llc, backend, now);
                        }
                        Err(Busy) => {
                            // The retry will re-access both caches; do not
                            // double-count this miss.
                            self.l1.forget_demand_miss();
                            llc.forget_demand_miss();
                            return Err(op);
                        }
                    }
                }
                *budget -= 1;
                Ok(())
            }
            TraceOp::Store(addr) => {
                if self.rob.space() == 0 {
                    return Err(op);
                }
                let line = addr & !(self.cfg.line_bytes - 1);
                if let Some(pending) = self.outstanding.get_mut(&line) {
                    pending.fill_write = true;
                    pending.prefetch = false;
                } else if self.l1.access(line, true) {
                    // write hit
                } else if llc.access(line, true) {
                    self.fill_l1(line, true, llc, backend, now);
                } else {
                    // RFO: fetch the line for ownership; the store itself is
                    // posted and does not block retirement.
                    match backend.submit(AccessKind::Read, line, now, false) {
                        Ok(token) => {
                            self.step_submitted = true;
                            self.outstanding.insert(
                                line,
                                Outstanding {
                                    waiters: Vec::new(),
                                    fill_write: true,
                                    prefetch: false,
                                },
                            );
                            self.token_line.insert(token, line);
                            self.train_prefetcher(line, llc, backend, now);
                        }
                        Err(Busy) => {
                            self.l1.forget_demand_miss();
                            llc.forget_demand_miss();
                            return Err(op);
                        }
                    }
                }
                self.rob.push_store(now);
                *budget -= 1;
                Ok(())
            }
        }
    }

    fn train_prefetcher<B: MemoryBackend>(
        &mut self,
        line: u64,
        llc: &mut Cache,
        backend: &mut B,
        now: u64,
    ) {
        let candidates = self.prefetcher.on_demand_miss(line);
        if candidates.is_empty() {
            return;
        }
        if self.cfg.batch_submit {
            // Batched miss-issue: filter first, then hand the backend one
            // batch. Volley targets are usually distinct lines, but a
            // descending stream clamped at address zero can repeat one —
            // the per-call path filters the repeat against `outstanding`
            // (updated by the first submit), so the batch filter must
            // dedupe within the volley to stay observationally identical.
            self.batch_buf.clear();
            for pf_addr in candidates {
                let pf_line = pf_addr & !(self.cfg.line_bytes - 1);
                if llc.probe(pf_line)
                    || self.outstanding.contains_key(&pf_line)
                    || self.batch_buf.iter().any(|b| b.addr == pf_line)
                {
                    continue;
                }
                self.batch_buf.push(BatchAccess {
                    kind: AccessKind::Read,
                    addr: pf_line,
                    is_prefetch: true,
                });
            }
            if self.batch_buf.is_empty() {
                return;
            }
            self.batch_results.clear();
            backend.submit_batch(&self.batch_buf, now, &mut self.batch_results);
            // Prefetches are best-effort; rejected ones are dropped.
            for (access, result) in self.batch_buf.iter().zip(&self.batch_results) {
                if let Ok(token) = result {
                    self.step_submitted = true;
                    self.outstanding.insert(
                        access.addr,
                        Outstanding {
                            waiters: Vec::new(),
                            fill_write: false,
                            prefetch: true,
                        },
                    );
                    self.token_line.insert(*token, access.addr);
                }
            }
        } else {
            for pf_addr in candidates {
                let pf_line = pf_addr & !(self.cfg.line_bytes - 1);
                if llc.probe(pf_line) || self.outstanding.contains_key(&pf_line) {
                    continue;
                }
                // Prefetches are best-effort; drop when the backend is busy.
                if let Ok(token) = backend.submit(AccessKind::Read, pf_line, now, true) {
                    self.step_submitted = true;
                    self.outstanding.insert(
                        pf_line,
                        Outstanding {
                            waiters: Vec::new(),
                            fill_write: false,
                            prefetch: true,
                        },
                    );
                    self.token_line.insert(token, pf_line);
                }
            }
        }
    }

    fn handle_completion<B: MemoryBackend>(
        &mut self,
        token: u64,
        llc: &mut Cache,
        backend: &mut B,
        now: u64,
    ) {
        let Some(line) = self.token_line.remove(&token) else {
            return; // writes and unknown tokens are silent
        };
        let Some(out) = self.outstanding.remove(&line) else {
            return;
        };
        if self.chase_outstanding == Some(line) {
            self.chase_outstanding = None;
        }
        // Fill LLC (dirty writeback downstream on eviction).
        if let Some(victim) = llc.fill(line, out.fill_write) {
            self.writeback(victim, backend, now);
        }
        if !out.prefetch {
            self.fill_l1(line, out.fill_write, llc, backend, now);
        }
        let wake_at = now + self.cfg.fill_latency;
        for seq in out.waiters {
            self.rob.mark_ready(seq, wake_at);
        }
    }

    /// Installs a line in L1, spilling its dirty victim into the LLC.
    fn fill_l1<B: MemoryBackend>(
        &mut self,
        line: u64,
        dirty: bool,
        llc: &mut Cache,
        backend: &mut B,
        now: u64,
    ) {
        if let Some(victim) = self.l1.fill(line, dirty) {
            // Dirty L1 victim: update the LLC copy (usually present).
            if !llc.access(victim, true) {
                if let Some(llc_victim) = llc.fill(victim, true) {
                    self.writeback(llc_victim, backend, now);
                }
            }
        }
    }

    fn writeback<B: MemoryBackend>(&mut self, addr: u64, backend: &mut B, now: u64) {
        match backend.submit(AccessKind::Write, addr, now, false) {
            Ok(_) => self.step_submitted = true,
            Err(Busy) => self.pending_writebacks.push_back(addr),
        }
    }
}
