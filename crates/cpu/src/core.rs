//! Reorder buffer and core configuration (Table I core parameters).

use std::collections::VecDeque;

use sim_kernel::Advance;

/// Core configuration. Defaults follow Table I of the paper: 6-wide
/// fetch/retire, 224-entry ROB, 3.2 GHz, L1 32 KB, LLC 4 MB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions dispatched per cycle.
    pub dispatch_width: u32,
    /// Instructions retired per cycle.
    pub retire_width: u32,
    /// ROB capacity in instructions.
    pub rob_entries: usize,
    /// L1D hit latency (cycles).
    pub l1_latency: u64,
    /// LLC hit latency (cycles).
    pub llc_latency: u64,
    /// Fill latency applied when a memory completion wakes a load.
    pub fill_latency: u64,
    /// Cache line size (bytes).
    pub line_bytes: u64,
    /// Core clock in MHz (used to derive the DRAM clock ratio).
    pub clock_mhz: u32,
    /// Clock advance policy: event-driven idle-skip (default) or the
    /// per-cycle reference semantics.
    pub advance: Advance,
    /// Issue multi-access events (prefetch volleys, writeback retries)
    /// through [`crate::system::MemoryBackend::submit_batch`] instead of
    /// one call per access. Observationally identical either way; the
    /// batch amortizes the backend's per-call bookkeeping.
    pub batch_submit: bool,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            dispatch_width: 6,
            retire_width: 6,
            rob_entries: 224,
            l1_latency: 4,
            llc_latency: 30,
            fill_latency: 4,
            line_bytes: 64,
            clock_mhz: 3200,
            advance: Advance::ToNextEvent,
            batch_submit: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntryKind {
    Compute,
    Load,
    Store,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    kind: EntryKind,
    /// Instructions represented (always 1 for loads/stores).
    count: u32,
    /// Cycle at which this entry becomes retirable; `None` = waiting on a
    /// memory completion.
    ready_at: Option<u64>,
    seq: u64,
}

/// A reorder buffer tracked at instruction granularity.
///
/// Compute runs are collapsed into single entries carrying an instruction
/// count; loads block retirement until their data returns; stores are
/// posted and retire immediately.
#[derive(Debug)]
pub(crate) struct Rob {
    entries: VecDeque<Entry>,
    capacity: usize,
    occupancy: usize,
    next_seq: u64,
}

impl Rob {
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::new(),
            capacity,
            occupancy: 0,
            next_seq: 0,
        }
    }

    pub fn space(&self) -> usize {
        self.capacity - self.occupancy
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[cfg(test)]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Pushes `n` compute instructions (must fit).
    pub fn push_compute(&mut self, n: u32, now: u64) {
        debug_assert!(n as usize <= self.space());
        self.occupancy += n as usize;
        let seq = self.next_seq;
        self.next_seq += 1;
        // Merge with a trailing ready compute entry to keep the deque small.
        if let Some(back) = self.entries.back_mut() {
            if back.kind == EntryKind::Compute && back.ready_at.is_some_and(|r| r <= now) {
                back.count += n;
                return;
            }
        }
        self.entries.push_back(Entry {
            kind: EntryKind::Compute,
            count: n,
            ready_at: Some(now),
            seq,
        });
    }

    /// Pushes a load. `ready_at = None` means the load waits on memory; use
    /// [`Self::mark_ready`] with the returned sequence number.
    pub fn push_load(&mut self, ready_at: Option<u64>) -> u64 {
        debug_assert!(self.space() >= 1);
        self.occupancy += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(Entry {
            kind: EntryKind::Load,
            count: 1,
            ready_at,
            seq,
        });
        seq
    }

    /// Pushes a posted store (retires as soon as it reaches the head).
    pub fn push_store(&mut self, now: u64) {
        debug_assert!(self.space() >= 1);
        self.occupancy += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(Entry {
            kind: EntryKind::Store,
            count: 1,
            ready_at: Some(now),
            seq,
        });
    }

    /// Wakes the load with sequence number `seq` so it retires at `at`.
    pub fn mark_ready(&mut self, seq: u64, at: u64) {
        for e in self.entries.iter_mut() {
            if e.seq == seq {
                debug_assert!(e.ready_at.is_none(), "load woken twice");
                e.ready_at = Some(at);
                return;
            }
        }
        debug_assert!(false, "mark_ready on unknown seq {seq}");
    }

    /// The cycle at which the head entry becomes retirable; `None` when
    /// the ROB is empty or the head is waiting on a memory completion.
    ///
    /// Retirement is in order, so nothing can retire before this cycle —
    /// the bound the event-driven run loop skips to.
    pub fn next_retire_at(&self) -> Option<u64> {
        self.entries.front().and_then(|e| e.ready_at)
    }

    /// Retires up to `width` instructions at cycle `now`; returns the
    /// number retired.
    pub fn retire(&mut self, width: u32, now: u64) -> u64 {
        let mut budget = width;
        let mut retired = 0u64;
        while budget > 0 {
            let Some(head) = self.entries.front_mut() else {
                break;
            };
            match head.ready_at {
                Some(r) if r <= now => {}
                _ => break,
            }
            let take = head.count.min(budget);
            head.count -= take;
            budget -= take;
            retired += u64::from(take);
            self.occupancy -= take as usize;
            if head.count == 0 {
                self.entries.pop_front();
            }
        }
        retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_retires_at_width() {
        let mut rob = Rob::new(224);
        rob.push_compute(20, 0);
        assert_eq!(rob.retire(6, 1), 6);
        assert_eq!(rob.retire(6, 2), 6);
        assert_eq!(rob.retire(6, 3), 6);
        assert_eq!(rob.retire(6, 4), 2);
        assert!(rob.is_empty());
    }

    #[test]
    fn pending_load_blocks_retirement() {
        let mut rob = Rob::new(224);
        let seq = rob.push_load(None);
        rob.push_compute(10, 0);
        assert_eq!(rob.retire(6, 5), 0, "head load not ready");
        rob.mark_ready(seq, 8);
        assert_eq!(rob.retire(6, 7), 0, "not ready until cycle 8");
        assert_eq!(rob.retire(6, 8), 6, "load + 5 compute");
        assert_eq!(rob.occupancy(), 5);
    }

    #[test]
    fn store_retires_immediately() {
        let mut rob = Rob::new(224);
        rob.push_store(0);
        assert_eq!(rob.retire(6, 1), 1);
    }

    #[test]
    fn l1_hit_load_ready_after_latency() {
        let mut rob = Rob::new(224);
        rob.push_load(Some(4));
        assert_eq!(rob.retire(6, 3), 0);
        assert_eq!(rob.retire(6, 4), 1);
    }

    #[test]
    fn occupancy_and_space_track_instructions() {
        let mut rob = Rob::new(10);
        rob.push_compute(8, 0);
        rob.push_load(None);
        assert_eq!(rob.space(), 1);
        assert_eq!(rob.occupancy(), 9);
    }

    #[test]
    fn compute_merging_keeps_order_with_loads() {
        let mut rob = Rob::new(224);
        rob.push_compute(3, 0);
        let seq = rob.push_load(None);
        rob.push_compute(3, 0);
        // Only the first 3 compute retire; the load gates the rest.
        assert_eq!(rob.retire(6, 1), 3);
        rob.mark_ready(seq, 2);
        assert_eq!(rob.retire(6, 2), 4);
    }
}
