//! Trace-driven out-of-order core and cache hierarchy.
//!
//! This crate is the reproduction's substitute for the Scarab + Pin
//! front-end the SecDDR paper simulates with. The performance effects the
//! paper measures come from three places that this model captures:
//!
//! 1. **Memory-level parallelism limits** — a 224-entry ROB, 6-wide
//!    dispatch/retire core ([`core::OooCore`]) that stalls when outstanding
//!    long-latency loads fill the window.
//! 2. **Cache hierarchy behaviour** — private 32 KB L1D and a shared 4 MB
//!    16-way LLC with a stream prefetcher ([`cache`], [`prefetcher`]).
//! 3. **Extra memory traffic and latency injected by the security engine**
//!    — abstracted behind the [`MemoryBackend`] trait, which the
//!    `secddr-core` crate implements for each evaluated configuration
//!    (integrity tree, SecDDR, encrypt-only, InvisiMem).
//!
//! # Example
//!
//! ```
//! use cpu_model::{CpuConfig, CpuSystem, FixedLatencyBackend, TraceOp};
//!
//! let trace = vec![
//!     TraceOp::Compute(10),
//!     TraceOp::Load(0x1000),
//!     TraceOp::Store(0x2000),
//!     TraceOp::Compute(10),
//! ];
//! let backend = FixedLatencyBackend::new(200);
//! let mut sys = CpuSystem::new(CpuConfig::default(), backend);
//! let result = sys.run(trace.into_iter());
//! assert_eq!(result.instructions, 22);
//! assert!(result.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod core;
pub mod exec;
pub mod prefetcher;
pub mod system;
pub mod trace;

pub use crate::core::CpuConfig;
pub use cache::{Cache, CacheConfig, CacheStats};
pub use exec::{CoreEngine, StepOutcome};
pub use prefetcher::StreamPrefetcher;
pub use sim_kernel::Advance;
pub use system::{AccessKind, CpuSystem, FixedLatencyBackend, MemoryBackend, SimResult};
pub use trace::TraceOp;
