//! Trace operations consumed by the core model.
//!
//! A workload is any iterator of [`TraceOp`]s. The `workloads` crate
//! provides GAPBS kernels and SPEC-calibrated generators; tests use small
//! literal vectors.

/// One unit of work from the instruction trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// `n` non-memory instructions (collapsed into one trace record).
    Compute(u32),
    /// A load from the given virtual byte address.
    Load(u64),
    /// A load whose address depends on the previous dependent load
    /// (pointer chasing): it cannot dispatch until that load's data
    /// returned. Models mcf-style serialized miss chains.
    DependentLoad(u64),
    /// A store to the given virtual byte address.
    Store(u64),
}

impl TraceOp {
    /// Number of architected instructions this record represents.
    pub fn instructions(&self) -> u64 {
        match self {
            TraceOp::Compute(n) => u64::from(*n),
            TraceOp::Load(_) | TraceOp::DependentLoad(_) | TraceOp::Store(_) => 1,
        }
    }

    /// The memory address touched, if any.
    pub fn address(&self) -> Option<u64> {
        match self {
            TraceOp::Compute(_) => None,
            TraceOp::Load(a) | TraceOp::DependentLoad(a) | TraceOp::Store(a) => Some(*a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_counts() {
        assert_eq!(TraceOp::Compute(17).instructions(), 17);
        assert_eq!(TraceOp::Load(0).instructions(), 1);
        assert_eq!(TraceOp::Store(0).instructions(), 1);
    }

    #[test]
    fn addresses() {
        assert_eq!(TraceOp::Compute(1).address(), None);
        assert_eq!(TraceOp::Load(0x40).address(), Some(0x40));
        assert_eq!(TraceOp::Store(0x80).address(), Some(0x80));
    }
}
