//! Stream prefetcher (Table I lists a stream prefetcher at the LLC).
//!
//! Classic multi-stream design: demand misses train stream entries; once a
//! stream sees `train_threshold` sequential misses it issues `degree`
//! prefetches running `distance` lines ahead of the demand stream, in the
//! detected direction.

/// One tracked stream.
#[derive(Debug, Clone, Copy)]
struct Stream {
    last_line: u64,
    direction: i64,
    confidence: u32,
    lru: u64,
}

/// A multi-stream sequential prefetcher.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    max_streams: usize,
    train_threshold: u32,
    degree: u32,
    distance: u64,
    stamp: u64,
    line_bytes: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with the default 16 streams, degree 2,
    /// distance 4, train threshold 2.
    pub fn new(line_bytes: u64) -> Self {
        Self {
            streams: Vec::new(),
            max_streams: 16,
            train_threshold: 2,
            degree: 2,
            distance: 4,
            stamp: 0,
            line_bytes,
            issued: 0,
        }
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Trains on a demand miss to `addr` and returns the prefetch
    /// addresses to issue (possibly empty).
    pub fn on_demand_miss(&mut self, addr: u64) -> Vec<u64> {
        self.stamp += 1;
        let line = addr / self.line_bytes;
        let stamp = self.stamp;

        // Try to match an existing stream (within +-distance lines).
        let mut matched: Option<usize> = None;
        for (i, s) in self.streams.iter().enumerate() {
            let delta = line as i64 - s.last_line as i64;
            if delta != 0 && delta.unsigned_abs() <= self.distance {
                matched = Some(i);
                break;
            }
        }
        if let Some(i) = matched {
            let s = &mut self.streams[i];
            let delta = line as i64 - s.last_line as i64;
            let dir = delta.signum();
            if dir == s.direction {
                s.confidence += 1;
            } else {
                s.direction = dir;
                s.confidence = 1;
            }
            s.last_line = line;
            s.lru = stamp;
            if s.confidence >= self.train_threshold {
                let (dirv, dist, deg, lb) =
                    (s.direction, self.distance, self.degree, self.line_bytes);
                self.issued += u64::from(deg);
                return (1..=u64::from(deg))
                    .map(|k| {
                        let target = line as i64 + dirv * (dist + k) as i64;
                        (target.max(0) as u64) * lb
                    })
                    .collect();
            }
            return Vec::new();
        }

        // Allocate a new stream (LRU replacement).
        let entry = Stream {
            last_line: line,
            direction: 1,
            confidence: 0,
            lru: stamp,
        };
        if self.streams.len() < self.max_streams {
            self.streams.push(entry);
        } else if let Some(victim) = self.streams.iter_mut().min_by_key(|s| s.lru) {
            *victim = entry;
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_misses_trigger_prefetch() {
        let mut p = StreamPrefetcher::new(64);
        assert!(p.on_demand_miss(0).is_empty());
        assert!(p.on_demand_miss(64).is_empty(), "confidence 1 < threshold");
        let pf = p.on_demand_miss(128);
        assert!(!pf.is_empty());
        // Prefetches run ahead of the stream.
        for a in &pf {
            assert!(*a > 128);
            assert_eq!(a % 64, 0);
        }
    }

    #[test]
    fn descending_stream_prefetches_downward() {
        let mut p = StreamPrefetcher::new(64);
        p.on_demand_miss(64 * 100);
        p.on_demand_miss(64 * 99);
        let pf = p.on_demand_miss(64 * 98);
        assert!(!pf.is_empty());
        for a in &pf {
            assert!(*a < 64 * 98);
        }
    }

    #[test]
    fn random_misses_do_not_prefetch() {
        let mut p = StreamPrefetcher::new(64);
        let mut total = 0;
        let mut x = 12345u64;
        for _ in 0..100 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            total += p.on_demand_miss((x >> 20) & !63).len();
        }
        assert_eq!(total, 0, "no stream should form on random addresses");
    }

    #[test]
    fn multiple_streams_tracked_independently() {
        let mut p = StreamPrefetcher::new(64);
        let base_a = 0u64;
        let base_b = 1 << 30;
        p.on_demand_miss(base_a);
        p.on_demand_miss(base_b);
        p.on_demand_miss(base_a + 64);
        p.on_demand_miss(base_b + 64);
        let pa = p.on_demand_miss(base_a + 128);
        let pb = p.on_demand_miss(base_b + 128);
        assert!(!pa.is_empty());
        assert!(!pb.is_empty());
    }

    #[test]
    fn issued_counter_tracks() {
        let mut p = StreamPrefetcher::new(64);
        p.on_demand_miss(0);
        p.on_demand_miss(64);
        let n = p.on_demand_miss(128).len() as u64;
        assert_eq!(p.issued(), n);
    }
}
