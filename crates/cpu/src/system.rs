//! Full CPU-side system: core + L1 + LLC + prefetcher over a pluggable
//! memory backend.
//!
//! The run loop rides the shared event-driven kernel: with
//! [`sim_kernel::Advance::ToNextEvent`] (the [`CpuConfig`] default) it
//! skips stretches where the per-cycle reference would provably do
//! nothing — no retirement (ROB head not ready), no dispatch (stalled on
//! a miss, a full ROB, or a busy backend), and no backend completion
//! before the backend's own [`MemoryBackend::next_event`] bound. Skipped
//! cycles still count toward [`SimResult::cycles`], so results are
//! bit-identical to [`sim_kernel::Advance::PerCycle`].

use std::collections::VecDeque;

use sim_kernel::{EventQueue, FxHashMap, SimClock};

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::core::{CpuConfig, Rob};
use crate::prefetcher::StreamPrefetcher;
use crate::trace::TraceOp;

/// Direction of a backend access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Line fill (demand miss, RFO, metadata, or prefetch).
    Read,
    /// Line writeback.
    Write,
}

/// Error returned when the backend cannot accept a request this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy;

/// One access of a [`MemoryBackend::submit_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAccess {
    /// Read (line fill) or write (writeback).
    pub kind: AccessKind,
    /// Line-granularity address.
    pub addr: u64,
    /// Best-effort prefetch (backends may deprioritize or drop).
    pub is_prefetch: bool,
}

impl core::fmt::Display for Busy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "memory backend busy")
    }
}

impl std::error::Error for Busy {}

/// What sits below the LLC: DRAM plus whatever security machinery the
/// evaluated configuration adds (integrity tree walks, counter fetches,
/// E-MAC pads, InvisiMem channel MACs...).
///
/// Implementations assign tokens to accepted reads; [`Self::tick`] advances
/// backend time to the given CPU cycle and reports which read tokens
/// completed (writes complete silently).
pub trait MemoryBackend {
    /// Submits a line-granularity access at CPU cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`Busy`] when queues are full; the caller retries later.
    fn submit(
        &mut self,
        kind: AccessKind,
        addr: u64,
        now: u64,
        is_prefetch: bool,
    ) -> Result<u64, Busy>;

    /// Submits a batch of same-cycle accesses, appending one result per
    /// access (in order) to `results`.
    ///
    /// Observationally identical to calling [`Self::submit`] once per
    /// access at the same `now` — implementations may only amortize
    /// shared per-call work (advancing internal clocks, translation
    /// setup, backpressure rechecks), never reorder or coalesce. A
    /// rejected access must leave backend state unchanged.
    fn submit_batch(
        &mut self,
        batch: &[BatchAccess],
        now: u64,
        results: &mut Vec<Result<u64, Busy>>,
    ) {
        for b in batch {
            results.push(self.submit(b.kind, b.addr, now, b.is_prefetch));
        }
    }

    /// Advances to CPU cycle `now`; returns completed read tokens.
    fn tick(&mut self, now: u64) -> Vec<u64>;

    /// Lower bound on the next CPU cycle at which this backend's
    /// observable state can change: a read completing, or queue space
    /// freeing up after a [`Busy`] rejection.
    ///
    /// `None` means "no internal events pending" (nothing will ever
    /// complete without a new submission), which lets the event-driven
    /// run loop skip freely. The default is the always-safe "wake me
    /// every cycle", so custom backends keep per-cycle semantics unless
    /// they opt in.
    fn next_event(&self, now: u64) -> Option<u64> {
        Some(now + 1)
    }

    /// Lower bound on the next CPU cycle at which [`Self::tick`] could
    /// return a completed read token.
    ///
    /// Callers that are only waiting on completions (no writeback or
    /// submission blocked on [`Busy`]) may sleep to this bound instead of
    /// [`Self::next_event`]; it can be much larger because queue-space
    /// changes do not have to be observed. Defaults to `next_event`.
    fn next_completion_event(&self, now: u64) -> Option<u64> {
        self.next_event(now)
    }

    /// Lower bound on the next CPU cycle at which either a read could
    /// complete or read-queue capacity for a retry of the access at
    /// `addr` could free up.
    ///
    /// Used when a load is stalled on [`Busy`]: read capacity frees when
    /// a read leaves the backend's queues, which can be bounded far more
    /// loosely than "any observable change". Multi-channel backends use
    /// `addr` (the stalled access's line address) to bound the wait by
    /// the *owning* shard's queue instead of the earliest capacity event
    /// of any shard. Defaults to `next_event`.
    fn next_read_capacity_event(&self, now: u64, addr: u64) -> Option<u64> {
        let _ = addr;
        self.next_event(now)
    }
}

/// A constant-latency backend for tests and upper-bound experiments.
#[derive(Debug)]
pub struct FixedLatencyBackend {
    latency: u64,
    next_token: u64,
    in_flight: EventQueue<u64>, // token, scheduled at its finish cycle
}

impl FixedLatencyBackend {
    /// Backend whose every read completes after `latency` CPU cycles.
    pub fn new(latency: u64) -> Self {
        Self {
            latency,
            next_token: 0,
            in_flight: EventQueue::new(),
        }
    }
}

impl MemoryBackend for FixedLatencyBackend {
    fn submit(
        &mut self,
        kind: AccessKind,
        _addr: u64,
        now: u64,
        _is_prefetch: bool,
    ) -> Result<u64, Busy> {
        let token = self.next_token;
        self.next_token += 1;
        if kind == AccessKind::Read {
            self.in_flight.push(now + self.latency, token);
        }
        Ok(token)
    }

    fn tick(&mut self, now: u64) -> Vec<u64> {
        let mut done = Vec::new();
        while let Some((_, token)) = self.in_flight.pop_due(now) {
            done.push(token);
        }
        done
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        self.in_flight.peek_time()
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Instructions retired.
    pub instructions: u64,
    /// CPU cycles elapsed.
    pub cycles: u64,
    /// L1D statistics.
    pub l1: CacheStats,
    /// LLC statistics (demand accesses only).
    pub llc: CacheStats,
    /// Prefetches issued.
    pub prefetches: u64,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC demand misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc.misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

#[derive(Debug)]
struct Outstanding {
    waiters: Vec<u64>, // ROB sequence numbers
    fill_write: bool,  // install dirty (RFO)
    prefetch: bool,
}

/// The simulated CPU: ROB-limited OOO core, L1D, shared LLC, stream
/// prefetcher, and a [`MemoryBackend`] below.
#[derive(Debug)]
pub struct CpuSystem<B> {
    cfg: CpuConfig,
    backend: B,
    l1: Cache,
    llc: Cache,
    prefetcher: StreamPrefetcher,
    rob: Rob,
    clock: SimClock,
    instructions: u64,
    /// line address -> outstanding miss state
    outstanding: FxHashMap<u64, Outstanding>,
    /// backend token -> line address
    token_line: FxHashMap<u64, u64>,
    /// Writebacks the backend refused; retried each cycle.
    pending_writebacks: VecDeque<u64>,
    /// A dispatch-blocked memory op waiting for backend space.
    stalled_op: Option<TraceOp>,
    /// Line of the most recent dependent load still in flight (serializes
    /// pointer-chase chains).
    chase_outstanding: Option<u64>,
    /// Exponential backoff for skip attempts in event-dense phases where
    /// the bounds keep yielding tiny skips (heuristic only — never
    /// affects simulated results, just when bounds are computed).
    skip_backoff: u32,
    /// Remaining idle cycles to run per-cycle before probing again.
    skip_cooldown: u32,
    /// Scratch buffers for [`MemoryBackend::submit_batch`] calls (reused
    /// to keep the batched paths allocation-free).
    batch_buf: Vec<BatchAccess>,
    batch_results: Vec<Result<u64, Busy>>,
}

/// A computed wake-up must skip at least this many cycles to count as
/// paying for its own bound computation (drives the backoff heuristic).
const MIN_SKIP_YIELD: u64 = 16;

/// Number of consecutive idle cycles before the run loop starts probing
/// skip bounds: short bubbles are cheaper to simulate than to analyze.
const MIN_IDLE_STREAK: u32 = 16;

impl<B: MemoryBackend> CpuSystem<B> {
    /// Builds a system with Table I cache geometry.
    pub fn new(cfg: CpuConfig, backend: B) -> Self {
        Self {
            backend,
            l1: Cache::new(CacheConfig::l1d()),
            llc: Cache::new(CacheConfig::llc()),
            prefetcher: StreamPrefetcher::new(cfg.line_bytes),
            rob: Rob::new(cfg.rob_entries),
            clock: SimClock::new(),
            instructions: 0,
            outstanding: FxHashMap::default(),
            token_line: FxHashMap::default(),
            pending_writebacks: VecDeque::new(),
            stalled_op: None,
            chase_outstanding: None,
            skip_backoff: 0,
            skip_cooldown: 0,
            batch_buf: Vec::new(),
            batch_results: Vec::new(),
            cfg,
        }
    }

    /// Read access to the backend (for engine statistics).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Runs the trace to completion (drains the ROB and all outstanding
    /// misses) and returns the aggregate result.
    pub fn run<T: Iterator<Item = TraceOp>>(&mut self, mut trace: T) -> SimResult {
        let mut trace_done = false;
        // Consecutive do-nothing cycles so far. Pure heuristic filter:
        // the skip bound below is sound on its own, but computing it only
        // pays off for long stalls — short retire/issue bubbles cost more
        // to analyze than to simulate — so probe only once a stall has
        // demonstrably set in.
        let mut idle_streak = 0u32;
        loop {
            // 0. Event-driven fast path: jump over cycles where the
            // per-cycle reference would provably do nothing.
            if idle_streak >= MIN_IDLE_STREAK && self.cfg.advance.is_event_driven() {
                if self.skip_cooldown > 0 {
                    // Recent bounds yielded next to nothing (an event-dense
                    // phase): run per-cycle for a while instead of paying
                    // for bounds that cannot pay off.
                    self.skip_cooldown -= 1;
                } else if let Some(wake) = self.next_event_cycle(trace_done) {
                    let skip_yield = wake.saturating_sub(self.clock.now() + 1);
                    if skip_yield >= MIN_SKIP_YIELD {
                        self.skip_backoff = 0;
                    } else {
                        // A probe that did not pay for itself — whether it
                        // bought nothing or only a handful of cycles, the
                        // phase is event-dense, so probe exponentially less
                        // often (small skips are still taken below).
                        self.skip_backoff = (self.skip_backoff * 2 + 1).min(256);
                        self.skip_cooldown = self.skip_backoff;
                    }
                    if wake > self.clock.now() + 1 {
                        self.clock.skip_to(wake - 1);
                    }
                }
            }
            let now = self.clock.tick();
            let mut progressed = false;

            // 1. Memory completions.
            for token in self.backend.tick(now) {
                self.handle_completion(token);
                progressed = true;
            }

            // 2. Retry refused writebacks — as one batch (the backend's
            // per-call backpressure bookkeeping amortizes, and a rejected
            // write leaves backend state unchanged, so attempting the
            // whole set is identical to stopping at the first Busy).
            if !self.pending_writebacks.is_empty() {
                if self.cfg.batch_submit {
                    self.batch_buf.clear();
                    self.batch_buf
                        .extend(self.pending_writebacks.iter().map(|&addr| BatchAccess {
                            kind: AccessKind::Write,
                            addr,
                            is_prefetch: false,
                        }));
                    self.batch_results.clear();
                    self.backend
                        .submit_batch(&self.batch_buf, now, &mut self.batch_results);
                    let mut kept = 0;
                    for (i, result) in self.batch_results.iter().enumerate() {
                        if result.is_ok() {
                            progressed = true;
                        } else {
                            let addr = self.pending_writebacks[i];
                            self.pending_writebacks[kept] = addr;
                            kept += 1;
                        }
                    }
                    self.pending_writebacks.truncate(kept);
                } else {
                    while let Some(&wb) = self.pending_writebacks.front() {
                        if self
                            .backend
                            .submit(AccessKind::Write, wb, now, false)
                            .is_ok()
                        {
                            self.pending_writebacks.pop_front();
                            progressed = true;
                        } else {
                            break;
                        }
                    }
                }
            }

            // 3. Retire.
            let retired = self.rob.retire(self.cfg.retire_width, now);
            self.instructions += retired;
            progressed |= retired > 0;

            // 4. Dispatch.
            let mut budget = self.cfg.dispatch_width;
            while budget > 0 {
                let op = match self.stalled_op.take() {
                    Some(op) => op,
                    None => {
                        if trace_done {
                            break;
                        }
                        match trace.next() {
                            Some(op) => op,
                            None => {
                                trace_done = true;
                                break;
                            }
                        }
                    }
                };
                match self.dispatch(op, &mut budget) {
                    Ok(()) => {}
                    Err(op) => {
                        self.stalled_op = Some(op);
                        break;
                    }
                }
            }

            progressed |= budget < self.cfg.dispatch_width;
            idle_streak = if progressed { 0 } else { idle_streak + 1 };

            // 5. Termination.
            if trace_done
                && self.stalled_op.is_none()
                && self.rob.is_empty()
                && self.outstanding.is_empty()
                && self.pending_writebacks.is_empty()
            {
                break;
            }
        }
        SimResult {
            instructions: self.instructions,
            cycles: self.clock.now(),
            l1: *self.l1.stats(),
            llc: *self.llc.stats(),
            prefetches: self.prefetcher.issued(),
        }
    }

    /// Lower bound on the next cycle at which the per-cycle loop could do
    /// any work, or `None` when it must run the very next cycle.
    ///
    /// Skipping is sound only when nothing can happen in between:
    ///
    /// * *dispatch* makes progress every cycle unless the ROB is full,
    ///   the trace is exhausted, or the front op is stalled — and every
    ///   stall reason resolves via a retirement or a backend event;
    /// * *retirement* is in order, so it cannot happen before the ROB
    ///   head's ready cycle;
    /// * *completions* and *writeback retries* (backend queue space only
    ///   frees when the backend makes progress) cannot happen before
    ///   [`MemoryBackend::next_event`].
    fn next_event_cycle(&self, trace_done: bool) -> Option<u64> {
        let now = self.clock.now();
        let dispatch_idle = match &self.stalled_op {
            // A compute remainder only stalls on ROB space (a plain
            // budget cut dispatches again next cycle with fresh width).
            Some(TraceOp::Compute(_)) => self.rob.space() == 0,
            // A blocked pointer chase resumes on its completion event.
            Some(TraceOp::DependentLoad(_)) if self.chase_outstanding.is_some() => true,
            // Other memory ops stalled on ROB space (retire event) or a
            // busy backend (backend queues only drain on backend events).
            Some(_) => true,
            // A fresh op could dispatch unless the ROB is full (it would
            // merely become the stalled op, which is equivalent).
            None => trace_done || self.rob.space() == 0,
        };
        if !dispatch_idle {
            return None;
        }
        let mut bound = u64::MAX;
        if let Some(t) = self.rob.next_retire_at() {
            // Cheap early-out for one-cycle retire bubbles: the head
            // retires next cycle, so no skip is possible and the backend
            // bound (the expensive part) is not worth computing.
            if t <= now + 1 {
                return None;
            }
            bound = bound.min(t);
        }
        // Backend queue-space changes are only observable through a
        // blocked writeback or a Busy-stalled op; a pure completion wait
        // can use the (often much larger) completion bound, and a load
        // stalled on read capacity the read-issue bound.
        let busy_stalled = match &self.stalled_op {
            Some(TraceOp::Compute(_)) | None => None,
            Some(TraceOp::DependentLoad(_)) if self.chase_outstanding.is_some() => None,
            Some(op) if self.rob.space() > 0 => Some(*op), // Busy, not ROB-stalled
            Some(_) => None,
        };
        let backend_bound = if !self.pending_writebacks.is_empty()
            || matches!(busy_stalled, Some(TraceOp::Store(_)))
        {
            // Write-queue capacity must be watched at full granularity.
            self.backend.next_event(now)
        } else if let Some(TraceOp::Load(addr) | TraceOp::DependentLoad(addr)) = busy_stalled {
            let line = addr & !(self.cfg.line_bytes - 1);
            self.backend.next_read_capacity_event(now, line)
        } else {
            self.backend.next_completion_event(now)
        };
        if let Some(t) = backend_bound {
            bound = bound.min(t);
        }
        if bound == u64::MAX {
            // Nothing scheduled at all: the loop is about to terminate.
            return None;
        }
        Some(bound.max(now + 1))
    }

    /// Attempts to dispatch one trace op; returns it back on stall.
    fn dispatch(&mut self, op: TraceOp, budget: &mut u32) -> Result<(), TraceOp> {
        match op {
            TraceOp::Compute(n) => {
                let space = self.rob.space().min(*budget as usize) as u32;
                if space == 0 {
                    return Err(op);
                }
                let take = n.min(space);
                self.rob.push_compute(take, self.clock.now());
                *budget -= take;
                if take < n {
                    return Err(TraceOp::Compute(n - take));
                }
                Ok(())
            }
            TraceOp::Load(addr) | TraceOp::DependentLoad(addr) => {
                let dependent = matches!(op, TraceOp::DependentLoad(_));
                if dependent && self.chase_outstanding.is_some() {
                    // The previous pointer in the chain has not returned:
                    // the address of this load is not known yet.
                    return Err(op);
                }
                if self.rob.space() == 0 {
                    return Err(op);
                }
                let line = addr & !(self.cfg.line_bytes - 1);
                if let Some(pending) = self.outstanding.get_mut(&line) {
                    // MSHR merge into the in-flight miss (not a new miss).
                    let seq = self.rob.push_load(None);
                    pending.waiters.push(seq);
                    pending.prefetch = false;
                    if dependent {
                        self.chase_outstanding = Some(line);
                    }
                } else if self.l1.access(line, false) {
                    self.rob
                        .push_load(Some(self.clock.now() + self.cfg.l1_latency));
                } else if self.llc.access(line, false) {
                    self.rob
                        .push_load(Some(self.clock.now() + self.cfg.llc_latency));
                    self.fill_l1(line, false);
                } else {
                    // LLC demand miss: go to memory.
                    match self
                        .backend
                        .submit(AccessKind::Read, line, self.clock.now(), false)
                    {
                        Ok(token) => {
                            let seq = self.rob.push_load(None);
                            self.outstanding.insert(
                                line,
                                Outstanding {
                                    waiters: vec![seq],
                                    fill_write: false,
                                    prefetch: false,
                                },
                            );
                            self.token_line.insert(token, line);
                            if dependent {
                                self.chase_outstanding = Some(line);
                            }
                            self.train_prefetcher(line);
                        }
                        Err(Busy) => {
                            // The retry will re-access both caches; do not
                            // double-count this miss.
                            self.l1.forget_demand_miss();
                            self.llc.forget_demand_miss();
                            return Err(op);
                        }
                    }
                }
                *budget -= 1;
                Ok(())
            }
            TraceOp::Store(addr) => {
                if self.rob.space() == 0 {
                    return Err(op);
                }
                let line = addr & !(self.cfg.line_bytes - 1);
                if let Some(pending) = self.outstanding.get_mut(&line) {
                    pending.fill_write = true;
                    pending.prefetch = false;
                } else if self.l1.access(line, true) {
                    // write hit
                } else if self.llc.access(line, true) {
                    self.fill_l1(line, true);
                } else {
                    // RFO: fetch the line for ownership; the store itself is
                    // posted and does not block retirement.
                    match self
                        .backend
                        .submit(AccessKind::Read, line, self.clock.now(), false)
                    {
                        Ok(token) => {
                            self.outstanding.insert(
                                line,
                                Outstanding {
                                    waiters: Vec::new(),
                                    fill_write: true,
                                    prefetch: false,
                                },
                            );
                            self.token_line.insert(token, line);
                            self.train_prefetcher(line);
                        }
                        Err(Busy) => {
                            self.l1.forget_demand_miss();
                            self.llc.forget_demand_miss();
                            return Err(op);
                        }
                    }
                }
                self.rob.push_store(self.clock.now());
                *budget -= 1;
                Ok(())
            }
        }
    }

    fn train_prefetcher(&mut self, line: u64) {
        let candidates = self.prefetcher.on_demand_miss(line);
        if candidates.is_empty() {
            return;
        }
        if self.cfg.batch_submit {
            // Batched miss-issue: filter first, then hand the backend one
            // batch. Volley targets are usually distinct lines, but a
            // descending stream clamped at address zero can repeat one —
            // the per-call path filters the repeat against `outstanding`
            // (updated by the first submit), so the batch filter must
            // dedupe within the volley to stay observationally identical.
            self.batch_buf.clear();
            for pf_addr in candidates {
                let pf_line = pf_addr & !(self.cfg.line_bytes - 1);
                if self.llc.probe(pf_line)
                    || self.outstanding.contains_key(&pf_line)
                    || self.batch_buf.iter().any(|b| b.addr == pf_line)
                {
                    continue;
                }
                self.batch_buf.push(BatchAccess {
                    kind: AccessKind::Read,
                    addr: pf_line,
                    is_prefetch: true,
                });
            }
            if self.batch_buf.is_empty() {
                return;
            }
            self.batch_results.clear();
            self.backend
                .submit_batch(&self.batch_buf, self.clock.now(), &mut self.batch_results);
            // Prefetches are best-effort; rejected ones are dropped.
            for (access, result) in self.batch_buf.iter().zip(&self.batch_results) {
                if let Ok(token) = result {
                    self.outstanding.insert(
                        access.addr,
                        Outstanding {
                            waiters: Vec::new(),
                            fill_write: false,
                            prefetch: true,
                        },
                    );
                    self.token_line.insert(*token, access.addr);
                }
            }
        } else {
            for pf_addr in candidates {
                let pf_line = pf_addr & !(self.cfg.line_bytes - 1);
                if self.llc.probe(pf_line) || self.outstanding.contains_key(&pf_line) {
                    continue;
                }
                // Prefetches are best-effort; drop when the backend is busy.
                if let Ok(token) =
                    self.backend
                        .submit(AccessKind::Read, pf_line, self.clock.now(), true)
                {
                    self.outstanding.insert(
                        pf_line,
                        Outstanding {
                            waiters: Vec::new(),
                            fill_write: false,
                            prefetch: true,
                        },
                    );
                    self.token_line.insert(token, pf_line);
                }
            }
        }
    }

    fn handle_completion(&mut self, token: u64) {
        let Some(line) = self.token_line.remove(&token) else {
            return; // writes and unknown tokens are silent
        };
        let Some(out) = self.outstanding.remove(&line) else {
            return;
        };
        if self.chase_outstanding == Some(line) {
            self.chase_outstanding = None;
        }
        // Fill LLC (dirty writeback downstream on eviction).
        if let Some(victim) = self.llc.fill(line, out.fill_write) {
            self.writeback(victim);
        }
        if !out.prefetch {
            self.fill_l1(line, out.fill_write);
        }
        let wake_at = self.clock.now() + self.cfg.fill_latency;
        for seq in out.waiters {
            self.rob.mark_ready(seq, wake_at);
        }
    }

    /// Installs a line in L1, spilling its dirty victim into the LLC.
    fn fill_l1(&mut self, line: u64, dirty: bool) {
        if let Some(victim) = self.l1.fill(line, dirty) {
            // Dirty L1 victim: update the LLC copy (usually present).
            if !self.llc.access(victim, true) {
                if let Some(llc_victim) = self.llc.fill(victim, true) {
                    self.writeback(llc_victim);
                }
            }
        }
    }

    fn writeback(&mut self, addr: u64) {
        if self
            .backend
            .submit(AccessKind::Write, addr, self.clock.now(), false)
            .is_err()
        {
            self.pending_writebacks.push_back(addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_trace(n: u64) -> impl Iterator<Item = TraceOp> {
        (0..n).map(|_| TraceOp::Compute(60))
    }

    #[test]
    fn pure_compute_reaches_full_width_ipc() {
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(100));
        let r = sys.run(compute_trace(1000));
        assert_eq!(r.instructions, 60_000);
        assert!(r.ipc() > 5.5, "ipc {}", r.ipc());
    }

    #[test]
    fn memory_latency_reduces_ipc() {
        // Pointer-chase-like loads to distinct lines, little compute.
        let make_trace = || {
            (0..2_000u64)
                .flat_map(|i| [TraceOp::Load(i * 64 * 131), TraceOp::Compute(2)].into_iter())
        };
        let fast =
            CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(20)).run(make_trace());
        let slow =
            CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(400)).run(make_trace());
        assert_eq!(fast.instructions, slow.instructions);
        assert!(
            fast.ipc() > slow.ipc() * 2.0,
            "fast {} vs slow {}",
            fast.ipc(),
            slow.ipc()
        );
    }

    #[test]
    fn repeated_loads_hit_l1() {
        let trace = (0..1_000u64).map(|_| TraceOp::Load(0x4000));
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(300));
        let r = sys.run(trace);
        assert_eq!(r.l1.misses, 1);
        assert_eq!(r.llc.misses, 1);
        assert!(r.ipc() > 1.0);
    }

    #[test]
    fn mlp_overlaps_independent_misses() {
        // Many independent misses should overlap in the 224-entry window:
        // runtime must be far less than sum of latencies.
        let n = 500u64;
        let trace = (0..n).map(|i| TraceOp::Load(i * 64 * 977));
        let lat = 300u64;
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(lat));
        let r = sys.run(trace);
        assert!(
            r.cycles < n * lat / 4,
            "expected MLP overlap: {} cycles for {} misses of {}",
            r.cycles,
            n,
            lat
        );
    }

    #[test]
    fn stores_do_not_block_retirement() {
        let trace = (0..500u64).map(|i| TraceOp::Store(i * 64 * 977));
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(400));
        let r = sys.run(trace);
        // 500 store instructions; posted stores retire at full width.
        assert!(r.ipc() > 1.0, "ipc {}", r.ipc());
    }

    #[test]
    fn streaming_trains_prefetcher() {
        let trace = (0..4_000u64).map(|i| TraceOp::Load(i * 64));
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(200));
        let r = sys.run(trace);
        assert!(r.prefetches > 100, "prefetches {}", r.prefetches);
    }

    #[test]
    fn llc_mpki_reflects_locality() {
        let stream = (0..20_000u64)
            .map(|i| TraceOp::Load((i % 64) * 64))
            .collect::<Vec<_>>();
        let random = (0..20_000u64)
            .map(|i| TraceOp::Load((i.wrapping_mul(0x9E3779B97F4A7C15) >> 20) & !63))
            .collect::<Vec<_>>();
        let r_stream = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(100))
            .run(stream.into_iter());
        let r_random = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(100))
            .run(random.into_iter());
        assert!(
            r_stream.llc_mpki() < 5.0,
            "cold misses only: {}",
            r_stream.llc_mpki()
        );
        assert!(r_random.llc_mpki() > 100.0);
    }

    #[test]
    fn result_instruction_count_matches_trace() {
        let trace = vec![
            TraceOp::Compute(100),
            TraceOp::Load(0),
            TraceOp::Store(64),
            TraceOp::Compute(3),
        ];
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(50));
        let r = sys.run(trace.into_iter());
        assert_eq!(r.instructions, 105);
    }

    #[test]
    fn dependent_loads_serialize() {
        // Pointer chase: each DependentLoad waits for the previous one, so
        // total time approaches n * latency, unlike independent loads.
        let n = 200u64;
        let lat = 300u64;
        let chase: Vec<TraceOp> = (0..n)
            .map(|i| TraceOp::DependentLoad(i * 64 * 977))
            .collect();
        let indep: Vec<TraceOp> = (0..n).map(|i| TraceOp::Load(i * 64 * 977)).collect();
        let r_chase = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(lat))
            .run(chase.into_iter());
        let r_indep = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(lat))
            .run(indep.into_iter());
        assert!(
            r_chase.cycles > n * lat * 9 / 10,
            "chase must serialize: {} cycles",
            r_chase.cycles
        );
        assert!(r_chase.cycles > r_indep.cycles * 4);
    }

    #[test]
    fn duplicate_misses_merge() {
        // Two loads to the same (cold) line: one backend read.
        #[derive(Debug, Default)]
        struct CountingBackend {
            reads: u64,
            inner: Vec<(u64, u64)>,
            next: u64,
        }
        impl MemoryBackend for CountingBackend {
            fn submit(
                &mut self,
                kind: AccessKind,
                _addr: u64,
                now: u64,
                _p: bool,
            ) -> Result<u64, Busy> {
                let t = self.next;
                self.next += 1;
                if kind == AccessKind::Read {
                    self.reads += 1;
                    self.inner.push((now + 100, t));
                }
                Ok(t)
            }
            fn tick(&mut self, now: u64) -> Vec<u64> {
                let (done, rest): (Vec<_>, Vec<_>) =
                    self.inner.iter().partition(|(f, _)| *f <= now);
                self.inner = rest;
                done.into_iter().map(|(_, t)| t).collect()
            }
        }
        let trace = vec![TraceOp::Load(0x1234000), TraceOp::Load(0x1234008)];
        let mut sys = CpuSystem::new(CpuConfig::default(), CountingBackend::default());
        let r = sys.run(trace.into_iter());
        assert_eq!(sys.backend().reads, 1);
        assert_eq!(r.instructions, 2);
    }
}
