//! Full CPU-side system: core + L1 + LLC + prefetcher over a pluggable
//! memory backend.
//!
//! The per-core state machine itself lives in [`crate::exec::CoreEngine`]
//! — [`CpuSystem`] composes one core with the clock, the LLC, and the
//! backend it owns. The run loop rides the shared event-driven kernel:
//! with [`sim_kernel::Advance::ToNextEvent`] (the [`CpuConfig`] default)
//! it skips stretches where the per-cycle reference would provably do
//! nothing — no retirement (ROB head not ready), no dispatch (stalled on
//! a miss, a full ROB, or a busy backend), and no backend completion
//! before the backend's own [`MemoryBackend::next_event`] bound. Skipped
//! cycles still count toward [`SimResult::cycles`], so results are
//! bit-identical to [`sim_kernel::Advance::PerCycle`].

use sim_kernel::{EventQueue, SimClock};

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::core::CpuConfig;
use crate::exec::CoreEngine;
use crate::trace::TraceOp;

/// Direction of a backend access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Line fill (demand miss, RFO, metadata, or prefetch).
    Read,
    /// Line writeback.
    Write,
}

/// Error returned when the backend cannot accept a request this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy;

/// One access of a [`MemoryBackend::submit_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAccess {
    /// Read (line fill) or write (writeback).
    pub kind: AccessKind,
    /// Line-granularity address.
    pub addr: u64,
    /// Best-effort prefetch (backends may deprioritize or drop).
    pub is_prefetch: bool,
}

impl core::fmt::Display for Busy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "memory backend busy")
    }
}

impl std::error::Error for Busy {}

/// What sits below the LLC: DRAM plus whatever security machinery the
/// evaluated configuration adds (integrity tree walks, counter fetches,
/// E-MAC pads, InvisiMem channel MACs...).
///
/// Implementations assign tokens to accepted reads; [`Self::tick`] advances
/// backend time to the given CPU cycle and reports which read tokens
/// completed (writes complete silently).
///
/// Tokens are allocated as a dense ascending sequence starting at zero —
/// one per accepted submission, reads and writes alike. Front-ends rely
/// on this to key per-token side tables by plain index (e.g. the
/// multi-core completion router's token→core table) instead of hashing.
pub trait MemoryBackend {
    /// Submits a line-granularity access at CPU cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`Busy`] when queues are full; the caller retries later.
    fn submit(
        &mut self,
        kind: AccessKind,
        addr: u64,
        now: u64,
        is_prefetch: bool,
    ) -> Result<u64, Busy>;

    /// Submits a batch of same-cycle accesses, appending one result per
    /// access (in order) to `results`.
    ///
    /// Observationally identical to calling [`Self::submit`] once per
    /// access at the same `now` — implementations may only amortize
    /// shared per-call work (advancing internal clocks, translation
    /// setup, backpressure rechecks), never reorder or coalesce. A
    /// rejected access must leave backend state unchanged.
    fn submit_batch(
        &mut self,
        batch: &[BatchAccess],
        now: u64,
        results: &mut Vec<Result<u64, Busy>>,
    ) {
        for b in batch {
            results.push(self.submit(b.kind, b.addr, now, b.is_prefetch));
        }
    }

    /// Advances to CPU cycle `now`; returns completed read tokens.
    fn tick(&mut self, now: u64) -> Vec<u64>;

    /// Advances to CPU cycle `target` in one call, appending every read
    /// completion that became visible in the advanced window to
    /// `completions` as `(visible_cycle, token)` pairs, in exactly the
    /// order a per-cycle [`Self::tick`] loop would have delivered them
    /// (ascending cycle; same-cycle completions in the tick's own order).
    ///
    /// This is the block-advance seam for next-event schedulers: instead
    /// of one `tick` per simulated cycle, the backend is touched once per
    /// *observable* event. The call is sound at any `target`; the stamps
    /// tell the caller which cycle each completion belongs to. A caller
    /// that never advances past [`Self::next_completion_event`] without
    /// harvesting will only ever see stamps equal to its current cycle.
    ///
    /// The default implementation delegates to `tick(target)` and stamps
    /// every token at `target` — exact for such disciplined callers
    /// (under the default per-cycle bounds the backend is harvested
    /// every cycle, where `tick`'s semantics are already exact).
    fn advance_to(&mut self, target: u64, completions: &mut Vec<(u64, u64)>) {
        for token in self.tick(target) {
            completions.push((target, token));
        }
    }

    /// Lower bound on the next CPU cycle at which this backend's
    /// observable state can change: a read completing, or queue space
    /// freeing up after a [`Busy`] rejection.
    ///
    /// `None` means "no internal events pending" (nothing will ever
    /// complete without a new submission), which lets the event-driven
    /// run loop skip freely. The default is the always-safe "wake me
    /// every cycle", so custom backends keep per-cycle semantics unless
    /// they opt in.
    fn next_event(&self, now: u64) -> Option<u64> {
        Some(now + 1)
    }

    /// Lower bound on the next CPU cycle at which [`Self::tick`] could
    /// return a completed read token.
    ///
    /// Callers that are only waiting on completions (no writeback or
    /// submission blocked on [`Busy`]) may sleep to this bound instead of
    /// [`Self::next_event`]; it can be much larger because queue-space
    /// changes do not have to be observed. Defaults to `next_event`.
    fn next_completion_event(&self, now: u64) -> Option<u64> {
        self.next_event(now)
    }

    /// Lower bound on the next CPU cycle at which either a read could
    /// complete or read-queue capacity for a retry of the access at
    /// `addr` could free up.
    ///
    /// Used when a load is stalled on [`Busy`]: read capacity frees when
    /// a read leaves the backend's queues, which can be bounded far more
    /// loosely than "any observable change". Multi-channel backends use
    /// `addr` (the stalled access's line address) to bound the wait by
    /// the *owning* shard's queue instead of the earliest capacity event
    /// of any shard. Defaults to `next_event`.
    fn next_read_capacity_event(&self, now: u64, addr: u64) -> Option<u64> {
        let _ = addr;
        self.next_event(now)
    }
}

/// A constant-latency backend for tests and upper-bound experiments.
#[derive(Debug)]
pub struct FixedLatencyBackend {
    latency: u64,
    next_token: u64,
    in_flight: EventQueue<u64>, // token, scheduled at its finish cycle
}

impl FixedLatencyBackend {
    /// Backend whose every read completes after `latency` CPU cycles.
    pub fn new(latency: u64) -> Self {
        Self {
            latency,
            next_token: 0,
            in_flight: EventQueue::new(),
        }
    }
}

impl MemoryBackend for FixedLatencyBackend {
    fn submit(
        &mut self,
        kind: AccessKind,
        _addr: u64,
        now: u64,
        _is_prefetch: bool,
    ) -> Result<u64, Busy> {
        let token = self.next_token;
        self.next_token += 1;
        if kind == AccessKind::Read {
            self.in_flight.push(now + self.latency, token);
        }
        Ok(token)
    }

    fn tick(&mut self, now: u64) -> Vec<u64> {
        let mut done = Vec::new();
        while let Some((_, token)) = self.in_flight.pop_due(now) {
            done.push(token);
        }
        done
    }

    fn advance_to(&mut self, target: u64, completions: &mut Vec<(u64, u64)>) {
        // `in_flight` is keyed at finish cycles, so the pop order *is*
        // the per-cycle delivery order, stamps included.
        while let Some((at, token)) = self.in_flight.pop_due(target) {
            completions.push((at, token));
        }
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        self.in_flight.peek_time()
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Instructions retired.
    pub instructions: u64,
    /// CPU cycles elapsed.
    pub cycles: u64,
    /// L1D statistics.
    pub l1: CacheStats,
    /// LLC statistics (demand accesses only).
    pub llc: CacheStats,
    /// Prefetches issued.
    pub prefetches: u64,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC demand misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc.misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Accumulates another core's result into `self`: instruction and
    /// prefetch counters sum, cache statistics merge, and `cycles` takes
    /// the maximum (the cores ran concurrently, so the aggregate run is
    /// as long as its slowest core). The merged [`Self::ipc`] is
    /// therefore total instructions over the shared wall-cycle span.
    pub fn merge(&mut self, other: &Self) {
        // Exhaustive destructuring: a new field must pick a merge rule.
        let Self {
            instructions,
            cycles,
            l1,
            llc,
            prefetches,
        } = other;
        self.instructions += instructions;
        self.cycles = self.cycles.max(*cycles);
        self.l1.merge(l1);
        self.llc.merge(llc);
        self.prefetches += prefetches;
    }
}

/// The simulated CPU: ROB-limited OOO core, L1D, shared LLC, stream
/// prefetcher, and a [`MemoryBackend`] below.
#[derive(Debug)]
pub struct CpuSystem<B> {
    backend: B,
    llc: Cache,
    core: CoreEngine,
    clock: SimClock,
}

impl<B: MemoryBackend> CpuSystem<B> {
    /// Builds a system with Table I cache geometry.
    pub fn new(cfg: CpuConfig, backend: B) -> Self {
        Self {
            backend,
            llc: Cache::new(CacheConfig::llc()),
            core: CoreEngine::new(cfg),
            clock: SimClock::new(),
        }
    }

    /// Read access to the backend (for engine statistics).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Runs the trace to completion (drains the ROB and all outstanding
    /// misses) and returns the aggregate result.
    ///
    /// Calling `run` again continues cumulatively: the clock keeps
    /// advancing, caches stay warm, and counters accumulate across runs.
    pub fn run<T: Iterator<Item = TraceOp>>(&mut self, mut trace: T) -> SimResult {
        self.core.begin_trace();
        loop {
            // Event-driven fast path: jump over cycles where the
            // per-cycle reference would provably do nothing. The probe
            // itself is heuristically gated inside the core (idle-streak
            // threshold, event-dense backoff) — wall-clock only, never
            // simulated results.
            if let Some(wake) = self.core.sleep_bound(self.clock.now(), &self.backend) {
                if wake > self.clock.now() + 1 {
                    self.clock.skip_to(wake - 1);
                }
            }
            let now = self.clock.tick();
            let completions = self.backend.tick(now);
            let outcome = self.core.step(
                now,
                &mut self.llc,
                &mut self.backend,
                &mut trace,
                &completions,
            );
            if outcome.finished {
                break;
            }
        }
        self.core.result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_trace(n: u64) -> impl Iterator<Item = TraceOp> {
        (0..n).map(|_| TraceOp::Compute(60))
    }

    #[test]
    fn pure_compute_reaches_full_width_ipc() {
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(100));
        let r = sys.run(compute_trace(1000));
        assert_eq!(r.instructions, 60_000);
        assert!(r.ipc() > 5.5, "ipc {}", r.ipc());
    }

    #[test]
    fn memory_latency_reduces_ipc() {
        // Pointer-chase-like loads to distinct lines, little compute.
        let make_trace = || {
            (0..2_000u64)
                .flat_map(|i| [TraceOp::Load(i * 64 * 131), TraceOp::Compute(2)].into_iter())
        };
        let fast =
            CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(20)).run(make_trace());
        let slow =
            CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(400)).run(make_trace());
        assert_eq!(fast.instructions, slow.instructions);
        assert!(
            fast.ipc() > slow.ipc() * 2.0,
            "fast {} vs slow {}",
            fast.ipc(),
            slow.ipc()
        );
    }

    #[test]
    fn repeated_loads_hit_l1() {
        let trace = (0..1_000u64).map(|_| TraceOp::Load(0x4000));
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(300));
        let r = sys.run(trace);
        assert_eq!(r.l1.misses, 1);
        assert_eq!(r.llc.misses, 1);
        assert!(r.ipc() > 1.0);
    }

    #[test]
    fn mlp_overlaps_independent_misses() {
        // Many independent misses should overlap in the 224-entry window:
        // runtime must be far less than sum of latencies.
        let n = 500u64;
        let trace = (0..n).map(|i| TraceOp::Load(i * 64 * 977));
        let lat = 300u64;
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(lat));
        let r = sys.run(trace);
        assert!(
            r.cycles < n * lat / 4,
            "expected MLP overlap: {} cycles for {} misses of {}",
            r.cycles,
            n,
            lat
        );
    }

    #[test]
    fn stores_do_not_block_retirement() {
        let trace = (0..500u64).map(|i| TraceOp::Store(i * 64 * 977));
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(400));
        let r = sys.run(trace);
        // 500 store instructions; posted stores retire at full width.
        assert!(r.ipc() > 1.0, "ipc {}", r.ipc());
    }

    #[test]
    fn streaming_trains_prefetcher() {
        let trace = (0..4_000u64).map(|i| TraceOp::Load(i * 64));
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(200));
        let r = sys.run(trace);
        assert!(r.prefetches > 100, "prefetches {}", r.prefetches);
    }

    #[test]
    fn llc_mpki_reflects_locality() {
        let stream = (0..20_000u64)
            .map(|i| TraceOp::Load((i % 64) * 64))
            .collect::<Vec<_>>();
        let random = (0..20_000u64)
            .map(|i| TraceOp::Load((i.wrapping_mul(0x9E3779B97F4A7C15) >> 20) & !63))
            .collect::<Vec<_>>();
        let r_stream = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(100))
            .run(stream.into_iter());
        let r_random = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(100))
            .run(random.into_iter());
        assert!(
            r_stream.llc_mpki() < 5.0,
            "cold misses only: {}",
            r_stream.llc_mpki()
        );
        assert!(r_random.llc_mpki() > 100.0);
    }

    #[test]
    fn result_instruction_count_matches_trace() {
        let trace = vec![
            TraceOp::Compute(100),
            TraceOp::Load(0),
            TraceOp::Store(64),
            TraceOp::Compute(3),
        ];
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(50));
        let r = sys.run(trace.into_iter());
        assert_eq!(r.instructions, 105);
    }

    #[test]
    fn dependent_loads_serialize() {
        // Pointer chase: each DependentLoad waits for the previous one, so
        // total time approaches n * latency, unlike independent loads.
        let n = 200u64;
        let lat = 300u64;
        let chase: Vec<TraceOp> = (0..n)
            .map(|i| TraceOp::DependentLoad(i * 64 * 977))
            .collect();
        let indep: Vec<TraceOp> = (0..n).map(|i| TraceOp::Load(i * 64 * 977)).collect();
        let r_chase = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(lat))
            .run(chase.into_iter());
        let r_indep = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(lat))
            .run(indep.into_iter());
        assert!(
            r_chase.cycles > n * lat * 9 / 10,
            "chase must serialize: {} cycles",
            r_chase.cycles
        );
        assert!(r_chase.cycles > r_indep.cycles * 4);
    }

    #[test]
    fn duplicate_misses_merge() {
        // Two loads to the same (cold) line: one backend read.
        #[derive(Debug, Default)]
        struct CountingBackend {
            reads: u64,
            inner: Vec<(u64, u64)>,
            next: u64,
        }
        impl MemoryBackend for CountingBackend {
            fn submit(
                &mut self,
                kind: AccessKind,
                _addr: u64,
                now: u64,
                _p: bool,
            ) -> Result<u64, Busy> {
                let t = self.next;
                self.next += 1;
                if kind == AccessKind::Read {
                    self.reads += 1;
                    self.inner.push((now + 100, t));
                }
                Ok(t)
            }
            fn tick(&mut self, now: u64) -> Vec<u64> {
                let (done, rest): (Vec<_>, Vec<_>) =
                    self.inner.iter().partition(|(f, _)| *f <= now);
                self.inner = rest;
                done.into_iter().map(|(_, t)| t).collect()
            }
        }
        let trace = vec![TraceOp::Load(0x1234000), TraceOp::Load(0x1234008)];
        let mut sys = CpuSystem::new(CpuConfig::default(), CountingBackend::default());
        let r = sys.run(trace.into_iter());
        assert_eq!(sys.backend().reads, 1);
        assert_eq!(r.instructions, 2);
    }

    #[test]
    fn second_run_continues_cumulatively() {
        // Re-running on a drained system simulates the new trace with a
        // continuing clock, warm caches, and accumulating counters (the
        // pre-CoreEngine monolith's semantics).
        let mut sys = CpuSystem::new(CpuConfig::default(), FixedLatencyBackend::new(120));
        let r1 = sys.run((0..100u64).map(|i| TraceOp::Load(i * 64 * 131)));
        let r2 = sys.run((0..50u64).map(|_| TraceOp::Compute(60)));
        assert_eq!(r1.instructions, 100);
        assert_eq!(r2.instructions, 100 + 3_000, "counters accumulate");
        assert!(r2.cycles > r1.cycles, "clock keeps advancing");
        // The first run's lines are still cached: repeating it is hits.
        let r3 = sys.run((0..100u64).map(|i| TraceOp::Load(i * 64 * 131)));
        assert_eq!(r3.llc.misses, r2.llc.misses, "warm LLC: no new misses");
    }

    #[test]
    fn merge_sums_counters_and_maxes_cycles() {
        let a = SimResult {
            instructions: 100,
            cycles: 50,
            l1: CacheStats {
                hits: 10,
                misses: 2,
                writebacks: 1,
            },
            llc: CacheStats {
                hits: 4,
                misses: 3,
                writebacks: 2,
            },
            prefetches: 5,
        };
        let b = SimResult {
            instructions: 200,
            cycles: 40,
            l1: CacheStats {
                hits: 1,
                misses: 1,
                writebacks: 0,
            },
            llc: CacheStats {
                hits: 2,
                misses: 2,
                writebacks: 2,
            },
            prefetches: 7,
        };
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.instructions, 300);
        assert_eq!(merged.cycles, 50, "concurrent cores: max, not sum");
        assert_eq!(merged.l1.hits, 11);
        assert_eq!(merged.llc.misses, 5);
        assert_eq!(merged.prefetches, 12);
        assert!((merged.ipc() - 300.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative_on_counters() {
        let a = SimResult {
            instructions: 7,
            cycles: 9,
            l1: CacheStats::default(),
            llc: CacheStats::default(),
            prefetches: 1,
        };
        let b = SimResult {
            instructions: 11,
            cycles: 13,
            l1: CacheStats::default(),
            llc: CacheStats::default(),
            prefetches: 2,
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}
