//! Set-associative write-back cache with true-LRU replacement.
//!
//! Used for the L1D, the shared LLC, and (in `secddr-core`) the 128 KB
//! security-metadata cache of Table I.

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// 32 KB, 64 B lines, 4-way (Table I L1D).
    pub fn l1d() -> Self {
        Self {
            size_bytes: 32 << 10,
            line_bytes: 64,
            ways: 4,
        }
    }

    /// 4 MB, 64 B lines, 16-way (Table I shared LLC).
    pub fn llc() -> Self {
        Self {
            size_bytes: 4 << 20,
            line_bytes: 64,
            ways: 16,
        }
    }

    /// 128 KB, 64 B lines, 8-way (Table I metadata cache).
    pub fn metadata() -> Self {
        Self {
            size_bytes: 128 << 10,
            line_bytes: 64,
            ways: 8,
        }
    }

    fn sets(&self) -> usize {
        (self.size_bytes / u64::from(self.line_bytes) / u64::from(self.ways)) as usize
    }
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Dirty lines evicted (writebacks generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate over demand accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self` (all counters sum), so per-shard
    /// or per-core cache statistics aggregate into one view.
    pub fn merge(&mut self, other: &Self) {
        // Exhaustive destructuring: a new field must pick a merge rule.
        let Self {
            hits,
            misses,
            writebacks,
        } = other;
        self.hits += hits;
        self.misses += misses;
        self.writebacks += writebacks;
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A set-associative write-back cache.
///
/// The cache is a tag store only (no data payload): `access` classifies a
/// reference, `fill` installs a line after a miss returns, and dirty
/// evictions are surfaced to the caller for writeback traffic.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    stamp: u64,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two number of sets.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two(),
            "cache must have a power-of-two set count"
        );
        Self {
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        lru: 0
                    };
                    cfg.ways as usize
                ];
                sets
            ],
            stamp: 0,
            stats: CacheStats::default(),
            set_mask: sets as u64 - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            cfg,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Looks up `addr`; on a hit updates recency (and the dirty bit when
    /// `is_write`). Returns `true` on hit. Misses are *not* auto-filled —
    /// call [`Self::fill`] when the miss returns.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.stamp += 1;
        let (set, tag) = self.index(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.lru = self.stamp;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Checks residency without touching recency or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Installs the line holding `addr`, returning the evicted dirty line's
    /// address if a writeback is needed. `is_write` marks the new line
    /// dirty on install (write-allocate).
    pub fn fill(&mut self, addr: u64, is_write: bool) -> Option<u64> {
        self.stamp += 1;
        let (set, tag) = self.index(addr);
        // Already present (e.g. a racing fill): just update.
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.stamp;
            line.dirty |= is_write;
            return None;
        }
        let stamp = self.stamp;
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways >= 1");
        let evicted = if victim.valid && victim.dirty {
            let set_bits = self.set_mask.count_ones();
            Some((victim.tag << set_bits | set as u64) << self.line_shift)
        } else {
            None
        };
        if evicted.is_some() {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: stamp,
        };
        evicted
    }

    /// Removes the most recent demand-miss count. Used by retry paths
    /// (e.g. a backend-busy stall) that will re-issue the same access and
    /// count it again — without this, stalled accesses inflate miss
    /// statistics.
    pub fn forget_demand_miss(&mut self) {
        debug_assert!(self.stats.misses > 0, "no miss to forget");
        self.stats.misses = self.stats.misses.saturating_sub(1);
    }

    /// Invalidates the line holding `addr`, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.valid = false;
                return line.dirty;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false));
        assert_eq!(c.fill(0x1000, false), None);
        assert!(c.access(0x1000, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0: line addresses stride 4*64.
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.fill(a, false);
        c.fill(b, false);
        c.access(a, false); // a most recent
        c.fill(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        let a = 0u64;
        c.fill(a, true); // dirty
        c.fill(4 * 64, false);
        let evicted = c.fill(8 * 64, false); // evicts a
        assert_eq!(evicted, Some(a));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = tiny();
        c.fill(0, false);
        c.fill(4 * 64, false);
        assert_eq!(c.fill(8 * 64, false), None);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = tiny();
        c.fill(0, false);
        assert!(c.access(0, true));
        c.fill(4 * 64, false);
        let evicted = c.fill(8 * 64, false);
        assert_eq!(evicted, Some(0));
    }

    #[test]
    fn fill_existing_line_does_not_evict() {
        let mut c = tiny();
        c.fill(0, false);
        c.fill(4 * 64, true);
        assert_eq!(c.fill(0, false), None);
        assert!(c.probe(4 * 64));
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = tiny();
        c.fill(0, true);
        assert!(c.invalidate(0));
        assert!(!c.probe(0));
        assert!(!c.invalidate(0));
    }

    #[test]
    fn geometry_of_standard_configs() {
        assert_eq!(CacheConfig::l1d().sets(), 128);
        assert_eq!(CacheConfig::llc().sets(), 4096);
        assert_eq!(CacheConfig::metadata().sets(), 256);
        // And they all construct.
        let _ = Cache::new(CacheConfig::l1d());
        let _ = Cache::new(CacheConfig::llc());
        let _ = Cache::new(CacheConfig::metadata());
    }

    #[test]
    fn working_set_within_capacity_has_no_capacity_misses() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
        });
        let lines = 4096 / 64;
        for pass in 0..3 {
            for i in 0..lines {
                let addr = i * 64;
                if !c.access(addr, false) {
                    assert_eq!(pass, 0, "only cold misses expected");
                    c.fill(addr, false);
                }
            }
        }
        assert_eq!(c.stats().misses, lines);
    }
}
