//! The deterministic, mergeable point-in-time view every telemetry
//! source renders into.

use std::collections::BTreeMap;
use std::fmt;

/// Number of power-of-two histogram buckets: bucket 0 holds the value
/// 0, bucket `k` (k ≥ 1) holds values in `[2^(k-1), 2^k)`, bucket 64
/// holds `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in (O(1): a leading-zeros count).
#[must_use]
pub(crate) fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Point-in-time contents of one power-of-two-bucketed histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Records one value (snapshot-side mirror of
    /// [`Histogram::record`](crate::Histogram::record), for plain
    /// non-atomic instrumentation).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// Folds `other` in: buckets, count, and sum all add, so merging is
    /// associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        // Exhaustive destructuring: adding a field without deciding how
        // it merges is a compile error.
        let HistogramSnapshot {
            buckets,
            count,
            sum,
        } = other;
        for (mine, theirs) in self.buckets.iter_mut().zip(buckets) {
            *mine += theirs;
        }
        self.count += count;
        self.sum = self.sum.wrapping_add(*sum);
    }

    /// Mean of the recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }

    /// Inclusive upper bound of values landing in `bucket`: 0 for
    /// bucket 0, `2^k - 1` for bucket `k`, `u64::MAX` for bucket 64.
    fn bucket_upper_bound(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            k if k >= 64 => u64::MAX,
            k => (1u64 << k) - 1,
        }
    }

    /// The `p`-th percentile (`p` in `0.0..=100.0`) as the **inclusive
    /// upper bound of the power-of-two bucket** the rank lands in — an
    /// overestimate by at most 2x, which is the resolution this
    /// histogram trades for O(1) recording. Returns 0 when empty.
    ///
    /// The rank is `ceil(p/100 * count)` clamped to at least 1, so
    /// `percentile(0.0)` is the smallest bucket's bound and
    /// `percentile(100.0)` the largest occupied bucket's bound.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss)]
        let rank = ((p.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_bound(bucket);
            }
        }
        // Unreachable while count == sum of buckets; be defensive.
        Self::bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Bucket-wise difference `self - earlier` (saturating), for
    /// windowed streaming of a monotone histogram.
    #[must_use]
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for (o, (cur, old)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *o = cur.saturating_sub(*old);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.wrapping_sub(earlier.sum);
        out
    }
}

/// A deterministic point-in-time view of a set of telemetry sources:
/// dotted-name → value maps in lexicographic (`BTreeMap`) order, so two
/// snapshots of identical state render and compare identically.
///
/// Built either by [`Registry::snapshot`](crate::Registry::snapshot) or
/// directly by the hot layers' plain counter structs; snapshots from
/// different sources (or different shards/records) combine with
/// [`TelemetrySnapshot::merge`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Monotone event counts; merge by sum.
    pub counters: BTreeMap<String, u64>,
    /// Level samples; merge by max.
    pub gauges: BTreeMap<String, u64>,
    /// Power-of-two-bucketed distributions; merge bucket-wise.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to the counter `name` (creating it at 0).
    pub fn add_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// Raises the gauge `name` to at least `value`.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        *g = (*g).max(value);
    }

    /// Folds `hist` into the histogram `name`.
    pub fn add_histogram(&mut self, name: &str, hist: &HistogramSnapshot) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(hist);
    }

    /// The counter `name`, or 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Whether the counter `name` exists (even at zero) — lets series
    /// reconciliation distinguish "aggregate says 0" from "no aggregate
    /// counterpart".
    #[must_use]
    pub fn has_counter(&self, name: &str) -> bool {
        self.counters.contains_key(name)
    }

    /// The windowed difference `self - earlier` for live streaming of
    /// monotone sources: counters subtract (saturating, so a restarted
    /// source reads as zero rather than wrapping), histograms subtract
    /// bucket-wise, gauges keep their current level. Counters and
    /// histograms present only in `earlier` are dropped (they changed by
    /// nothing).
    #[must_use]
    pub fn delta_since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut out = TelemetrySnapshot::new();
        for (name, &cur) in &self.counters {
            let old = earlier.counter(name);
            if cur > old {
                out.counters.insert(name.clone(), cur - old);
            }
        }
        out.gauges = self.gauges.clone();
        for (name, cur) in &self.histograms {
            let delta = match earlier.histograms.get(name) {
                Some(old) => cur.delta_since(old),
                None => *cur,
            };
            if delta.count > 0 {
                out.histograms.insert(name.clone(), delta);
            }
        }
        out
    }

    /// Sum of every counter whose name starts with `prefix` (the
    /// reconciliation helper: e.g. all `dram.decision.` causes).
    #[must_use]
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Folds `other` in: counters and histogram buckets sum, gauges
    /// take the max — all associative and commutative, so merge order
    /// never matters (pinned by `tests/telemetry_properties.rs`).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        // Exhaustive destructuring: a new field must decide its merge.
        let TelemetrySnapshot {
            counters,
            gauges,
            histograms,
        } = other;
        for (name, v) in counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in gauges {
            let g = self.gauges.entry(name.clone()).or_insert(0);
            *g = (*g).max(*v);
        }
        for (name, h) in histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl fmt::Display for TelemetrySnapshot {
    /// One `name value` line per metric, names in lexicographic order
    /// (histograms render as `name{count,mean}`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name} {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "{name} {v} (gauge)")?;
        }
        for (name, h) in &self.histograms {
            writeln!(f, "{name} count={} mean={:.1}", h.count, h.mean())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_split_at_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = HistogramSnapshot::default();
        a.record(0);
        a.record(5);
        let mut b = HistogramSnapshot::default();
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 10);
        assert_eq!(a.buckets[0], 1);
        assert_eq!(a.buckets[bucket_of(5)], 2);
        assert!((a.mean() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_merge_sums_counters_maxes_gauges() {
        let mut a = TelemetrySnapshot::new();
        a.add_counter("x.a", 2);
        a.set_gauge("x.g", 7);
        let mut b = TelemetrySnapshot::new();
        b.add_counter("x.a", 3);
        b.add_counter("x.b", 1);
        b.set_gauge("x.g", 5);
        a.merge(&b);
        assert_eq!(a.counter("x.a"), 5);
        assert_eq!(a.counter("x.b"), 1);
        assert_eq!(a.gauges["x.g"], 7);
        assert_eq!(a.counter_prefix_sum("x."), 6);
    }

    #[test]
    fn prefix_sum_does_not_cross_prefixes() {
        let mut s = TelemetrySnapshot::new();
        s.add_counter("dram.decision.issue_hit", 4);
        s.add_counter("dram.decision.noop", 1);
        s.add_counter("dram.decisions_total", 100);
        assert_eq!(s.counter_prefix_sum("dram.decision."), 5);
    }

    #[test]
    fn percentile_returns_bucket_upper_bounds() {
        let mut h = HistogramSnapshot::default();
        for v in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 100] {
            h.record(v);
        }
        // Ranks 1..=9 land in bucket_of(3) = 2 → upper bound 3.
        assert_eq!(h.percentile(50.0), 3);
        assert_eq!(h.percentile(90.0), 3);
        // Rank 10 lands in bucket_of(100) = 7 → upper bound 127: the
        // documented ≤2x overestimate from power-of-two bucketing.
        assert_eq!(h.percentile(95.0), 127);
        assert_eq!(h.percentile(99.0), 127);
        assert_eq!(h.percentile(100.0), 127);
    }

    #[test]
    fn percentile_edge_buckets_and_empty() {
        assert_eq!(HistogramSnapshot::default().percentile(50.0), 0);
        let mut zeros = HistogramSnapshot::default();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.percentile(99.0), 0, "bucket 0 bounds at 0");
        let mut top = HistogramSnapshot::default();
        top.record(u64::MAX);
        assert_eq!(top.percentile(50.0), u64::MAX, "bucket 64 bounds at MAX");
        let mut one = HistogramSnapshot::default();
        one.record(1);
        assert_eq!(one.percentile(0.0), 1, "p0 clamps to rank 1");
    }

    #[test]
    fn snapshot_delta_windows_monotone_sources() {
        let mut old = TelemetrySnapshot::new();
        old.add_counter("c", 5);
        old.set_gauge("g", 3);
        let mut h0 = HistogramSnapshot::default();
        h0.record(4);
        old.add_histogram("h", &h0);
        let mut cur = old.clone();
        cur.add_counter("c", 7);
        cur.add_counter("new", 1);
        cur.set_gauge("g", 9);
        let mut h1 = HistogramSnapshot::default();
        h1.record(8);
        cur.add_histogram("h", &h1);
        let delta = cur.delta_since(&old);
        assert_eq!(delta.counter("c"), 7);
        assert_eq!(delta.counter("new"), 1);
        assert!(!delta.counters.contains_key("unchanged"));
        assert_eq!(delta.gauges["g"], 9, "gauges keep the current level");
        assert_eq!(delta.histograms["h"].count, 1);
        assert_eq!(delta.histograms["h"].buckets[bucket_of(8)], 1);
        assert!(cur.delta_since(&cur).counters.is_empty());
    }

    #[test]
    fn display_is_deterministic_and_sorted() {
        let mut s = TelemetrySnapshot::new();
        s.add_counter("b.two", 2);
        s.add_counter("a.one", 1);
        let text = s.to_string();
        assert!(text.find("a.one 1").unwrap() < text.find("b.two 2").unwrap());
    }
}
