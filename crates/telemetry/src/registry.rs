//! The process-wide metrics registry: named atomic handles, lock-free
//! on the record path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::snapshot::{bucket_of, HistogramSnapshot, TelemetrySnapshot, HISTOGRAM_BUCKETS};

/// A monotone event counter. Cloning shares the underlying atomic, so a
/// handle is registered once and bumped from anywhere without touching
/// the registry again.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A level sample (queue depth, high-water mark). Snapshots merge
/// gauges by max, so `set` keeps the last value and `record_max` keeps
/// the high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level to at least `v`.
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A power-of-two-bucketed distribution; `record` is O(1) — one
/// leading-zeros count plus three relaxed adds.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one value.
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Point-in-time contents.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A set of named metrics. Registration is idempotent — asking for the
/// same name twice returns handles over the same underlying atomic — so
/// call sites register at construction time and keep the handle.
///
/// [`Registry::global`] is the process-wide instance the resident
/// service exposes over TCP; simulation hot loops deliberately do *not*
/// use it (they keep plain per-instance counter structs and render into
/// a [`TelemetrySnapshot`] on demand), so per-record attribution stays
/// isolated and the hot path stays atomics-free.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    #[must_use]
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter `name`, registering it at 0 on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge `name`, registering it at 0 on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram `name`, registering it empty on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry lock");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Renders every registered metric into a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock().expect("registry lock");
        let mut snap = TelemetrySnapshot::new();
        for (name, c) in &inner.counters {
            snap.add_counter(name, c.get());
        }
        for (name, g) in &inner.gauges {
            snap.set_gauge(name, g.get());
        }
        for (name, h) in &inner.histograms {
            snap.add_histogram(name, &h.snapshot());
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_underlying_atomic() {
        let reg = Registry::new();
        let a = reg.counter("test.counter");
        let b = reg.counter("test.counter");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot().counter("test.counter"), 4);
    }

    #[test]
    fn gauges_keep_the_high_water_mark() {
        let reg = Registry::new();
        let g = reg.gauge("test.depth");
        g.record_max(9);
        g.record_max(4);
        assert_eq!(g.get(), 9);
        g.set(2);
        assert_eq!(reg.snapshot().gauges["test.depth"], 2);
    }

    #[test]
    fn histograms_snapshot_bucket_counts() {
        let reg = Registry::new();
        let h = reg.histogram("test.lat");
        h.record(1);
        h.record(100);
        let snap = reg.snapshot();
        let hs = &snap.histograms["test.lat"];
        assert_eq!(hs.count, 2);
        assert_eq!(hs.sum, 101);
        assert_eq!(hs.buckets.iter().sum::<u64>(), 2);
    }
}
