//! Bottleneck attribution from a recorded [`SeriesSnapshot`]: which
//! decision cause dominates each phase of the run, when anti-starvation
//! aging sets in, how evenly the channels share the issue load, and
//! which way queue pressure is trending — the questions the aggregate
//! snapshot provably cannot answer because it has no time axis.
//!
//! All analysis is pure arithmetic over the series rows, so the report
//! is exactly as deterministic as the simulation that produced it.

use std::fmt::Write as _;

use crate::series::SeriesSnapshot;

/// Row prefix of the decision-cause vectors the phase analysis reads.
const CAUSE_PREFIX: &str = "dram.decision.";
/// Row name of the aging cause (anti-starvation no-op ticks).
const AGING_ROW: &str = "dram.decision.aging";
/// Occupancy-integral row suffix (`dram.read_q_integral`,
/// `dram.ch02.write_q_integral`, …).
const OCCUPANCY_SUFFIX: &str = "_q_integral";

/// One phase of the run: an epoch range with its decision-cause totals.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// First epoch of the phase (inclusive).
    pub from_epoch: usize,
    /// End of the phase (exclusive).
    pub to_epoch: usize,
    /// The decision cause with the largest count in this phase (last
    /// name segment, e.g. `aging`); empty when no decisions landed.
    pub dominant_cause: String,
    /// The dominant cause's share of the phase's decisions (0.0–1.0).
    pub dominant_share: f64,
    /// Total decisions attributed in this phase.
    pub decisions: u64,
}

/// Direction of the queue-occupancy trend between the first and second
/// half of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trend {
    /// Second-half mean ≥ 110% of the first-half mean.
    Rising,
    /// Within ±10%.
    Flat,
    /// Second-half mean ≤ 90% of the first-half mean.
    Falling,
}

/// Splits the series' epoch range into `phases` contiguous ranges and
/// names the dominant decision cause in each. Trailing phases may be
/// one epoch longer when the range does not divide evenly. Returns an
/// empty vector when the series has no epochs or `phases` is zero.
#[must_use]
pub fn phase_summaries(series: &SeriesSnapshot, phases: usize) -> Vec<PhaseSummary> {
    let epochs = series.epochs();
    if epochs == 0 || phases == 0 {
        return Vec::new();
    }
    let phases = phases.min(epochs);
    let mut out = Vec::with_capacity(phases);
    for p in 0..phases {
        let from_epoch = epochs * p / phases;
        let to_epoch = epochs * (p + 1) / phases;
        let mut best: Option<(&str, u64)> = None;
        let mut decisions = 0u64;
        for (name, row) in &series.rows {
            let Some(cause) = name.strip_prefix(CAUSE_PREFIX) else {
                continue;
            };
            let count: u64 = row
                .iter()
                .skip(from_epoch)
                .take(to_epoch - from_epoch)
                .sum();
            decisions += count;
            if best.is_none_or(|(_, b)| count > b) {
                best = Some((cause, count));
            }
        }
        let (dominant_cause, top) = match best {
            Some((cause, n)) if n > 0 => (cause.to_string(), n),
            _ => (String::new(), 0),
        };
        #[allow(clippy::cast_precision_loss)]
        let dominant_share = if decisions == 0 {
            0.0
        } else {
            top as f64 / decisions as f64
        };
        out.push(PhaseSummary {
            from_epoch,
            to_epoch,
            dominant_cause,
            dominant_share,
            decisions,
        });
    }
    out
}

/// The first epoch in which any aging (anti-starvation) decision cycle
/// executed, or `None` when aging never set in.
#[must_use]
pub fn aging_onset_epoch(series: &SeriesSnapshot) -> Option<usize> {
    series
        .rows
        .get(AGING_ROW)
        .and_then(|row| row.iter().position(|&v| v > 0))
}

/// Per-channel issue imbalance from the `dram.chXX.issues` rows:
/// `(hottest_row, coldest_row, max_total / min_total)`. `None` when
/// fewer than two channel rows exist (unsharded runs have none).
#[must_use]
pub fn channel_imbalance(series: &SeriesSnapshot) -> Option<(String, String, f64)> {
    let mut totals: Vec<(&String, u64)> = series
        .rows
        .iter()
        .filter(|(name, _)| {
            name.starts_with("dram.ch") && name.ends_with(".issues") && !name.contains(".bank")
        })
        .map(|(name, row)| (name, row.iter().sum::<u64>()))
        .collect();
    if totals.len() < 2 {
        return None;
    }
    totals.sort_by_key(|&(_, total)| total);
    let (cold_name, cold) = totals.first().copied()?;
    let (hot_name, hot) = totals.last().copied()?;
    #[allow(clippy::cast_precision_loss)]
    let ratio = hot as f64 / cold.max(1) as f64;
    Some((hot_name.clone(), cold_name.clone(), ratio))
}

/// Queue-occupancy trend: sums every `*_q_integral` row into one
/// per-epoch vector and compares the first-half mean with the
/// second-half mean (±10% band → [`Trend::Flat`]). Returns the trend
/// and both means; `None` when no occupancy rows exist or the series
/// has fewer than two epochs.
#[must_use]
pub fn occupancy_trend(series: &SeriesSnapshot) -> Option<(Trend, f64, f64)> {
    let epochs = series.epochs();
    if epochs < 2 {
        return None;
    }
    let mut summed = vec![0u64; epochs];
    let mut any = false;
    for (name, row) in &series.rows {
        if !name.ends_with(OCCUPANCY_SUFFIX) {
            continue;
        }
        any = true;
        for (s, v) in summed.iter_mut().zip(row.iter()) {
            *s += v;
        }
    }
    if !any {
        return None;
    }
    let mid = epochs / 2;
    #[allow(clippy::cast_precision_loss)]
    let mean = |slice: &[u64]| slice.iter().sum::<u64>() as f64 / slice.len() as f64;
    let first = mean(&summed[..mid]);
    let second = mean(&summed[mid..]);
    let trend = if second >= first * 1.1 {
        Trend::Rising
    } else if second <= first * 0.9 {
        Trend::Falling
    } else {
        Trend::Flat
    };
    Some((trend, first, second))
}

/// Renders the full bottleneck-attribution report as deterministic
/// plain text: per-phase dominant causes, aging onset, channel
/// imbalance, and the occupancy trend.
#[must_use]
pub fn render(series: &SeriesSnapshot, phases: usize) -> String {
    let mut out = String::new();
    let epochs = series.epochs();
    let _ = writeln!(
        out,
        "bottleneck attribution: {epochs} epochs x {} cycles",
        series.epoch_width
    );
    for p in phase_summaries(series, phases) {
        if p.dominant_cause.is_empty() {
            let _ = writeln!(
                out,
                "  phase epochs {:>4}..{:<4} idle (no decisions)",
                p.from_epoch, p.to_epoch
            );
        } else {
            let _ = writeln!(
                out,
                "  phase epochs {:>4}..{:<4} dominant cause {:<12} \
                 ({:>5.1}% of {} decisions)",
                p.from_epoch,
                p.to_epoch,
                p.dominant_cause,
                p.dominant_share * 100.0,
                p.decisions
            );
        }
    }
    match aging_onset_epoch(series) {
        Some(e) => {
            let _ = writeln!(
                out,
                "  aging onset: epoch {e} (cycle {}) — anti-starvation active from there",
                e as u64 * series.epoch_width
            );
        }
        None => {
            let _ = writeln!(out, "  aging onset: never (no request starved)");
        }
    }
    match channel_imbalance(series) {
        Some((hot, cold, ratio)) => {
            let _ = writeln!(
                out,
                "  channel imbalance: {hot} carries {ratio:.2}x the issues of {cold}"
            );
        }
        None => {
            let _ = writeln!(out, "  channel imbalance: n/a (single channel)");
        }
    }
    match occupancy_trend(series) {
        Some((trend, first, second)) => {
            let _ = writeln!(
                out,
                "  queue occupancy: {} (first-half mean {first:.0}, second-half mean {second:.0})",
                match trend {
                    Trend::Rising => "rising",
                    Trend::Flat => "steady",
                    Trend::Falling => "falling",
                }
            );
        }
        None => {
            let _ = writeln!(out, "  queue occupancy: n/a (no occupancy rows)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SeriesSnapshot {
        let mut s = SeriesSnapshot::new(100);
        // Epochs 0-3: issue_miss dominates early, aging takes over late.
        for e in 0..4 {
            s.add("dram.decision.issue_miss", e, 10);
        }
        s.add("dram.decision.aging", 2, 15);
        s.add("dram.decision.aging", 3, 30);
        s.add("dram.ch00.issues", 0, 40);
        s.add("dram.ch01.issues", 0, 10);
        s.add("dram.read_q_integral", 0, 10);
        s.add("dram.read_q_integral", 3, 100);
        s
    }

    #[test]
    fn phases_name_the_dominant_cause() {
        let phases = phase_summaries(&sample(), 2);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].dominant_cause, "issue_miss");
        assert_eq!(phases[0].decisions, 20);
        assert_eq!(phases[1].dominant_cause, "aging");
        assert_eq!(phases[1].decisions, 65);
        assert!((phases[1].dominant_share - 45.0 / 65.0).abs() < 1e-12);
    }

    #[test]
    fn phases_clamp_and_handle_empty() {
        assert!(phase_summaries(&SeriesSnapshot::new(10), 4).is_empty());
        assert!(phase_summaries(&sample(), 0).is_empty());
        // More phases than epochs clamps to one phase per epoch.
        assert_eq!(phase_summaries(&sample(), 99).len(), 4);
    }

    #[test]
    fn aging_onset_is_the_first_nonzero_epoch() {
        assert_eq!(aging_onset_epoch(&sample()), Some(2));
        let mut calm = SeriesSnapshot::new(10);
        calm.add("dram.decision.noop", 0, 5);
        assert_eq!(aging_onset_epoch(&calm), None);
    }

    #[test]
    fn imbalance_reads_channel_rows_only() {
        let (hot, cold, ratio) = channel_imbalance(&sample()).expect("two channels");
        assert_eq!(hot, "dram.ch00.issues");
        assert_eq!(cold, "dram.ch01.issues");
        assert!((ratio - 4.0).abs() < 1e-12);
        // Per-bank rows must not masquerade as channels.
        let mut s = SeriesSnapshot::new(10);
        s.add("dram.ch00.bank03.issues", 0, 5);
        s.add("dram.ch01.bank03.issues", 0, 1);
        assert_eq!(channel_imbalance(&s), None);
    }

    #[test]
    fn occupancy_trend_compares_halves() {
        let (trend, first, second) = occupancy_trend(&sample()).expect("occupancy rows");
        assert_eq!(trend, Trend::Rising);
        assert!(second > first);
        let mut flat = SeriesSnapshot::new(10);
        flat.add("dram.read_q_integral", 0, 50);
        flat.add("dram.read_q_integral", 1, 50);
        assert_eq!(occupancy_trend(&flat).unwrap().0, Trend::Flat);
        assert_eq!(occupancy_trend(&SeriesSnapshot::new(10)), None);
    }

    #[test]
    fn render_mentions_every_section() {
        let text = render(&sample(), 4);
        assert!(text.contains("dominant cause"));
        assert!(text.contains("aging onset: epoch 2"));
        assert!(text.contains("channel imbalance"));
        assert!(text.contains("queue occupancy: rising"));
    }
}
