//! Chrome trace-event JSON exporter: renders a captured [`TraceSink`]
//! as a timeline `chrome://tracing` (or <https://ui.perfetto.dev>)
//! loads directly.
//!
//! One complete (`"ph":"X"`) event per span on `tid = track`, with one
//! metadata event naming each track, all under `pid` 0. Timestamps are
//! simulation cycles reported in the exporter's microsecond field — the
//! viewer treats them as unitless ticks, which is exactly what a
//! cycle-level timeline wants.

use std::collections::BTreeMap;

use crate::series::SeriesSnapshot;
use crate::sink::TraceSink;

/// Minimal JSON string escape (names are static identifiers, but the
/// exporter must never emit malformed JSON regardless).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders `sink`'s retained spans as a complete trace-event JSON
/// document. `track_names` labels timeline rows (`(track, label)`);
/// tracks without a label render under their number.
#[must_use]
pub fn render(sink: &TraceSink, track_names: &[(u32, &str)]) -> String {
    render_inner(sink, track_names, None)
}

/// As [`render`], additionally appending one **counter event**
/// (`"ph":"C"`) per series counter group per epoch, so cause mixes and
/// bank/channel heatmaps render as stacked area charts on the same
/// timeline. Rows are grouped by everything before their last `.`
/// segment (`dram.decision.issue_hit` and `dram.decision.noop` become
/// series `issue_hit`/`noop` of one `dram.decision` counter); the event
/// timestamp is the epoch's first cycle.
#[must_use]
pub fn render_with_counters(
    sink: &TraceSink,
    track_names: &[(u32, &str)],
    series: &SeriesSnapshot,
) -> String {
    render_inner(sink, track_names, Some(series))
}

fn render_inner(
    sink: &TraceSink,
    track_names: &[(u32, &str)],
    series: Option<&SeriesSnapshot>,
) -> String {
    let mut out = String::with_capacity(64 + sink.len() * 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (track, label) in track_names {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{track},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\""
        ));
        escape(label, &mut out);
        out.push_str("\"}}");
    }
    for span in sink.spans() {
        if !first {
            out.push(',');
        }
        first = false;
        // Inclusive span [start, end] -> duration end - start + 1, so a
        // one-cycle span is visible instead of zero-width.
        let dur = span.end - span.start + 1;
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{dur},\"name\":\"",
            span.track, span.start
        ));
        escape(span.name, &mut out);
        out.push_str("\"}");
    }
    if let Some(series) = series {
        // Group rows by the name up to the last dot; the last segment
        // becomes the per-counter series key.
        let mut groups: BTreeMap<&str, Vec<(&str, &Vec<u64>)>> = BTreeMap::new();
        for (name, row) in &series.rows {
            let (counter, key) = name.rsplit_once('.').unwrap_or(("series", name.as_str()));
            groups.entry(counter).or_default().push((key, row));
        }
        let epochs = series.epochs();
        for (counter, members) in &groups {
            for e in 0..epochs {
                if !first {
                    out.push(',');
                }
                first = false;
                let ts = e as u64 * series.epoch_width;
                out.push_str(&format!("{{\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":\""));
                escape(counter, &mut out);
                out.push_str("\",\"args\":{");
                for (i, (key, row)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape(key, &mut out);
                    out.push_str(&format!("\":{}", row.get(e).copied().unwrap_or(0)));
                }
                out.push_str("}}");
            }
        }
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_metadata_and_complete_events() {
        let mut sink = TraceSink::new(8);
        sink.record(1, "advance", 10, 19);
        let json = render(&sink, &[(1, "shard 1")]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"shard 1\""));
        assert!(json.contains(
            "\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":10,\"dur\":10,\"name\":\"advance\""
        ));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn escapes_hostile_labels() {
        let mut sink = TraceSink::new(1);
        sink.record(0, "a", 0, 0);
        let json = render(&sink, &[(0, "x\"y\\z")]);
        assert!(json.contains("x\\\"y\\\\z"));
    }

    /// Every escapable class in one malformed label — quotes,
    /// backslashes, and raw control characters — must round-trip into
    /// the escaped forms a JSON parser accepts (the python validator in
    /// CI re-parses this exporter's output).
    #[test]
    fn escapes_malformed_names_round_trip() {
        let mut sink = TraceSink::new(1);
        sink.record(0, "tab\there", 3, 3);
        let hostile = "q\"b\\c\nd\re\u{1}f";
        let json = render(&sink, &[(0, hostile)]);
        assert!(json.contains("q\\\"b\\\\c\\u000ad\\u000de\\u0001f"));
        assert!(json.contains("tab\\u0009here"));
        // No raw control characters survive into the document.
        assert!(json.chars().all(|c| c as u32 >= 0x20 || c == '\n'));
        // The document stays structurally complete.
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn counter_events_group_rows_by_prefix() {
        use crate::series::SeriesSnapshot;
        let sink = TraceSink::new(1);
        let mut series = SeriesSnapshot::new(100);
        series.add("dram.decision.issue_hit", 0, 4);
        series.add("dram.decision.noop", 1, 2);
        series.add("multicore.wakes_total", 1, 7);
        let json = render_with_counters(&sink, &[], &series);
        // One C event per group per epoch, timestamped at epoch starts.
        assert!(json.contains(
            "{\"ph\":\"C\",\"pid\":0,\"ts\":0,\"name\":\"dram.decision\",\
             \"args\":{\"issue_hit\":4,\"noop\":0}"
        ));
        assert!(json.contains(
            "{\"ph\":\"C\",\"pid\":0,\"ts\":100,\"name\":\"dram.decision\",\
             \"args\":{\"issue_hit\":0,\"noop\":2}"
        ));
        assert!(json.contains(
            "{\"ph\":\"C\",\"pid\":0,\"ts\":100,\"name\":\"multicore\",\
             \"args\":{\"wakes_total\":7}"
        ));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn plain_render_matches_counterless_path() {
        let mut sink = TraceSink::new(2);
        sink.record(0, "tick", 1, 4);
        let series = crate::series::SeriesSnapshot::new(10);
        assert_eq!(
            render(&sink, &[(0, "t")]),
            render_with_counters(&sink, &[(0, "t")], &series),
            "an empty series appends no events"
        );
    }
}
