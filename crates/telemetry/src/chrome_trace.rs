//! Chrome trace-event JSON exporter: renders a captured [`TraceSink`]
//! as a timeline `chrome://tracing` (or <https://ui.perfetto.dev>)
//! loads directly.
//!
//! One complete (`"ph":"X"`) event per span on `tid = track`, with one
//! metadata event naming each track, all under `pid` 0. Timestamps are
//! simulation cycles reported in the exporter's microsecond field — the
//! viewer treats them as unitless ticks, which is exactly what a
//! cycle-level timeline wants.

use crate::sink::TraceSink;

/// Minimal JSON string escape (names are static identifiers, but the
/// exporter must never emit malformed JSON regardless).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders `sink`'s retained spans as a complete trace-event JSON
/// document. `track_names` labels timeline rows (`(track, label)`);
/// tracks without a label render under their number.
#[must_use]
pub fn render(sink: &TraceSink, track_names: &[(u32, &str)]) -> String {
    let mut out = String::with_capacity(64 + sink.len() * 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (track, label) in track_names {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{track},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\""
        ));
        escape(label, &mut out);
        out.push_str("\"}}");
    }
    for span in sink.spans() {
        if !first {
            out.push(',');
        }
        first = false;
        // Inclusive span [start, end] -> duration end - start + 1, so a
        // one-cycle span is visible instead of zero-width.
        let dur = span.end - span.start + 1;
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{dur},\"name\":\"",
            span.track, span.start
        ));
        escape(span.name, &mut out);
        out.push_str("\"}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_metadata_and_complete_events() {
        let mut sink = TraceSink::new(8);
        sink.record(1, "advance", 10, 19);
        let json = render(&sink, &[(1, "shard 1")]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"shard 1\""));
        assert!(json.contains(
            "\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":10,\"dur\":10,\"name\":\"advance\""
        ));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn escapes_hostile_labels() {
        let mut sink = TraceSink::new(1);
        sink.record(0, "a", 0, 0);
        let json = render(&sink, &[(0, "x\"y\\z")]);
        assert!(json.contains("x\\\"y\\\\z"));
    }
}
