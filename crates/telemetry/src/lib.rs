//! Cross-layer telemetry for the SecDDR reproduction.
//!
//! Three pieces, used together by every layer of the stack:
//!
//! * a [`Registry`] of process-cheap [`Counter`]/[`Gauge`]/[`Histogram`]
//!   handles registered under hierarchical dotted names
//!   (`dram.decision.issue_hit`, `multicore.wake.completion`,
//!   `service.job.queue_wait_us`) — handles are lock-free on the record
//!   path (relaxed atomics), the registry lock is touched only at
//!   registration and snapshot time;
//! * a deterministic, mergeable [`TelemetrySnapshot`] — the common
//!   rendering target for both registry metrics and the plain per-instance
//!   counter structs the hot simulation layers keep (those stay plain
//!   `u64`s owned by the simulator so instrumentation is provably
//!   non-perturbing and per-run isolated; see `dram_sim`'s
//!   `ControllerTelemetry` and `secddr_multicore`'s `WakeReasons`);
//! * an opt-in [`TraceSink`] ring buffer of timestamped [`Span`]s plus
//!   the [`chrome_trace`] exporter that renders a captured buffer as a
//!   `chrome://tracing`-loadable timeline (one track per
//!   core/shard/worker);
//! * a sim-time windowed [`SeriesSnapshot`] (fixed-width epochs closed
//!   on clock advance via [`EpochRoller`], no wall-clock anywhere) whose
//!   per-epoch row sums reconcile exactly to the aggregate snapshot,
//!   with a CSV exporter, `"ph":"C"` counter events in the
//!   [`chrome_trace`] document, and the [`report`] module's
//!   bottleneck-attribution analysis on top.
//!
//! # Naming scheme
//!
//! `layer.subject.detail`, all lowercase, `_` within a segment:
//! `dram.decision.issue_hit`, `multicore.wake.timer`,
//! `multicore.core.steps`, `workloads.trace_cache.memory_hits`,
//! `service.job.submitted`, `service.cell.run_us`. Merging snapshots
//! sums counters and histogram buckets and takes the max of gauges, so
//! `TelemetrySnapshot::merge` is associative and commutative (pinned by
//! `tests/telemetry_properties.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome_trace;
mod registry;
pub mod report;
mod series;
mod sink;
mod snapshot;

pub use registry::{Counter, Gauge, Histogram, Registry};
pub use series::{EpochRoller, SeriesSnapshot};
pub use sink::{Span, TraceSink};
pub use snapshot::{HistogramSnapshot, TelemetrySnapshot, HISTOGRAM_BUCKETS};
