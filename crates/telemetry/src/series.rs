//! Sim-time windowed series: per-epoch vectors of the same counters the
//! aggregate [`TelemetrySnapshot`] reports, so attribution becomes
//! *time-resolved* — when aging sets in, which channel runs hot, whether
//! queue pressure is a phase or a steady state.
//!
//! An **epoch** is a fixed window of simulation cycles
//! (`[e * width, (e + 1) * width)` for epoch index `e`). Recorders in
//! the hot layers keep plain cumulative `u64`s and close epochs lazily
//! on clock advance via [`EpochRoller`]: the delta accumulated since the
//! last close is credited to the epoch that was open when it
//! accumulated, and spans skipped wholesale across a window boundary
//! (`tick_until` / `advance_to` jumps) are credited to the window they
//! *land* in — deterministic, no wall-clock anywhere.
//!
//! Rows use the aggregate counter names where one exists
//! (`dram.decision.issue_hit`, `multicore.wake.timer`, …), which is what
//! makes [`SeriesSnapshot::reconciles_with`] exact: summing a named row
//! over every epoch must reproduce the aggregate counter bit-for-bit.
//! Heatmap rows extend the scheme with a position segment:
//! `dram.bank07.issues`, `dram.ch02.bank07.issues`,
//! `multicore.core03.retired`.

use std::collections::BTreeMap;

use crate::snapshot::TelemetrySnapshot;

/// A mergeable per-epoch series: dense `Vec<u64>` rows under dotted
/// names, all sharing one epoch width (in simulation cycles of the
/// recording layer's clock domain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Simulation cycles per epoch. Epoch `e` covers
    /// `[e * epoch_width, (e + 1) * epoch_width)`.
    pub epoch_width: u64,
    /// Dotted row name → per-epoch values. Rows are zero-extended on
    /// write, so lengths may differ until [`Self::epochs`]-aware
    /// consumers pad; a missing tail reads as zero.
    pub rows: BTreeMap<String, Vec<u64>>,
}

impl SeriesSnapshot {
    /// An empty series with the given epoch width.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_width` is zero (epochs would never close).
    #[must_use]
    pub fn new(epoch_width: u64) -> Self {
        assert!(epoch_width > 0, "epoch width must be nonzero");
        Self {
            epoch_width,
            rows: BTreeMap::new(),
        }
    }

    /// Number of epochs covered: the longest row's length.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.rows.values().map(Vec::len).max().unwrap_or(0)
    }

    /// True when no row holds any value.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds `value` into `row[epoch]`, zero-extending the row.
    pub fn add(&mut self, name: &str, epoch: u64, value: u64) {
        if value == 0 {
            return;
        }
        let row = self.rows.entry(name.to_string()).or_default();
        let idx = usize::try_from(epoch).expect("epoch index fits usize");
        if row.len() <= idx {
            row.resize(idx + 1, 0);
        }
        row[idx] += value;
    }

    /// The value at `row[epoch]` (zero when the row or tail is absent).
    #[must_use]
    pub fn value(&self, name: &str, epoch: usize) -> u64 {
        self.rows
            .get(name)
            .and_then(|r| r.get(epoch))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of one row over every epoch (zero when absent).
    #[must_use]
    pub fn row_total(&self, name: &str) -> u64 {
        self.rows.get(name).map_or(0, |r| r.iter().sum())
    }

    /// Accumulates `other` into `self`: rows sum elementwise
    /// (zero-extended), new rows are inserted. Associative and
    /// commutative, so shard/core/layer series fold in any order.
    ///
    /// # Panics
    ///
    /// Panics when the epoch widths differ — epochs from different
    /// widths do not line up and summing them would be meaningless.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.epoch_width, other.epoch_width,
            "cannot merge series with different epoch widths"
        );
        for (name, row) in &other.rows {
            let mine = self.rows.entry(name.clone()).or_default();
            if mine.len() < row.len() {
                mine.resize(row.len(), 0);
            }
            for (m, v) in mine.iter_mut().zip(row.iter()) {
                *m += v;
            }
        }
    }

    /// Exact reconciliation against the aggregate snapshot: every series
    /// row whose name is also an aggregate counter must sum over its
    /// epochs to that counter's value, and at least one row must match a
    /// counter (so an empty intersection cannot pass vacuously).
    #[must_use]
    pub fn reconciles_with(&self, aggregate: &TelemetrySnapshot) -> bool {
        let mut matched = false;
        for (name, row) in &self.rows {
            let total = aggregate.counter(name);
            if total == 0 && !aggregate.has_counter(name) {
                continue; // heatmap row with no aggregate counterpart
            }
            matched = true;
            if row.iter().sum::<u64>() != total {
                return false;
            }
        }
        matched
    }

    /// Renames rows through `f`, merging rows that map to the same name.
    /// Used by the channel layer to scope per-shard heatmap rows
    /// (`dram.bank03.issues` → `dram.ch01.bank03.issues`) while leaving
    /// policy rows shared so they sum across shards on merge.
    #[must_use]
    pub fn map_names(&self, mut f: impl FnMut(&str) -> String) -> Self {
        let mut out = Self::new(self.epoch_width);
        for (name, row) in &self.rows {
            let renamed = f(name);
            let dst = out.rows.entry(renamed).or_default();
            if dst.len() < row.len() {
                dst.resize(row.len(), 0);
            }
            for (d, v) in dst.iter_mut().zip(row.iter()) {
                *d += v;
            }
        }
        out
    }

    /// Renders the series as CSV in wide form: a header
    /// `name,e0,e1,…` then one line per row, every row padded to the
    /// full epoch count. Deterministic (rows in name order).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let epochs = self.epochs();
        let mut out = String::from("name");
        for e in 0..epochs {
            out.push_str(&format!(",e{e}"));
        }
        out.push('\n');
        for (name, row) in &self.rows {
            out.push_str(name);
            for e in 0..epochs {
                out.push_str(&format!(",{}", row.get(e).copied().unwrap_or(0)));
            }
            out.push('\n');
        }
        out
    }
}

/// Epoch bookkeeping shared by every layer recorder: which epoch is
/// open, and when a clock advance crosses a boundary. The owning
/// recorder keeps its own cumulative counters and base snapshots; this
/// type only decides *when* to close and *which* epoch receives the
/// accumulated delta.
///
/// Contract: call [`Self::close_epoch`] (via the owner's roll) *before*
/// recording anything at the new `now`, so every recorded increment
/// lands in the epoch containing its own timestamp. A jump across
/// several windows credits the pre-jump accumulation to the epoch that
/// was open and leaves the skipped interior windows zero — the span
/// being skipped is then recorded after the roll, crediting it to the
/// window it lands in.
#[derive(Debug, Clone)]
pub struct EpochRoller {
    width: u64,
    open: u64,
}

impl EpochRoller {
    /// A roller with epoch 0 open.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "epoch width must be nonzero");
        Self { width, open: 0 }
    }

    /// Cycles per epoch.
    #[must_use]
    pub fn width(&self) -> u64 {
        self.width
    }

    /// The epoch index currently accumulating.
    #[must_use]
    pub fn open_epoch(&self) -> u64 {
        self.open
    }

    /// If `now` has left the open epoch, returns the index of the epoch
    /// to close (the previously open one) and opens `now`'s epoch. The
    /// caller flushes its accumulated deltas into the returned index.
    /// Returns `None` while `now` is still inside the open window.
    pub fn close_epoch(&mut self, now: u64) -> Option<u64> {
        let epoch = now / self.width;
        if epoch == self.open {
            return None;
        }
        let closing = self.open;
        self.open = epoch;
        Some(closing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_zero_extends_and_sums() {
        let mut s = SeriesSnapshot::new(100);
        s.add("a.b", 3, 7);
        s.add("a.b", 1, 2);
        s.add("a.b", 3, 1);
        assert_eq!(s.rows["a.b"], vec![0, 2, 0, 8]);
        assert_eq!(s.epochs(), 4);
        assert_eq!(s.row_total("a.b"), 10);
        assert_eq!(s.value("a.b", 0), 0);
        assert_eq!(s.value("missing", 9), 0);
    }

    #[test]
    fn merge_is_elementwise_and_commutative() {
        let mut a = SeriesSnapshot::new(10);
        a.add("x", 0, 1);
        a.add("x", 2, 3);
        let mut b = SeriesSnapshot::new(10);
        b.add("x", 1, 5);
        b.add("y", 0, 2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.rows["x"], vec![1, 5, 3]);
        assert_eq!(ab.rows["y"], vec![2]);
    }

    #[test]
    #[should_panic(expected = "different epoch widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = SeriesSnapshot::new(10);
        a.merge(&SeriesSnapshot::new(20));
    }

    #[test]
    fn reconciliation_is_exact_and_never_vacuous() {
        let mut agg = TelemetrySnapshot::new();
        agg.add_counter("dram.decision.noop", 5);
        let mut s = SeriesSnapshot::new(10);
        s.add("dram.decision.noop", 0, 2);
        s.add("dram.decision.noop", 4, 3);
        s.add("dram.bank00.issues", 1, 9); // no aggregate counterpart
        assert!(s.reconciles_with(&agg));
        s.add("dram.decision.noop", 5, 1);
        assert!(!s.reconciles_with(&agg), "sum now exceeds the aggregate");
        let empty = SeriesSnapshot::new(10);
        assert!(
            !empty.reconciles_with(&agg),
            "no matching row must not pass vacuously"
        );
    }

    #[test]
    fn map_names_merges_collisions() {
        let mut s = SeriesSnapshot::new(10);
        s.add("a.one", 0, 1);
        s.add("a.two", 0, 2);
        let folded = s.map_names(|_| "a".to_string());
        assert_eq!(folded.rows["a"], vec![3]);
    }

    #[test]
    fn csv_is_padded_and_deterministic() {
        let mut s = SeriesSnapshot::new(10);
        s.add("b", 2, 4);
        s.add("a", 0, 1);
        assert_eq!(s.to_csv(), "name,e0,e1,e2\na,1,0,0\nb,0,0,4\n");
    }

    #[test]
    fn roller_closes_once_per_boundary_and_skips_jumps() {
        let mut r = EpochRoller::new(100);
        assert_eq!(r.close_epoch(0), None);
        assert_eq!(r.close_epoch(99), None);
        assert_eq!(r.close_epoch(100), Some(0));
        assert_eq!(r.close_epoch(150), None);
        // A jump across several windows closes only the open epoch; the
        // interior windows were provably empty and stay zero.
        assert_eq!(r.close_epoch(750), Some(1));
        assert_eq!(r.open_epoch(), 7);
    }
}
