//! The opt-in span ring buffer behind the timeline exporter.

use std::collections::VecDeque;

/// One timestamped span: `[start, end]` in simulation cycles on a
/// numbered track (core, shard, or worker index). Names are `&'static`
/// so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Track (timeline row) the span belongs to.
    pub track: u32,
    /// What the span covers (e.g. `"advance"`, `"cell"`).
    pub name: &'static str,
    /// First cycle covered.
    pub start: u64,
    /// Cycle the span ended on (inclusive; `end >= start`).
    pub end: u64,
}

/// A bounded ring buffer of [`Span`]s: recording past capacity drops
/// the *oldest* span, so a long run keeps the most recent window — the
/// part a timeline investigation actually looks at. Entirely opt-in:
/// the hot layers hold `Option<TraceSink>` and skip recording when it
/// is `None`, and recording never affects simulation state (pinned by
/// `tests/telemetry_differential.rs`).
#[derive(Debug)]
pub struct TraceSink {
    spans: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
}

impl TraceSink {
    /// A sink holding at most `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity sink records nothing");
        Self {
            spans: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Records one span, evicting the oldest when full.
    pub fn record(&mut self, track: u32, name: &'static str, start: u64, end: u64) {
        debug_assert!(end >= start, "span ends before it starts");
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(Span {
            track,
            name,
            start,
            end,
        });
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Retained span count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The span budget the sink was created with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Surfaces the ring's retention accounting in a snapshot
    /// (`telemetry.spans_retained` / `telemetry.spans_dropped`), so a
    /// silently truncated timeline shows up wherever snapshots are
    /// inspected instead of only in the sink's own accessors.
    pub fn render_into(&self, snap: &mut crate::TelemetrySnapshot) {
        snap.add_counter("telemetry.spans_retained", self.spans.len() as u64);
        snap.add_counter("telemetry.spans_dropped", self.dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_window() {
        let mut sink = TraceSink::new(2);
        sink.record(0, "a", 0, 1);
        sink.record(0, "b", 2, 3);
        sink.record(0, "c", 4, 5);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 1);
        let names: Vec<_> = sink.spans().map(|s| s.name).collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn eviction_is_surfaced_in_snapshots() {
        let mut sink = TraceSink::new(1);
        sink.record(0, "a", 0, 1);
        sink.record(0, "b", 2, 3);
        let mut snap = crate::TelemetrySnapshot::new();
        sink.render_into(&mut snap);
        assert_eq!(snap.counter("telemetry.spans_retained"), 1);
        assert_eq!(snap.counter("telemetry.spans_dropped"), 1);
    }
}
