//! Minimal offline stand-in for the parts of `proptest` this workspace's
//! property tests use.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim as a path dependency under the `proptest`
//! name. It implements randomized case generation without shrinking:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`);
//! * [`strategy::Strategy`] with `prop_map`, tuple and boxed strategies;
//! * `any::<T>()` for integers, `bool`, and `[u8; N]`;
//! * integer range strategies (`0u64..10`, `1u8..=255`, `2u64..`);
//! * [`collection::vec`] and the [`prop_oneof!`] union;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Failing cases panic with the assertion message (no shrinking); seeds
//! are derived from the test name so runs are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Re-exported for the `proptest!` macro expansion: consuming crates need a
// stable path to the generator without depending on `rand` themselves.
#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore};
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// Generates values of an associated type from a random stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy behind a trait object.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            let mut out = [0u8; N];
            for chunk in out.chunks_mut(8) {
                let bytes = rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
            out
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// [`Strategy`] that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    if end < <$ty>::MAX {
                        rng.gen_range(start..end + 1)
                    } else if start > <$ty>::MIN {
                        // Shift down to avoid overflowing the exclusive end.
                        rng.gen_range(start - 1..end) + 1
                    } else {
                        // Full domain.
                        #[allow(clippy::cast_possible_truncation)]
                        { rng.next_u64() as $ty }
                    }
                }
            }
            impl Strategy for RangeFrom<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    (self.start..=<$ty>::MAX).generate(rng)
                }
            }
        )*};
    }
    impl_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Equal-weight union over boxed strategies (built by [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case execution support used by the [`crate::proptest!`] macro.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Runner configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic per-test generator (FNV-1a over the test name).
    pub fn rng_for(test_name: &str) -> SmallRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        SmallRng::seed_from_u64(hash)
    }
}

pub mod prelude {
    //! The imports property tests conventionally glob in.

    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Equal-weight choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body runs
/// for `cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                // One closure per case so `prop_assume!` can skip via return.
                let case = |rng: &mut $crate::__rand::rngs::SmallRng| {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&$strategy, rng),)+
                    );
                    $body
                };
                case(&mut rng);
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::Config::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 1u8..=255, c in 0usize..5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b >= 1);
            prop_assert!(c < 5);
        }

        #[test]
        fn assume_skips(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn vec_and_oneof_compose(v in collection::vec(prop_oneof![0u8..4, 10u8..14], 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 4 || (10..14).contains(&x)));
        }

        #[test]
        fn tuples_and_map(pair in (0u16..50, any::<bool>()).prop_map(|(n, neg)| if neg { 0 } else { n })) {
            prop_assert!(pair < 50);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<[u8; 16]>()) {
            prop_assert_eq!(x.len(), 16);
        }
    }
}
