//! Minimal offline stand-in for the parts of `rand` 0.8 this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim as a path dependency under the `rand` name.
//! It provides exactly the API surface the simulators call:
//!
//! * [`rngs::SmallRng`] — a xoshiro256++ generator (the same algorithm the
//!   real crate's `SmallRng` uses on 64-bit targets);
//! * [`SeedableRng::seed_from_u64`] — splitmix64 seed expansion;
//! * [`Rng::gen_bool`] / [`Rng::gen_range`] — Bernoulli draws and
//!   unbiased integer ranges (Lemire rejection sampling).
//!
//! The streams are deterministic per seed, which is all the workload
//! generators and tests rely on; bit-compatibility with the real crate is
//! not guaranteed and not needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range` (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Unbiased draw from `[0, span)` via Lemire multiply-shift rejection.
fn below<G: RngCore + ?Sized>(rng: &mut G, span: u64) -> u64 {
    assert!(span > 0, "cannot sample an empty range");
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $ty {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(5u64..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        let u: u32 = rng.gen_range(0u32..1);
        assert_eq!(u, 0);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
