//! Cycle-level DDR4 main-memory timing simulator.
//!
//! This crate is the reproduction's substitute for Ramulator [Kim et al.,
//! CAL'16], which the SecDDR paper uses as its memory model. It simulates a
//! DDR4 channel at command granularity: banks move through
//! activate/read/write/precharge state machines under the full JEDEC-style
//! timing constraint set (tRCD, tRP, tRAS, tCCD_S/L, tWTR_S/L, tRRD_S/L,
//! tFAW, tRTP, tWR, tRFC/tREFI), an FR-FCFS controller arbitrates 64-entry
//! read/write queues with watermark-based write draining, and the shared
//! data bus is modelled with burst occupancy and turnaround bubbles.
//!
//! Two knobs exist specifically for the paper's experiments:
//!
//! * **Write burst extension** — SecDDR's encrypted eWCRC needs burst
//!   length 10 instead of 8 on DDR4 writes
//!   ([`DramConfig::write_burst_cycles`] 4 → 5).
//! * **Frequency derating** — the "realistic" InvisiMem configuration runs
//!   the channel at 1200 MHz instead of 1600 MHz because of its centralized
//!   buffer ([`DramConfig::freq_mhz`]).
//!
//! # Example
//!
//! ```
//! use dram_sim::{DramConfig, DramSystem, MemRequest, ReqKind};
//!
//! let mut dram = DramSystem::new(DramConfig::ddr4_3200());
//! dram.enqueue(MemRequest::new(1, ReqKind::Read, 0x4000, 0)).unwrap();
//! let mut done = Vec::new();
//! for _ in 0..200 {
//!     done.extend(dram.tick());
//! }
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].id, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod bank;
mod config;
pub mod controller;
mod request;
mod series;
mod stats;
mod telemetry;

pub use address::{AddressMapping, DecodedAddr};
pub use config::DramConfig;
pub use controller::{DramSystem, EnqueueError, SchedAction, SchedulerMode};
pub use request::{Completion, MemRequest, ReqKind};
pub use sim_kernel::Advance;
pub use stats::{DramStats, OCCUPANCY_BUCKETS};
pub use telemetry::{ControllerTelemetry, DecisionCauses};
