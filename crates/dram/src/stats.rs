//! Controller statistics.

/// Number of queue-occupancy histogram buckets: lengths `0..=63` get their
/// own bucket and the last bucket collects everything at or beyond 64 (the
/// default queue capacity).
pub const OCCUPANCY_BUCKETS: usize = 65;

/// Aggregate statistics for one simulated channel.
///
/// Every field participates in the derived `PartialEq` — the identity
/// comparisons the differential suites rely on. Advance-policy
/// accounting (executed vs covered busy cycles), which *differs by
/// design* between bit-identical runs, lives outside this struct in
/// [`ControllerTelemetry`](crate::ControllerTelemetry) precisely so no
/// field here needs an equality escape hatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramStats {
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Reads served by store-to-load forwarding from the write queue.
    pub forwarded_reads: u64,
    /// Column commands that hit an already-open row.
    pub row_hits: u64,
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// REF commands issued.
    pub refreshes: u64,
    /// Memory cycles the data bus carried a burst.
    pub data_bus_busy_cycles: u64,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Sum of read latencies (enqueue to last beat), for averaging.
    pub read_latency_sum: u64,
    /// Sum of read queueing delays (enqueue to first command).
    pub read_queue_delay_sum: u64,
    /// Cycles spent at each read-queue occupancy (`[len]`, clamped into
    /// the last bucket). Fed from the controller's incrementally
    /// maintained length counters — never by re-walking the queues — and
    /// credited for skipped cycles too, so both advance policies produce
    /// identical histograms.
    pub read_q_occupancy: [u64; OCCUPANCY_BUCKETS],
    /// Cycles spent at each write-queue occupancy (same convention).
    pub write_q_occupancy: [u64; OCCUPANCY_BUCKETS],
}

impl Default for DramStats {
    fn default() -> Self {
        Self {
            reads: 0,
            writes: 0,
            forwarded_reads: 0,
            row_hits: 0,
            activates: 0,
            precharges: 0,
            refreshes: 0,
            data_bus_busy_cycles: 0,
            cycles: 0,
            read_latency_sum: 0,
            read_queue_delay_sum: 0,
            read_q_occupancy: [0; OCCUPANCY_BUCKETS],
            write_q_occupancy: [0; OCCUPANCY_BUCKETS],
        }
    }
}

impl DramStats {
    /// Mean read latency in memory cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads as f64
        }
    }

    /// Row-buffer hit rate over all column commands.
    pub fn row_hit_rate(&self) -> f64 {
        let cols = self.reads - self.forwarded_reads + self.writes;
        if cols == 0 {
            0.0
        } else {
            self.row_hits as f64 / cols as f64
        }
    }

    /// Fraction of cycles the data bus was busy.
    pub fn bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.data_bus_busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Accumulates `other` into `self`: every counter, latency sum, and
    /// occupancy-histogram bucket sums, so per-channel statistics from a
    /// sharded memory subsystem aggregate into one view. The rate
    /// helpers on a merged value are aggregates over all channels (e.g.
    /// [`Self::bus_utilization`] becomes the mean utilization weighted
    /// by each channel's simulated cycles).
    pub fn merge(&mut self, other: &Self) {
        // Exhaustive destructuring (no `..`): adding a field to
        // `DramStats` without deciding how it merges is a compile error,
        // not a silently-dropped aggregate.
        let Self {
            reads,
            writes,
            forwarded_reads,
            row_hits,
            activates,
            precharges,
            refreshes,
            data_bus_busy_cycles,
            cycles,
            read_latency_sum,
            read_queue_delay_sum,
            read_q_occupancy,
            write_q_occupancy,
        } = other;
        self.reads += reads;
        self.writes += writes;
        self.forwarded_reads += forwarded_reads;
        self.row_hits += row_hits;
        self.activates += activates;
        self.precharges += precharges;
        self.refreshes += refreshes;
        self.data_bus_busy_cycles += data_bus_busy_cycles;
        self.cycles += cycles;
        self.read_latency_sum += read_latency_sum;
        self.read_queue_delay_sum += read_queue_delay_sum;
        for (a, b) in self.read_q_occupancy.iter_mut().zip(read_q_occupancy) {
            *a += b;
        }
        for (a, b) in self.write_q_occupancy.iter_mut().zip(write_q_occupancy) {
            *a += b;
        }
    }

    /// Credits `cycles` cycles of residence at the given queue lengths.
    pub fn record_occupancy(&mut self, read_len: usize, write_len: usize, cycles: u64) {
        self.read_q_occupancy[read_len.min(OCCUPANCY_BUCKETS - 1)] += cycles;
        self.write_q_occupancy[write_len.min(OCCUPANCY_BUCKETS - 1)] += cycles;
    }

    /// Mean read-queue occupancy over all simulated cycles (occupancies at
    /// or beyond the last bucket count at the bucket's floor).
    pub fn mean_read_q_occupancy(&self) -> f64 {
        Self::mean_occupancy(&self.read_q_occupancy)
    }

    /// Mean write-queue occupancy over all simulated cycles.
    pub fn mean_write_q_occupancy(&self) -> f64 {
        Self::mean_occupancy(&self.write_q_occupancy)
    }

    fn mean_occupancy(hist: &[u64; OCCUPANCY_BUCKETS]) -> f64 {
        let samples: u64 = hist.iter().sum();
        if samples == 0 {
            return 0.0;
        }
        let weighted: u64 = hist.iter().enumerate().map(|(len, n)| len as u64 * n).sum();
        weighted as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_zero_counts() {
        let s = DramStats::default();
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.bus_utilization(), 0.0);
        assert_eq!(s.mean_read_q_occupancy(), 0.0);
    }

    #[test]
    fn averages_compute() {
        let s = DramStats {
            reads: 4,
            read_latency_sum: 200,
            row_hits: 3,
            writes: 2,
            cycles: 100,
            data_bus_busy_cycles: 25,
            ..Default::default()
        };
        assert_eq!(s.avg_read_latency(), 50.0);
        assert_eq!(s.row_hit_rate(), 0.5);
        assert_eq!(s.bus_utilization(), 0.25);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = DramStats {
            reads: 4,
            writes: 2,
            row_hits: 3,
            cycles: 100,
            read_latency_sum: 200,
            ..Default::default()
        };
        a.record_occupancy(1, 2, 10);
        let mut b = DramStats {
            reads: 6,
            writes: 1,
            refreshes: 5,
            cycles: 50,
            read_latency_sum: 100,
            ..Default::default()
        };
        b.record_occupancy(1, 3, 7);
        b.record_occupancy(64, 0, 2);
        a.merge(&b);
        assert_eq!(a.reads, 10);
        assert_eq!(a.writes, 3);
        assert_eq!(a.row_hits, 3);
        assert_eq!(a.refreshes, 5);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.read_latency_sum, 300);
        assert_eq!(a.read_q_occupancy[1], 17);
        assert_eq!(a.read_q_occupancy[OCCUPANCY_BUCKETS - 1], 2);
        assert_eq!(a.write_q_occupancy[2], 10);
        assert_eq!(a.write_q_occupancy[3], 7);
        // Weighted aggregate: (200 + 100) / (4 + 6).
        assert!((a.avg_read_latency() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn equality_covers_every_field() {
        // With the advance counters moved out to `ControllerTelemetry`,
        // `DramStats` equality is fully derived again: any counter
        // difference breaks identity.
        let a = DramStats::default();
        let mut b = DramStats::default();
        assert_eq!(a, b);
        b.refreshes = 1;
        assert_ne!(a, b);
    }

    #[test]
    fn occupancy_histogram_accumulates_and_clamps() {
        let mut s = DramStats::default();
        s.record_occupancy(0, 2, 10);
        s.record_occupancy(3, 2, 5);
        s.record_occupancy(1_000, 0, 1);
        assert_eq!(s.read_q_occupancy[0], 10);
        assert_eq!(s.read_q_occupancy[3], 5);
        assert_eq!(s.read_q_occupancy[OCCUPANCY_BUCKETS - 1], 1);
        assert_eq!(s.write_q_occupancy[2], 15);
        let mean = s.mean_read_q_occupancy();
        let expected = (3.0 * 5.0 + 64.0) / 16.0;
        assert!((mean - expected).abs() < 1e-12, "{mean}");
    }
}
