//! Controller statistics.

/// Aggregate statistics for one simulated channel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Reads served by store-to-load forwarding from the write queue.
    pub forwarded_reads: u64,
    /// Column commands that hit an already-open row.
    pub row_hits: u64,
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// REF commands issued.
    pub refreshes: u64,
    /// Memory cycles the data bus carried a burst.
    pub data_bus_busy_cycles: u64,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Sum of read latencies (enqueue to last beat), for averaging.
    pub read_latency_sum: u64,
    /// Sum of read queueing delays (enqueue to first command).
    pub read_queue_delay_sum: u64,
}

impl DramStats {
    /// Mean read latency in memory cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads as f64
        }
    }

    /// Row-buffer hit rate over all column commands.
    pub fn row_hit_rate(&self) -> f64 {
        let cols = self.reads - self.forwarded_reads + self.writes;
        if cols == 0 {
            0.0
        } else {
            self.row_hits as f64 / cols as f64
        }
    }

    /// Fraction of cycles the data bus was busy.
    pub fn bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.data_bus_busy_cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_zero_counts() {
        let s = DramStats::default();
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.bus_utilization(), 0.0);
    }

    #[test]
    fn averages_compute() {
        let s = DramStats {
            reads: 4,
            read_latency_sum: 200,
            row_hits: 3,
            writes: 2,
            cycles: 100,
            data_bus_busy_cycles: 25,
            ..Default::default()
        };
        assert_eq!(s.avg_read_latency(), 50.0);
        assert_eq!(s.row_hit_rate(), 0.5);
        assert_eq!(s.bus_utilization(), 0.25);
    }
}
