//! DRAM organization and timing configuration (Table I of the paper).

/// Full configuration of one simulated DRAM channel.
///
/// All timing fields are in memory-clock cycles at [`Self::freq_mhz`].
/// Defaults follow Table I: DDR4-3200 at 1600 MHz with
/// tCL/tCCDS/tCCDL/tCWL/tWTRS/tWTRL/tRP/tRCD/tRAS = 22/4/10/16/4/12/22/22/56.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Memory clock in MHz (data rate is 2x, e.g. 1600 MHz => 3200 MT/s).
    pub freq_mhz: u32,
    /// Number of ranks on the channel.
    pub ranks: u32,
    /// Bank groups per rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Cache-line-sized columns per row (8 KB row / 64 B line = 128).
    pub columns: u32,
    /// Cache line size in bytes.
    pub line_bytes: u32,

    /// CAS latency (READ command to first data beat).
    pub t_cl: u64,
    /// CAS write latency (WRITE command to first data beat).
    pub t_cwl: u64,
    /// ACT to internal read/write delay.
    pub t_rcd: u64,
    /// Precharge period.
    pub t_rp: u64,
    /// ACT to PRE minimum.
    pub t_ras: u64,
    /// Column-to-column, different bank group.
    pub t_ccd_s: u64,
    /// Column-to-column, same bank group.
    pub t_ccd_l: u64,
    /// Write-to-read turnaround, different bank group.
    pub t_wtr_s: u64,
    /// Write-to-read turnaround, same bank group.
    pub t_wtr_l: u64,
    /// ACT-to-ACT, different bank group.
    pub t_rrd_s: u64,
    /// ACT-to-ACT, same bank group.
    pub t_rrd_l: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// READ to PRE minimum.
    pub t_rtp: u64,
    /// Write recovery (end of write burst to PRE).
    pub t_wr: u64,
    /// Refresh interval.
    pub t_refi: u64,
    /// Refresh cycle time.
    pub t_rfc: u64,

    /// Data-bus occupancy of a read burst (BL8 on DDR4 = 4 clocks).
    pub read_burst_cycles: u64,
    /// Data-bus occupancy of a write burst. 4 for BL8; 5 for the BL10
    /// bursts SecDDR's eWCRC requires on DDR4.
    pub write_burst_cycles: u64,
    /// Extra cycles a write occupies the target chip after the burst
    /// (models the OTPw generation that starts only once the write command
    /// arrives at the SecDDR ECC chip).
    pub write_extra_cycles: u64,

    /// Schedule strictly first-come-first-served (no row-hit-first pass).
    /// FR-FCFS (the default, `false`) matches real controllers; FCFS is an
    /// ablation knob.
    pub fcfs: bool,

    /// Read queue capacity.
    pub read_queue: usize,
    /// Write queue capacity.
    pub write_queue: usize,
    /// Enter write-drain mode at or above this many queued writes.
    pub write_drain_hi: usize,
    /// Leave write-drain mode at or below this many queued writes.
    pub write_drain_lo: usize,
}

impl DramConfig {
    /// Table I configuration: 16 GB DDR4-3200, 1 channel, 2 ranks,
    /// 4 bank groups x 4 banks, x8 devices, 64-entry queues.
    pub fn ddr4_3200() -> Self {
        Self {
            freq_mhz: 1600,
            ranks: 2,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 65_536,
            columns: 128,
            line_bytes: 64,
            t_cl: 22,
            t_cwl: 16,
            t_rcd: 22,
            t_rp: 22,
            t_ras: 56,
            t_ccd_s: 4,
            t_ccd_l: 10,
            t_wtr_s: 4,
            t_wtr_l: 12,
            t_rrd_s: 9,
            t_rrd_l: 11,
            t_faw: 34,
            t_rtp: 12,
            t_wr: 24,
            t_refi: 12_480,
            t_rfc: 560,
            read_burst_cycles: 4,
            write_burst_cycles: 4,
            write_extra_cycles: 0,
            fcfs: false,
            read_queue: 64,
            write_queue: 64,
            write_drain_hi: 40,
            write_drain_lo: 16,
        }
    }

    /// The SecDDR variant: identical organization but BL10 write bursts for
    /// the encrypted eWCRC (Section IV-B item 2 of the paper).
    pub fn ddr4_3200_ewcrc() -> Self {
        Self {
            write_burst_cycles: 5,
            ..Self::ddr4_3200()
        }
    }

    /// A DDR5-4800 channel: 2400 MHz clock, BL16 bursts (8 clocks), twice
    /// the bank groups, and nanosecond-equivalent core timings. Used for
    /// the paper's DDR5 discussion: enabling eWCRC costs BL16→18 (+12.5%
    /// write-burst occupancy) instead of DDR4's BL8→10 (+25%).
    pub fn ddr5_4800() -> Self {
        let scale = |c: u64| -> u64 { (c * 2400).div_ceil(1600) };
        let base = Self::ddr4_3200();
        Self {
            freq_mhz: 2400,
            bank_groups: 8,
            rows: 65_536,
            t_cl: scale(base.t_cl),
            t_cwl: scale(base.t_cwl),
            t_rcd: scale(base.t_rcd),
            t_rp: scale(base.t_rp),
            t_ras: scale(base.t_ras),
            t_ccd_s: 8, // burst-length-bound: BL16 on DDR5
            t_ccd_l: scale(base.t_ccd_l),
            t_wtr_s: scale(base.t_wtr_s),
            t_wtr_l: scale(base.t_wtr_l),
            t_rrd_s: scale(base.t_rrd_s),
            t_rrd_l: scale(base.t_rrd_l),
            t_faw: scale(base.t_faw),
            t_rtp: scale(base.t_rtp),
            t_wr: scale(base.t_wr),
            t_refi: scale(base.t_refi),
            t_rfc: scale(base.t_rfc),
            read_burst_cycles: 8,
            write_burst_cycles: 8,
            ..base
        }
    }

    /// DDR5 with SecDDR's eWCRC: write burst length 16 → 18 (9 clocks).
    pub fn ddr5_4800_ewcrc() -> Self {
        Self {
            write_burst_cycles: 9,
            ..Self::ddr5_4800()
        }
    }

    /// The "realistic InvisiMem" channel: derated to 1200 MHz (2400 MT/s)
    /// to account for the centralized data buffer (Section VI-D). Timing
    /// parameters stay at the same nanosecond values, so cycle counts are
    /// rescaled by 1200/1600.
    pub fn ddr4_2400_derated() -> Self {
        let base = Self::ddr4_3200();
        let scale = |c: u64| -> u64 { (c * 1200).div_ceil(1600) };
        Self {
            freq_mhz: 1200,
            t_cl: scale(base.t_cl),
            t_cwl: scale(base.t_cwl),
            t_rcd: scale(base.t_rcd),
            t_rp: scale(base.t_rp),
            t_ras: scale(base.t_ras),
            t_ccd_s: base.t_ccd_s, // burst-length-bound, stays in clocks
            t_ccd_l: scale(base.t_ccd_l),
            t_wtr_s: scale(base.t_wtr_s),
            t_wtr_l: scale(base.t_wtr_l),
            t_rrd_s: scale(base.t_rrd_s),
            t_rrd_l: scale(base.t_rrd_l),
            t_faw: scale(base.t_faw),
            t_rtp: scale(base.t_rtp),
            t_wr: scale(base.t_wr),
            t_refi: scale(base.t_refi),
            t_rfc: scale(base.t_rfc),
            ..base
        }
    }

    /// Total banks on the channel.
    pub fn total_banks(&self) -> u32 {
        self.ranks * self.bank_groups * self.banks_per_group
    }

    /// Channel capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.total_banks())
            * u64::from(self.rows)
            * u64::from(self.columns)
            * u64::from(self.line_bytes)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.ranks.is_power_of_two()
            || !self.bank_groups.is_power_of_two()
            || !self.banks_per_group.is_power_of_two()
            || !self.rows.is_power_of_two()
            || !self.columns.is_power_of_two()
        {
            return Err("organization fields must be powers of two".into());
        }
        if self.write_drain_lo >= self.write_drain_hi {
            return Err("write_drain_lo must be below write_drain_hi".into());
        }
        if self.write_drain_hi > self.write_queue {
            return Err("write_drain_hi must fit in the write queue".into());
        }
        if self.t_ras < self.t_rcd {
            return Err("tRAS must cover tRCD".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr4_3200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_parameters() {
        let c = DramConfig::ddr4_3200();
        assert_eq!(
            (
                c.t_cl, c.t_ccd_s, c.t_ccd_l, c.t_cwl, c.t_wtr_s, c.t_wtr_l, c.t_rp, c.t_rcd,
                c.t_ras
            ),
            (22, 4, 10, 16, 4, 12, 22, 22, 56)
        );
        assert_eq!(c.read_queue, 64);
        assert_eq!(c.write_queue, 64);
    }

    #[test]
    fn capacity_is_16_gib() {
        let c = DramConfig::ddr4_3200();
        assert_eq!(c.capacity_bytes(), 16 * (1u64 << 30));
    }

    #[test]
    fn ewcrc_variant_extends_write_burst_only() {
        let base = DramConfig::ddr4_3200();
        let e = DramConfig::ddr4_3200_ewcrc();
        assert_eq!(e.write_burst_cycles, 5);
        assert_eq!(e.read_burst_cycles, base.read_burst_cycles);
        assert_eq!(e.t_cl, base.t_cl);
    }

    #[test]
    fn derated_config_scales_latency_cycles() {
        let d = DramConfig::ddr4_2400_derated();
        assert_eq!(d.freq_mhz, 1200);
        // 22 cycles at 1600MHz = 13.75ns -> ceil to 17 cycles at 1200MHz.
        assert_eq!(d.t_cl, 17);
        assert_eq!(d.t_ccd_s, 4, "burst-bound constraint stays in clocks");
    }

    #[test]
    fn default_config_validates() {
        assert!(DramConfig::ddr4_3200().validate().is_ok());
        assert!(DramConfig::ddr4_3200_ewcrc().validate().is_ok());
        assert!(DramConfig::ddr4_2400_derated().validate().is_ok());
        assert!(DramConfig::ddr5_4800().validate().is_ok());
        assert!(DramConfig::ddr5_4800_ewcrc().validate().is_ok());
    }

    #[test]
    fn ddr5_ewcrc_burst_overhead_is_half_of_ddr4s() {
        // The paper: "for DDR5 memories the impact of increasing the write
        // burst length is smaller — from 16 to 18" (12.5% vs 25%).
        let d4 = DramConfig::ddr4_3200();
        let d4e = DramConfig::ddr4_3200_ewcrc();
        let d5 = DramConfig::ddr5_4800();
        let d5e = DramConfig::ddr5_4800_ewcrc();
        let ddr4_overhead = d4e.write_burst_cycles as f64 / d4.write_burst_cycles as f64 - 1.0;
        let ddr5_overhead = d5e.write_burst_cycles as f64 / d5.write_burst_cycles as f64 - 1.0;
        assert!((ddr4_overhead - 0.25).abs() < 1e-9);
        assert!((ddr5_overhead - 0.125).abs() < 1e-9);
    }

    #[test]
    fn ddr5_has_more_bank_groups_and_bigger_bursts() {
        let d5 = DramConfig::ddr5_4800();
        assert_eq!(d5.bank_groups, 8);
        assert_eq!(d5.read_burst_cycles, 8);
        assert_eq!(d5.freq_mhz, 2400);
        assert_eq!(d5.capacity_bytes(), 32 * (1u64 << 30));
    }

    #[test]
    fn validation_catches_bad_watermarks() {
        let mut c = DramConfig::ddr4_3200();
        c.write_drain_lo = 50;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_non_power_of_two() {
        let mut c = DramConfig::ddr4_3200();
        c.rows = 1000;
        assert!(c.validate().is_err());
    }
}
