//! FR-FCFS memory controller and channel timing engine.
//!
//! The controller exposes two advance interfaces over the same state
//! machine:
//!
//! * [`DramSystem::tick`] — the per-cycle reference: advance one memory
//!   cycle, issue at most one command, harvest due completions.
//! * the event-driven fast path — when the controller is
//!   [quiescent](DramSystem::is_quiescent) (the last tick performed no
//!   action and nothing was enqueued since), every issue condition is a
//!   monotone `now >= threshold` comparison against static timing
//!   registers, so [`DramSystem::next_activity_cycle`] can lower-bound
//!   the next cycle anything could happen and
//!   [`DramSystem::skip_idle_to`] jumps the clock there in O(banks)
//!   instead of O(cycles). Skipped cycles are provably no-ops, keeping
//!   command schedules and statistics bit-identical to the reference.

use sim_kernel::{fold_next_event, Advance, EventQueue, SimClock};

use crate::address::{AddressMapping, DecodedAddr};
use crate::bank::{Bank, Rank};
use crate::config::DramConfig;
use crate::request::{Completion, MemRequest, ReqKind};
use crate::stats::DramStats;

/// Error returned when the target queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnqueueError {
    /// The request that could not be accepted.
    pub rejected: MemRequest,
}

impl core::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "memory controller queue full (request {})",
            self.rejected.id
        )
    }
}

impl std::error::Error for EnqueueError {}

#[derive(Debug, Clone)]
struct QueuedReq {
    req: MemRequest,
    decoded: DecodedAddr,
    flat_bank: usize,
    /// Did this request require an ACT (row miss) on its way to service?
    touched: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusDir {
    Idle,
    Read,
    Write,
}

/// One DDR4 channel: banks, ranks, queues, scheduler, and data bus.
///
/// Drive it with [`DramSystem::enqueue`] and advance time one memory-clock
/// cycle at a time with [`DramSystem::tick`], which returns the requests
/// whose final data beat transferred during that cycle.
#[derive(Debug)]
pub struct DramSystem {
    cfg: DramConfig,
    mapping: AddressMapping,
    clock: SimClock,
    banks: Vec<Bank>,
    ranks: Vec<Rank>,
    read_q: Vec<QueuedReq>,
    write_q: Vec<QueuedReq>,
    draining_writes: bool,
    bus_busy_until: u64,
    bus_dir: BusDir,
    bus_rank: u32,
    pending: EventQueue<Completion>,
    stats: DramStats,
    /// Age (cycles) beyond which the oldest request pre-empts row hits.
    starvation_limit: u64,
    /// True when the last tick performed no action and nothing was
    /// enqueued since: every issue condition is then waiting on a static
    /// timing threshold, so idle cycles may be skipped.
    quiescent: bool,
    /// Memoized [`Self::next_activity_cycle`] bound. The threshold set is
    /// static across a quiescent stretch, so the scan runs once per
    /// stretch; any enqueue or active tick invalidates it.
    next_activity_cache: std::cell::Cell<Option<u64>>,
    /// Memoized [`Self::next_read_issue_cycle`] bound. Timing registers
    /// only ratchet upward, so a computed bound stays a valid lower bound
    /// until it expires; only a read enqueue (which can genuinely lower
    /// the true next issue) invalidates it early.
    next_read_issue_cache: std::cell::Cell<Option<u64>>,
}

impl DramSystem {
    /// Creates a channel from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: DramConfig) -> Self {
        cfg.validate().expect("invalid DRAM configuration");
        let mapping = AddressMapping::new(&cfg);
        let banks = vec![Bank::default(); cfg.total_banks() as usize];
        let ranks = (0..cfg.ranks)
            .map(|_| Rank::new(cfg.bank_groups, cfg.t_refi))
            .collect();
        Self {
            mapping,
            clock: SimClock::new(),
            banks,
            ranks,
            read_q: Vec::new(),
            write_q: Vec::new(),
            draining_writes: false,
            bus_busy_until: 0,
            bus_dir: BusDir::Idle,
            bus_rank: 0,
            pending: EventQueue::new(),
            stats: DramStats::default(),
            starvation_limit: 2_000,
            quiescent: false,
            next_activity_cache: std::cell::Cell::new(None),
            next_read_issue_cache: std::cell::Cell::new(None),
            cfg,
        }
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Current memory-clock cycle.
    pub fn cycle(&self) -> u64 {
        self.clock.now()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Number of queued reads.
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Number of queued writes.
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    /// True when no request is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.pending.is_empty()
    }

    /// True when the last tick performed no action and nothing was
    /// enqueued since — the precondition for the event-driven skip.
    pub fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    /// Finish cycle of the earliest in-flight (already issued) request,
    /// if any.
    pub fn next_pending_completion(&self) -> Option<u64> {
        self.pending.peek_time()
    }

    /// Lower bound (strictly after [`Self::cycle`]) on the next cycle at
    /// which [`Self::tick`] could perform any action, assuming the
    /// controller [is quiescent](Self::is_quiescent).
    ///
    /// Every issue condition in the scheduler is a conjunction of
    /// `now >= threshold` comparisons against timing registers that only
    /// change when a command issues. After a no-op tick, each candidate
    /// action therefore has at least one unsatisfied threshold in the set
    /// collected here, so nothing can happen before the earliest of them.
    pub fn next_activity_cycle(&self) -> u64 {
        let now = self.clock.now();
        if let Some(cached) = self.next_activity_cache.get() {
            if cached > now {
                return cached;
            }
        }
        let bound = self.compute_next_activity(now);
        self.next_activity_cache.set(Some(bound));
        bound
    }

    fn compute_next_activity(&self, now: u64) -> u64 {
        let mut bound = u64::MAX;
        // In-flight data beats land at their precomputed finish cycles.
        if let Some(t) = self.pending.peek_time() {
            fold_next_event(now, &mut bound, t);
        }
        // The scheduler only ever touches the banks and ranks of queued
        // requests, so with short queues (the common stall case) scanning
        // per request beats sweeping every bank.
        let queued = self.read_q.len() + self.write_q.len();
        if queued <= 12 {
            for q in [&self.read_q, &self.write_q] {
                for entry in q {
                    let bank = &self.banks[entry.flat_bank];
                    fold_next_event(now, &mut bound, bank.next_act);
                    fold_next_event(now, &mut bound, bank.next_pre);
                    fold_next_event(now, &mut bound, bank.next_read);
                    fold_next_event(now, &mut bound, bank.next_write);
                    let rank = &self.ranks[entry.decoded.rank as usize];
                    let bg = entry.decoded.bank_group as usize;
                    fold_next_event(now, &mut bound, rank.next_act_any);
                    fold_next_event(now, &mut bound, rank.next_col_any);
                    fold_next_event(now, &mut bound, rank.next_read_any);
                    fold_next_event(now, &mut bound, rank.faw_ready(self.cfg.t_faw));
                    fold_next_event(now, &mut bound, rank.next_act_same_bg[bg]);
                    fold_next_event(now, &mut bound, rank.next_col_same_bg[bg]);
                    fold_next_event(now, &mut bound, rank.next_read_same_bg[bg]);
                }
            }
            // Refresh management runs regardless of the queues: the due
            // time itself, plus — once a refresh is pending — the
            // precharge/REF readiness of that rank's banks.
            let bpr = (self.cfg.bank_groups * self.cfg.banks_per_group) as usize;
            for (r, rank) in self.ranks.iter().enumerate() {
                fold_next_event(now, &mut bound, rank.refresh_due);
                if rank.refresh_pending {
                    for bank in &self.banks[r * bpr..(r + 1) * bpr] {
                        fold_next_event(now, &mut bound, bank.next_act);
                        fold_next_event(now, &mut bound, bank.next_pre);
                    }
                }
            }
        } else {
            for rank in &self.ranks {
                fold_next_event(now, &mut bound, rank.refresh_due);
                fold_next_event(now, &mut bound, rank.next_act_any);
                fold_next_event(now, &mut bound, rank.next_col_any);
                fold_next_event(now, &mut bound, rank.next_read_any);
                fold_next_event(now, &mut bound, rank.faw_ready(self.cfg.t_faw));
                for bg in 0..rank.next_act_same_bg.len() {
                    fold_next_event(now, &mut bound, rank.next_act_same_bg[bg]);
                    fold_next_event(now, &mut bound, rank.next_col_same_bg[bg]);
                    fold_next_event(now, &mut bound, rank.next_read_same_bg[bg]);
                }
            }
            for bank in &self.banks {
                fold_next_event(now, &mut bound, bank.next_act);
                fold_next_event(now, &mut bound, bank.next_pre);
                fold_next_event(now, &mut bound, bank.next_read);
                fold_next_event(now, &mut bound, bank.next_write);
            }
        }
        // Data-bus release: a column command needs `now + lat >=
        // bus_busy_until + bubble`; cover every (latency, bubble) combo.
        for lat in [self.cfg.t_cl, self.cfg.t_cwl] {
            for bubble in [0u64, 2] {
                let t = (self.bus_busy_until + bubble).saturating_sub(lat);
                fold_next_event(now, &mut bound, t);
            }
        }
        // Anti-starvation kicks in when the oldest request's age crosses
        // the limit, which changes scheduling even without a new command.
        for q in [&self.read_q, &self.write_q] {
            if let Some(oldest) = q.first() {
                fold_next_event(
                    now,
                    &mut bound,
                    oldest.req.enqueue_cycle + self.starvation_limit,
                );
            }
        }
        bound.max(now + 1)
    }

    /// Lower bound on the next cycle a READ column command can issue —
    /// the moment read-queue capacity frees and the earliest any queued
    /// read's data can start moving.
    ///
    /// Unlike [`Self::next_activity_cycle`] this is valid in any state
    /// (not just quiescent): every term reads a timing register that only
    /// ratchets upward as commands issue, so current values lower-bound
    /// future readiness. Refresh blackouts are ignored (they only push
    /// the true issue later). Returns `u64::MAX` when no read is queued.
    pub fn next_read_issue_cycle(&self) -> u64 {
        if self.read_q.is_empty() {
            return u64::MAX;
        }
        let now = self.clock.now();
        if let Some(cached) = self.next_read_issue_cache.get() {
            if cached > now {
                return cached;
            }
        }
        let bound = self.compute_next_read_issue(now);
        self.next_read_issue_cache.set(Some(bound));
        bound
    }

    fn compute_next_read_issue(&self, now: u64) -> u64 {
        // While draining, no read issues until the write queue falls to
        // the low watermark; consecutive write bursts occupy the data bus
        // at least `write_burst_cycles` apart.
        let floor = if self.draining_writes {
            let surplus = self.write_q.len().saturating_sub(self.cfg.write_drain_lo) as u64;
            now + surplus * self.cfg.write_burst_cycles
        } else {
            now
        };
        let mut bound = u64::MAX;
        for entry in &self.read_q {
            let bank = &self.banks[entry.flat_bank];
            let rank = &self.ranks[entry.decoded.rank as usize];
            let bg = entry.decoded.bank_group as usize;
            let mut t = match bank.open_row {
                Some(row) if row == entry.decoded.row => bank.next_read,
                // Conflict: PRE, tRP, ACT, tRCD before the column command.
                Some(_) => bank.next_pre + self.cfg.t_rp + self.cfg.t_rcd,
                // Closed: ACT constraints then tRCD.
                None => {
                    bank.next_act
                        .max(rank.next_act_any)
                        .max(rank.next_act_same_bg[bg])
                        .max(rank.faw_ready(self.cfg.t_faw))
                        + self.cfg.t_rcd
                }
            };
            t = t
                .max(rank.next_read_any)
                .max(rank.next_read_same_bg[bg])
                .max(rank.next_col_any)
                .max(rank.next_col_same_bg[bg])
                .max(self.bus_busy_until.saturating_sub(self.cfg.t_cl));
            bound = bound.min(t);
        }
        bound.max(floor).max(now + 1)
    }

    /// Lower bound on the next cycle any queued (not yet issued) READ's
    /// final data beat can land: issue, CAS latency, then the burst.
    pub fn next_read_finish_cycle(&self) -> u64 {
        self.next_read_issue_cycle()
            .saturating_add(self.cfg.t_cl + self.cfg.read_burst_cycles)
    }

    /// Fast-forwards the clock over cycles proven idle by
    /// [`Self::next_activity_cycle`], charging them to the cycle counter.
    ///
    /// # Panics
    ///
    /// Panics if the controller is not quiescent or `cycle` is in the
    /// past.
    pub fn skip_idle_to(&mut self, cycle: u64) {
        assert!(
            self.quiescent,
            "skip_idle_to requires a quiescent controller"
        );
        self.stats.cycles += self.clock.skip_to(cycle);
    }

    /// Advances to `target`, returning every completion on the way.
    ///
    /// With [`Advance::ToNextEvent`] this skips provably idle stretches;
    /// with [`Advance::PerCycle`] it is exactly `target - cycle()` calls
    /// to [`Self::tick`]. Both produce identical schedules and stats.
    pub fn advance_to(&mut self, target: u64, advance: Advance) -> Vec<Completion> {
        let mut done = Vec::new();
        while self.clock.now() < target {
            if advance.is_event_driven() && target > self.clock.now() + 1 && self.quiescent {
                let next = self.next_activity_cycle().min(target);
                if next > self.clock.now() + 1 {
                    self.skip_idle_to(next - 1);
                }
            }
            done.extend(self.tick());
        }
        done
    }

    /// Accepts a request into the appropriate queue.
    ///
    /// Reads that hit a queued write to the same line are served by store
    /// forwarding and complete on the next tick.
    ///
    /// # Errors
    ///
    /// Returns [`EnqueueError`] when the target queue is full; the caller
    /// should retry after draining some completions.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), EnqueueError> {
        let line_mask = !u64::from(self.cfg.line_bytes - 1);
        match req.kind {
            ReqKind::Read => {
                if self
                    .write_q
                    .iter()
                    .any(|w| w.req.addr & line_mask == req.addr & line_mask)
                {
                    self.stats.forwarded_reads += 1;
                    self.stats.reads += 1;
                    let finish_cycle = self.clock.now() + 1;
                    self.pending.push(
                        finish_cycle,
                        Completion {
                            id: req.id,
                            kind: ReqKind::Read,
                            finish_cycle,
                            enqueue_cycle: req.enqueue_cycle,
                        },
                    );
                    self.quiescent = false;
                    self.next_activity_cache.set(None);
                    return Ok(());
                }
                if self.read_q.len() >= self.cfg.read_queue {
                    return Err(EnqueueError { rejected: req });
                }
                let decoded = self.mapping.decode(req.addr);
                let flat_bank = decoded.flat_bank(&self.cfg) as usize;
                self.read_q.push(QueuedReq {
                    req,
                    decoded,
                    flat_bank,
                    touched: false,
                });
                // A fresh read can genuinely lower the next-issue bound.
                self.next_read_issue_cache.set(None);
            }
            ReqKind::Write => {
                if self.write_q.len() >= self.cfg.write_queue {
                    return Err(EnqueueError { rejected: req });
                }
                let decoded = self.mapping.decode(req.addr);
                let flat_bank = decoded.flat_bank(&self.cfg) as usize;
                self.write_q.push(QueuedReq {
                    req,
                    decoded,
                    flat_bank,
                    touched: false,
                });
            }
        }
        self.quiescent = false;
        self.next_activity_cache.set(None);
        Ok(())
    }

    /// Advances one memory-clock cycle, possibly issuing one command, and
    /// returns every completion whose final data beat lands this cycle.
    pub fn tick(&mut self) -> Vec<Completion> {
        let now = self.clock.tick();
        self.stats.cycles += 1;
        // A drain-mode flip counts as activity: it changes what the next
        // tick may issue without any timing threshold crossing, so the
        // idle-skip must not jump over the cycle after it.
        let drain_flipped = self.update_drain_mode();
        let issued = if self.issue_refresh() {
            true
        } else {
            self.issue_scheduled()
        };
        let mut done = Vec::new();
        while let Some((_, c)) = self.pending.pop_due(now) {
            done.push(c);
        }
        // A tick that changed nothing leaves every scheduling input
        // waiting on a static timing threshold.
        self.quiescent = !drain_flipped && !issued && done.is_empty();
        if !self.quiescent {
            self.next_activity_cache.set(None);
        }
        done
    }

    /// Updates write-drain hysteresis; returns true when the mode flipped.
    fn update_drain_mode(&mut self) -> bool {
        let before = self.draining_writes;
        if self.draining_writes {
            if self.write_q.len() <= self.cfg.write_drain_lo {
                self.draining_writes = false;
            }
        } else if self.write_q.len() >= self.cfg.write_drain_hi
            || (self.read_q.is_empty() && !self.write_q.is_empty())
        {
            self.draining_writes = true;
        }
        self.draining_writes != before
    }

    /// Handles refresh management; returns true if it used this cycle's
    /// command slot.
    fn issue_refresh(&mut self) -> bool {
        let now = self.clock.now();
        for r in 0..self.ranks.len() {
            if now >= self.ranks[r].refresh_due {
                self.ranks[r].refresh_pending = true;
            }
            if !self.ranks[r].refresh_pending {
                continue;
            }
            // Precharge any open bank in this rank (one command per cycle).
            let bpr = (self.cfg.bank_groups * self.cfg.banks_per_group) as usize;
            let base = r * bpr;
            for b in base..base + bpr {
                if self.banks[b].open_row.is_some() {
                    if now >= self.banks[b].next_pre {
                        self.banks[b].open_row = None;
                        self.banks[b].next_act = self.banks[b].next_act.max(now + self.cfg.t_rp);
                        self.stats.precharges += 1;
                        return true;
                    }
                    // An open bank not yet prechargeable: wait, but do not
                    // consume the slot — other ranks may proceed.
                    return false;
                }
            }
            // All banks closed: issue REF once tRP windows have elapsed.
            let ready = (base..base + bpr).all(|b| now >= self.banks[b].next_act);
            if ready {
                for b in base..base + bpr {
                    self.banks[b].next_act = now + self.cfg.t_rfc;
                }
                self.ranks[r].refresh_due += self.cfg.t_refi;
                self.ranks[r].refresh_pending = false;
                self.stats.refreshes += 1;
                return true;
            }
            return false;
        }
        false
    }

    /// Runs the scheduler; returns true when a command issued.
    fn issue_scheduled(&mut self) -> bool {
        let serve_writes = self.draining_writes;
        if serve_writes {
            self.schedule_queue(ReqKind::Write)
        } else if !self.read_q.is_empty() {
            self.schedule_queue(ReqKind::Read)
        } else {
            false
        }
    }

    fn schedule_queue(&mut self, kind: ReqKind) -> bool {
        let now = self.clock.now();
        let q_len = match kind {
            ReqKind::Read => self.read_q.len(),
            ReqKind::Write => self.write_q.len(),
        };
        if q_len == 0 {
            return false;
        }

        // Anti-starvation: if the oldest request has waited too long, only
        // consider it.
        let oldest_age = {
            let q = self.queue(kind);
            now.saturating_sub(q[0].req.enqueue_cycle)
        };
        let starving = oldest_age > self.starvation_limit;

        // Pass 1 (FR-FCFS only): first-ready row hit in arrival order.
        if !starving && !self.cfg.fcfs {
            for i in 0..q_len {
                let (decoded, flat_bank) = {
                    let e = &self.queue(kind)[i];
                    (e.decoded, e.flat_bank)
                };
                if self.banks[flat_bank].open_row == Some(decoded.row)
                    && self.col_cmd_ready(kind, &decoded, flat_bank)
                {
                    self.issue_col_cmd(kind, i);
                    return true;
                }
            }
        }

        // Pass 2: prepare the oldest serviceable request (PRE or ACT), or
        // issue its column command if it is a starving row hit.
        let limit = if starving { 1 } else { q_len };
        for i in 0..limit {
            let (decoded, flat_bank) = {
                let e = &self.queue(kind)[i];
                (e.decoded, e.flat_bank)
            };
            let rank = &self.ranks[decoded.rank as usize];
            if rank.refresh_pending {
                continue;
            }
            match self.banks[flat_bank].open_row {
                Some(row) if row == decoded.row => {
                    // FCFS: only the oldest request may issue its column
                    // command (younger ones may still prepare their banks).
                    if (starving || (self.cfg.fcfs && i == 0))
                        && self.col_cmd_ready(kind, &decoded, flat_bank)
                    {
                        self.issue_col_cmd(kind, i);
                        return true;
                    }
                    continue; // waiting on column timing
                }
                Some(_) => {
                    if now >= self.banks[flat_bank].next_pre {
                        self.banks[flat_bank].open_row = None;
                        self.banks[flat_bank].next_act =
                            self.banks[flat_bank].next_act.max(now + self.cfg.t_rp);
                        self.stats.precharges += 1;
                        self.queue_mut(kind)[i].touched = true;
                        return true;
                    }
                }
                None => {
                    if self.act_ready(&decoded, flat_bank) {
                        self.issue_act(&decoded, flat_bank);
                        self.queue_mut(kind)[i].touched = true;
                        return true;
                    }
                }
            }
        }
        false
    }

    fn queue(&self, kind: ReqKind) -> &Vec<QueuedReq> {
        match kind {
            ReqKind::Read => &self.read_q,
            ReqKind::Write => &self.write_q,
        }
    }

    fn queue_mut(&mut self, kind: ReqKind) -> &mut Vec<QueuedReq> {
        match kind {
            ReqKind::Read => &mut self.read_q,
            ReqKind::Write => &mut self.write_q,
        }
    }

    fn act_ready(&self, d: &DecodedAddr, flat_bank: usize) -> bool {
        let now = self.clock.now();
        let bank = &self.banks[flat_bank];
        let rank = &self.ranks[d.rank as usize];
        now >= bank.next_act
            && now >= rank.next_act_any
            && now >= rank.next_act_same_bg[d.bank_group as usize]
            && now >= rank.faw_ready(self.cfg.t_faw)
    }

    fn issue_act(&mut self, d: &DecodedAddr, flat_bank: usize) {
        let now = self.clock.now();
        let bank = &mut self.banks[flat_bank];
        bank.open_row = Some(d.row);
        bank.next_read = now + self.cfg.t_rcd;
        bank.next_write = now + self.cfg.t_rcd;
        bank.next_pre = bank.next_pre.max(now + self.cfg.t_ras);
        let rank = &mut self.ranks[d.rank as usize];
        rank.next_act_any = rank.next_act_any.max(now + self.cfg.t_rrd_s);
        let bg = d.bank_group as usize;
        rank.next_act_same_bg[bg] = rank.next_act_same_bg[bg].max(now + self.cfg.t_rrd_l);
        rank.record_act(now);
        self.stats.activates += 1;
    }

    fn col_cmd_ready(&self, kind: ReqKind, d: &DecodedAddr, flat_bank: usize) -> bool {
        let now = self.clock.now();
        let bank = &self.banks[flat_bank];
        let rank = &self.ranks[d.rank as usize];
        if rank.refresh_pending {
            return false;
        }
        let bg = d.bank_group as usize;
        let bank_ready = match kind {
            ReqKind::Read => {
                now >= bank.next_read
                    && now >= rank.next_read_any
                    && now >= rank.next_read_same_bg[bg]
            }
            ReqKind::Write => now >= bank.next_write,
        };
        if !bank_ready || now < rank.next_col_any || now < rank.next_col_same_bg[bg] {
            return false;
        }
        // Data bus availability with a turnaround bubble on direction or
        // rank switches.
        let (lat, dur, dir) = match kind {
            ReqKind::Read => (self.cfg.t_cl, self.cfg.read_burst_cycles, BusDir::Read),
            ReqKind::Write => (self.cfg.t_cwl, self.cfg.write_burst_cycles, BusDir::Write),
        };
        let _ = dur;
        let bubble =
            if self.bus_dir != BusDir::Idle && (self.bus_dir != dir || self.bus_rank != d.rank) {
                2
            } else {
                0
            };
        now + lat >= self.bus_busy_until + bubble
    }

    fn issue_col_cmd(&mut self, kind: ReqKind, idx: usize) {
        let now = self.clock.now();
        let entry = self.queue_mut(kind).remove(idx);
        let d = entry.decoded;
        let bg = d.bank_group as usize;
        if !entry.touched {
            self.stats.row_hits += 1;
        }
        {
            let rank = &mut self.ranks[d.rank as usize];
            rank.next_col_any = rank.next_col_any.max(now + self.cfg.t_ccd_s);
            rank.next_col_same_bg[bg] = rank.next_col_same_bg[bg].max(now + self.cfg.t_ccd_l);
        }
        match kind {
            ReqKind::Read => {
                let data_start = now + self.cfg.t_cl;
                let finish = data_start + self.cfg.read_burst_cycles;
                let bank = &mut self.banks[entry.flat_bank];
                bank.next_pre = bank.next_pre.max(now + self.cfg.t_rtp);
                self.bus_busy_until = finish;
                self.bus_dir = BusDir::Read;
                self.bus_rank = d.rank;
                self.stats.data_bus_busy_cycles += self.cfg.read_burst_cycles;
                self.stats.reads += 1;
                self.stats.read_latency_sum += finish.saturating_sub(entry.req.enqueue_cycle);
                self.stats.read_queue_delay_sum += now.saturating_sub(entry.req.enqueue_cycle);
                self.pending.push(
                    finish,
                    Completion {
                        id: entry.req.id,
                        kind,
                        finish_cycle: finish,
                        enqueue_cycle: entry.req.enqueue_cycle,
                    },
                );
            }
            ReqKind::Write => {
                let data_start = now + self.cfg.t_cwl;
                let burst_end = data_start + self.cfg.write_burst_cycles;
                // OTPw generation (SecDDR) delays the internal commit.
                let internal_end = burst_end + self.cfg.write_extra_cycles;
                let bank = &mut self.banks[entry.flat_bank];
                bank.next_pre = bank.next_pre.max(internal_end + self.cfg.t_wr);
                let rank = &mut self.ranks[d.rank as usize];
                rank.next_read_any = rank.next_read_any.max(burst_end + self.cfg.t_wtr_s);
                rank.next_read_same_bg[bg] =
                    rank.next_read_same_bg[bg].max(burst_end + self.cfg.t_wtr_l);
                self.bus_busy_until = burst_end;
                self.bus_dir = BusDir::Write;
                self.bus_rank = d.rank;
                self.stats.data_bus_busy_cycles += self.cfg.write_burst_cycles;
                self.stats.writes += 1;
                self.pending.push(
                    burst_end,
                    Completion {
                        id: entry.req.id,
                        kind,
                        finish_cycle: burst_end,
                        enqueue_cycle: entry.req.enqueue_cycle,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_done(dram: &mut DramSystem, max: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        for _ in 0..max {
            out.extend(dram.tick());
            if dram.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_read_latency_is_act_rcd_cl_burst() {
        let cfg = DramConfig::ddr4_3200();
        let mut dram = DramSystem::new(cfg.clone());
        dram.enqueue(MemRequest::new(1, ReqKind::Read, 0x1000, 0))
            .unwrap();
        let done = run_until_done(&mut dram, 500);
        assert_eq!(done.len(), 1);
        // ACT at cycle 1, READ at 1+tRCD, data done at +tCL+burst.
        let expected = 1 + cfg.t_rcd + cfg.t_cl + cfg.read_burst_cycles;
        assert_eq!(done[0].finish_cycle, expected);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let cfg = DramConfig::ddr4_3200();
        // Two lines in the same bank and row: 16-line stride (bank-group
        // interleaving maps adjacent lines to different banks).
        let stride = u64::from(cfg.bank_groups * cfg.banks_per_group * cfg.line_bytes);
        let mut dram = DramSystem::new(cfg);
        dram.enqueue(MemRequest::new(1, ReqKind::Read, 0x10000, 0))
            .unwrap();
        dram.enqueue(MemRequest::new(2, ReqKind::Read, 0x10000 + stride, 0))
            .unwrap();
        let done = run_until_done(&mut dram, 500);
        assert_eq!(done.len(), 2);
        let gap = done[1].finish_cycle - done[0].finish_cycle;
        assert!(
            gap <= dram.config().t_ccd_l + dram.config().read_burst_cycles,
            "gap {gap}"
        );
        assert!(dram.stats().row_hits >= 1);
        assert_eq!(dram.stats().activates, 1);
    }

    #[test]
    fn row_conflict_requires_precharge() {
        let cfg = DramConfig::ddr4_3200();
        let mapping = AddressMapping::new(&cfg);
        let d0 = mapping.decode(0x1000);
        // Same bank, different row.
        let conflict = DecodedAddr {
            row: d0.row + 8,
            ..d0
        };
        let addr1 = mapping.encode(&conflict);
        let mut dram = DramSystem::new(cfg);
        dram.enqueue(MemRequest::new(1, ReqKind::Read, 0x1000, 0))
            .unwrap();
        dram.enqueue(MemRequest::new(2, ReqKind::Read, addr1, 0))
            .unwrap();
        let done = run_until_done(&mut dram, 1000);
        assert_eq!(done.len(), 2);
        assert_eq!(dram.stats().precharges, 1);
        assert_eq!(dram.stats().activates, 2);
    }

    #[test]
    fn store_forwarding_serves_read_from_write_queue() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        dram.enqueue(MemRequest::new(1, ReqKind::Write, 0x2000, 0))
            .unwrap();
        dram.enqueue(MemRequest::new(2, ReqKind::Read, 0x2000, 0))
            .unwrap();
        let first = dram.tick();
        assert!(
            first.iter().any(|c| c.id == 2),
            "forwarded read completes immediately"
        );
        assert_eq!(dram.stats().forwarded_reads, 1);
    }

    #[test]
    fn read_queue_full_is_reported() {
        let mut cfg = DramConfig::ddr4_3200();
        cfg.read_queue = 2;
        let mut dram = DramSystem::new(cfg);
        dram.enqueue(MemRequest::new(1, ReqKind::Read, 0x0, 0))
            .unwrap();
        dram.enqueue(MemRequest::new(2, ReqKind::Read, 0x40000, 0))
            .unwrap();
        let err = dram.enqueue(MemRequest::new(3, ReqKind::Read, 0x80000, 0));
        assert!(err.is_err());
        assert_eq!(err.unwrap_err().rejected.id, 3);
    }

    #[test]
    fn writes_drain_at_watermark() {
        let mut cfg = DramConfig::ddr4_3200();
        cfg.write_drain_hi = 4;
        cfg.write_drain_lo = 1;
        let mut dram = DramSystem::new(cfg);
        for i in 0..4 {
            dram.enqueue(MemRequest::new(i, ReqKind::Write, i * 0x40000, 0))
                .unwrap();
        }
        let done = run_until_done(&mut dram, 2000);
        assert!(
            done.len() >= 3,
            "drain mode should service writes, got {}",
            done.len()
        );
        assert!(dram.stats().writes >= 3);
    }

    #[test]
    fn reads_have_priority_over_sparse_writes() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        dram.enqueue(MemRequest::new(1, ReqKind::Write, 0x2000, 0))
            .unwrap();
        dram.enqueue(MemRequest::new(2, ReqKind::Read, 0x100000, 0))
            .unwrap();
        let mut read_done = None;
        let mut write_done = None;
        for _ in 0..3000 {
            for c in dram.tick() {
                match c.id {
                    1 => write_done = Some(c.finish_cycle),
                    2 => read_done = Some(c.finish_cycle),
                    _ => {}
                }
            }
            if read_done.is_some() && write_done.is_some() {
                break;
            }
        }
        assert!(read_done.unwrap() < write_done.unwrap());
    }

    #[test]
    fn refresh_fires_periodically() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        for _ in 0..(12_480 * 2 + 600) {
            dram.tick();
        }
        // Two ranks, two tREFI windows each.
        assert!(
            dram.stats().refreshes >= 3,
            "got {}",
            dram.stats().refreshes
        );
    }

    #[test]
    fn refresh_blocks_and_then_releases_traffic() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        // Ride past a refresh boundary with continuous traffic.
        let mut id = 0;
        let mut completed = 0u64;
        for t in 0..30_000u64 {
            if t % 50 == 0 {
                id += 1;
                let _ = dram.enqueue(MemRequest::new(
                    id,
                    ReqKind::Read,
                    (id * 0x40) % (1 << 30),
                    t,
                ));
            }
            completed += dram.tick().len() as u64;
        }
        assert!(dram.stats().refreshes >= 2);
        assert!(
            completed >= id - 2,
            "requests must survive refreshes: {completed}/{id}"
        );
    }

    #[test]
    fn ewcrc_write_burst_slows_write_streams() {
        let run = |cfg: DramConfig| -> u64 {
            let mut dram = DramSystem::new(cfg);
            for i in 0..32u64 {
                dram.enqueue(MemRequest::new(i, ReqKind::Write, i * 64, 0))
                    .unwrap();
            }
            let mut last = 0;
            for _ in 0..20_000 {
                for c in dram.tick() {
                    last = last.max(c.finish_cycle);
                }
                if dram.is_idle() {
                    break;
                }
            }
            last
        };
        let bl8 = run(DramConfig::ddr4_3200());
        let bl10 = run(DramConfig::ddr4_3200_ewcrc());
        assert!(bl10 > bl8, "BL10 ({bl10}) must be slower than BL8 ({bl8})");
    }

    #[test]
    fn bank_parallelism_overlaps_requests() {
        // Many banks: total time far less than serial sum.
        let cfg = DramConfig::ddr4_3200();
        let serial_one = 1 + cfg.t_rcd + cfg.t_cl + cfg.read_burst_cycles;
        let mut dram = DramSystem::new(cfg);
        let n = 8u64;
        for i in 0..n {
            // Stride across bank groups.
            dram.enqueue(MemRequest::new(i, ReqKind::Read, i * 0x2000, 0))
                .unwrap();
        }
        let done = run_until_done(&mut dram, 5_000);
        assert_eq!(done.len() as u64, n);
        let makespan = done.iter().map(|c| c.finish_cycle).max().unwrap();
        assert!(
            makespan < serial_one * n * 6 / 10,
            "expected overlap, makespan {makespan} vs serial {}",
            serial_one * n
        );
    }

    #[test]
    fn starving_request_eventually_served_under_hit_storm() {
        let cfg = DramConfig::ddr4_3200();
        let mapping = AddressMapping::new(&cfg);
        let d0 = mapping.decode(0);
        let conflict = DecodedAddr {
            row: d0.row + 1,
            ..d0
        };
        let conflict_addr = mapping.encode(&conflict);
        let mut dram = DramSystem::new(cfg);
        dram.enqueue(MemRequest::new(9999, ReqKind::Read, conflict_addr, 0))
            .unwrap();
        let mut next_id = 0;
        let mut victim_done = false;
        for t in 0..30_000u64 {
            // Keep hammering row d0.row with hits.
            if dram.read_queue_len() < 32 {
                next_id += 1;
                let col = (next_id % 128) * 64;
                let _ = dram.enqueue(MemRequest::new(next_id, ReqKind::Read, col, t));
            }
            for c in dram.tick() {
                if c.id == 9999 {
                    victim_done = true;
                }
            }
            if victim_done {
                break;
            }
        }
        assert!(
            victim_done,
            "anti-starvation must serve the conflicting request"
        );
    }

    #[test]
    fn fcfs_is_slower_than_frfcfs_on_hit_heavy_mix() {
        // A stream with an interleaved row conflict: FR-FCFS reorders to
        // serve the hits; FCFS stalls behind the conflicting request.
        let run = |fcfs: bool| -> u64 {
            let mut cfg = DramConfig::ddr4_3200();
            cfg.fcfs = fcfs;
            let stride = u64::from(cfg.bank_groups * cfg.banks_per_group * cfg.line_bytes);
            let mapping = AddressMapping::new(&cfg);
            let d0 = mapping.decode(0);
            let conflict = DecodedAddr {
                row: d0.row + 1,
                ..d0
            };
            let conflict_addr = mapping.encode(&conflict);
            let mut dram = DramSystem::new(cfg);
            dram.enqueue(MemRequest::new(0, ReqKind::Read, 0, 0))
                .unwrap();
            dram.enqueue(MemRequest::new(1, ReqKind::Read, conflict_addr, 0))
                .unwrap();
            for i in 2..20u64 {
                dram.enqueue(MemRequest::new(i, ReqKind::Read, i * stride, 0))
                    .unwrap();
            }
            let mut last = 0;
            for _ in 0..100_000 {
                for c in dram.tick() {
                    last = last.max(c.finish_cycle);
                }
                if dram.is_idle() {
                    break;
                }
            }
            last
        };
        let frfcfs = run(false);
        let fcfs = run(true);
        assert!(fcfs >= frfcfs, "fcfs {fcfs} vs fr-fcfs {frfcfs}");
    }

    #[test]
    fn all_requests_complete_random_mix() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        let total = 500u64;
        let mut issued = 0u64;
        let mut completed = std::collections::HashSet::new();
        let mut t = 0u64;
        while completed.len() < total as usize && t < 2_000_000 {
            if issued < total && rng.gen_bool(0.3) {
                let kind = if rng.gen_bool(0.3) {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let addr = rng.gen_range(0..(1u64 << 32)) & !63;
                if dram.enqueue(MemRequest::new(issued, kind, addr, t)).is_ok() {
                    issued += 1;
                }
            }
            for c in dram.tick() {
                assert!(completed.insert(c.id), "duplicate completion {}", c.id);
            }
            t += 1;
        }
        assert_eq!(completed.len() as u64, total);
    }
}
