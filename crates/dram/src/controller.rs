//! FR-FCFS memory controller and channel timing engine.
//!
//! The controller exposes two advance interfaces over the same state
//! machine:
//!
//! * [`DramSystem::tick`] — the per-cycle reference: advance one memory
//!   cycle, issue at most one command, harvest due completions.
//! * the event-driven fast path — when the controller is
//!   [quiescent](DramSystem::is_quiescent) (the last tick performed no
//!   action and nothing was enqueued since), every issue condition is a
//!   monotone `now >= threshold` comparison against static timing
//!   registers, so [`DramSystem::next_activity_cycle`] can lower-bound
//!   the next cycle anything could happen and
//!   [`DramSystem::skip_idle_to`] jumps the clock there in O(banks)
//!   instead of O(cycles). Skipped cycles are provably no-ops, keeping
//!   command schedules and statistics bit-identical to the reference.
//!
//! # Incremental scheduling state
//!
//! Queued requests live in a dense arrival-ordered vector (so position
//! *is* FR-FCFS age), indexed by *per-bank eligibility FIFOs*: a row-hit
//! FIFO (requests targeting the bank's open row) and a row-miss FIFO
//! (requests needing a PRE and/or ACT first), maintained on enqueue,
//! column issue, precharge, and activate. Within one bank, command
//! readiness is uniform across an eligibility class, so each bank
//! contributes at most one candidate per scheduling pass (the front of
//! the relevant FIFO) and the FR-FCFS decision reduces to
//! "earliest-arrived ready candidate across banks" — O(banks) per tick
//! instead of O(queue length) rescans. Short queues (where touching
//! every bank would cost more than touching every request) are walked
//! directly; both paths are decision-identical.
//!
//! The original full-rescan scheduler is retained as
//! [`SchedulerMode::NaiveRescan`]; the differential tests drive both
//! implementations over the same traffic and require bit-identical
//! schedules.
//!
//! The same per-bank state feeds the event bounds: each bank caches a
//! lower bound on its earliest possible READ column command. Timing
//! registers only ratchet upward as commands issue, so a cached bound
//! stays valid until it expires; only a read enqueue to that specific
//! bank (which can genuinely lower the bank's true bound) invalidates it
//! early. [`DramSystem::next_read_issue_cycle`] folds the per-bank
//! bounds into a controller-level minimum, so invalidation is narrowed
//! to the banks actually touched.
//!
//! # The decision bound: event-izing the *busy* path
//!
//! Quiescence only covers idle stretches. A saturated channel is never
//! quiescent, yet most of its ticks are still no-ops — every candidate
//! command is waiting out some timing threshold. The *decision bound*
//! ([`DramSystem::next_decision_cycle`]) covers this case: for each
//! candidate command of the currently scheduled queue it takes the
//! **conjunction** of the thresholds that gate it (earliest cycle all of
//! them hold, past-due ones clamping to the next cycle), then folds in
//! completion pops, refresh-scan actions, drain-hysteresis flips, and
//! anti-starvation crossings. The result is a lower bound on the next
//! non-no-op tick that is valid in *any* state, so
//! [`DramSystem::tick_until`] can jump between decision cycles while the
//! channel is busy. Candidates suppressed by refresh blackouts, FCFS
//! ordering, anti-starvation, or bus-turnaround bubbles are included
//! anyway: suppression only delays an issue, so at worst the bound wakes
//! a tick early and executes the same no-op tick the per-cycle reference
//! executed — never skips a decision. Per-bank conjunctions are cached
//! ([`ratchet argument`](DramSystem::next_read_issue_cycle) as above,
//! tagged by queue kind so drain flips simply miss), and the global
//! bound is memoized across no-op ticks, which cannot change scheduler
//! state.

use std::cell::Cell;
use std::collections::VecDeque;

use sim_kernel::{fold_next_event, fold_ready_event, Advance, EventQueue, FxHashMap, SimClock};

use crate::address::{AddressMapping, DecodedAddr};
use crate::bank::{Bank, Rank};
use crate::config::DramConfig;
use crate::request::{Completion, MemRequest, ReqKind};
use crate::stats::DramStats;
use crate::telemetry::ControllerTelemetry;

/// Error returned when the target queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnqueueError {
    /// The request that could not be accepted.
    pub rejected: MemRequest,
}

impl core::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "memory controller queue full (request {})",
            self.rejected.id
        )
    }
}

impl std::error::Error for EnqueueError {}

/// Queues at or below this length are scheduled by walking the requests
/// directly instead of the per-bank candidate scan: with so few requests,
/// touching every bank costs more than touching every request.
const SMALL_QUEUE_RESCAN: usize = 12;

#[derive(Debug, Clone)]
struct QueuedReq {
    req: MemRequest,
    decoded: DecodedAddr,
    flat_bank: usize,
    /// Did this request require an ACT (row miss) on its way to service?
    touched: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusDir {
    Idle,
    Read,
    Write,
}

/// Which scheduler implementation [`DramSystem::tick`] runs.
///
/// Both produce bit-identical command schedules; the rescan variant is
/// the retained per-tick O(queue) reference the differential tests pin
/// the incremental implementation against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Per-bank eligibility FIFOs, O(banks) per tick (the default).
    #[default]
    Incremental,
    /// Full queue rescan per tick (the original implementation).
    NaiveRescan,
}

/// One scheduler decision: the command [`DramSystem::tick`] would issue
/// this cycle and the queued request it acts for.
///
/// Exposed (together with [`DramSystem::next_sched_action`] and
/// [`DramSystem::next_sched_action_rescan`]) as the validation seam for
/// the differential tests; `idx` is the request's arrival position in
/// its queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedAction {
    /// Issue the request's column command (READ/WRITE), completing it.
    Column {
        /// Queue the request came from.
        kind: ReqKind,
        /// Arrival position of the request.
        idx: usize,
    },
    /// Precharge the request's bank (row conflict).
    Precharge {
        /// Arrival position of the request.
        idx: usize,
    },
    /// Activate the request's row (bank closed).
    Activate {
        /// Arrival position of the request.
        idx: usize,
    },
}

/// Per-queue incremental scheduler state: the arrival-ordered request
/// vector plus per-bank eligibility FIFOs of indices into it.
///
/// Removal tombstones its slot instead of shifting the tail down, so a
/// column issue is O(1) rather than O(queue) — indices stay monotone in
/// arrival order (the FR-FCFS age comparisons are untouched) and the
/// vector is compacted once tombstones outnumber live entries.
#[derive(Debug)]
struct SchedQueue {
    /// Queued requests in arrival order (position = FR-FCFS age);
    /// `None` marks an issued entry's tombstone.
    q: Vec<Option<QueuedReq>>,
    /// Live (non-tombstone) entries in `q`.
    live: usize,
    /// Position at or after which the oldest live entry sits: slots
    /// below it are all tombstones (tombstones never resurrect, so the
    /// hint only ever advances between compactions). A `Cell` because
    /// the `&self` bound computations walk it forward.
    first_live: Cell<usize>,
    /// Per-flat-bank FIFO (arrival order) of indices of requests
    /// targeting the bank's open row.
    hits: Vec<VecDeque<u32>>,
    /// Per-flat-bank FIFO (arrival order) of indices of requests needing
    /// PRE/ACT first.
    misses: Vec<VecDeque<u32>>,
    /// Queued requests per bank (hits + misses).
    bank_count: Vec<u32>,
    /// Bit `fb` set iff `hits[fb]` is nonempty. The scheduler's hot
    /// passes run every busy cycle and most banks are empty most of the
    /// time, so they walk set bits instead of sweeping every FIFO header.
    hit_mask: u64,
    /// Bit `fb` set iff `misses[fb]` is nonempty.
    miss_mask: u64,
}

impl SchedQueue {
    fn new(total_banks: usize) -> Self {
        assert!(
            total_banks <= 64,
            "bank-occupancy masks require at most 64 banks per channel"
        );
        Self {
            q: Vec::new(),
            live: 0,
            first_live: Cell::new(0),
            hits: vec![VecDeque::new(); total_banks],
            misses: vec![VecDeque::new(); total_banks],
            bank_count: vec![0; total_banks],
            hit_mask: 0,
            miss_mask: 0,
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The queued request at arrival position `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is a tombstone — callers only hold indices of
    /// live entries (FIFO fronts and iteration positions).
    fn req(&self, idx: usize) -> &QueuedReq {
        self.q[idx].as_ref().expect("index refers to a live entry")
    }

    fn req_mut(&mut self, idx: usize) -> &mut QueuedReq {
        self.q[idx].as_mut().expect("index refers to a live entry")
    }

    /// Live entries with their arrival positions, oldest first.
    fn iter(&self) -> impl Iterator<Item = (usize, &QueuedReq)> {
        self.q
            .iter()
            .enumerate()
            .skip(self.first_live.get())
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
    }

    /// The oldest live entry and its arrival position, advancing the
    /// first-live hint over any tombstones in front of it.
    fn oldest(&self) -> Option<(usize, &QueuedReq)> {
        let mut i = self.first_live.get();
        while i < self.q.len() {
            if let Some(e) = &self.q[i] {
                self.first_live.set(i);
                return Some((i, e));
            }
            i += 1;
        }
        self.first_live.set(i);
        None
    }

    /// Accepts a newly enqueued entry (its index is the current tail, so
    /// push_back keeps every FIFO in arrival order).
    fn push(&mut self, entry: QueuedReq, is_hit: bool) {
        let idx = self.q.len() as u32;
        let fb = entry.flat_bank;
        if is_hit {
            self.hits[fb].push_back(idx);
            self.hit_mask |= 1 << fb;
        } else {
            self.misses[fb].push_back(idx);
            self.miss_mask |= 1 << fb;
        }
        self.bank_count[fb] += 1;
        self.q.push(Some(entry));
        self.live += 1;
    }

    /// Removes an issued entry, leaving a tombstone in its slot so every
    /// other live index stays valid. Column commands only ever issue for
    /// the oldest row hit of a bank, so the index is the front of that
    /// bank's hit FIFO.
    fn remove_issued_hit(&mut self, idx: usize) -> QueuedReq {
        let entry = self.q[idx].take().expect("issued index is live");
        let fb = entry.flat_bank;
        debug_assert_eq!(self.hits[fb].front(), Some(&(idx as u32)));
        self.hits[fb].pop_front();
        if self.hits[fb].is_empty() {
            self.hit_mask &= !(1 << fb);
        }
        self.bank_count[fb] -= 1;
        self.live -= 1;
        if self.live == 0 {
            // Every FIFO is empty: restart arrival positions from zero.
            self.q.clear();
            self.first_live.set(0);
        } else if self.q.len() >= 16 && self.q.len() >= self.live * 2 {
            self.compact();
        }
        entry
    }

    /// Drops tombstones, renumbering every FIFO through the (monotone,
    /// hence order-preserving) old-to-new position map. Triggered once
    /// tombstones outnumber live entries, so the O(queue) cost amortizes
    /// to O(1) per removal.
    fn compact(&mut self) {
        let mut map = vec![u32::MAX; self.q.len()];
        let mut dense = Vec::with_capacity(self.q.len());
        for (i, slot) in self.q.iter_mut().enumerate() {
            if let Some(e) = slot.take() {
                map[i] = dense.len() as u32;
                dense.push(Some(e));
            }
        }
        self.q = dense;
        for fifo in self.hits.iter_mut().chain(self.misses.iter_mut()) {
            for v in fifo.iter_mut() {
                *v = map[*v as usize];
            }
        }
        self.first_live.set(0);
    }

    /// Reclassifies a bank's entries after an ACT opened `row`: misses
    /// targeting the new row become hits (the hit FIFO is empty — the
    /// bank was closed).
    fn on_activate(&mut self, flat_bank: usize, row: u32) {
        debug_assert!(self.hits[flat_bank].is_empty());
        let old = std::mem::take(&mut self.misses[flat_bank]);
        for idx in old {
            if self.req(idx as usize).decoded.row == row {
                self.hits[flat_bank].push_back(idx);
            } else {
                self.misses[flat_bank].push_back(idx);
            }
        }
        self.set_masks(flat_bank);
    }

    /// Reclassifies a bank's entries after a PRE closed the row: former
    /// hits merge back into the miss FIFO in arrival order.
    fn on_precharge(&mut self, flat_bank: usize) {
        if self.hits[flat_bank].is_empty() {
            return;
        }
        let hits = std::mem::take(&mut self.hits[flat_bank]);
        let misses = std::mem::take(&mut self.misses[flat_bank]);
        let mut merged = VecDeque::with_capacity(hits.len() + misses.len());
        let mut hi = hits.into_iter().peekable();
        let mut mi = misses.into_iter().peekable();
        loop {
            match (hi.peek(), mi.peek()) {
                (Some(&h), Some(&m)) => {
                    if h < m {
                        merged.push_back(hi.next().expect("peeked"));
                    } else {
                        merged.push_back(mi.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push_back(hi.next().expect("peeked")),
                (None, Some(_)) => merged.push_back(mi.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.misses[flat_bank] = merged;
        self.set_masks(flat_bank);
    }

    /// Re-derives `flat_bank`'s occupancy-mask bits from its FIFOs.
    fn set_masks(&mut self, flat_bank: usize) {
        let bit = 1 << flat_bank;
        if self.hits[flat_bank].is_empty() {
            self.hit_mask &= !bit;
        } else {
            self.hit_mask |= bit;
        }
        if self.misses[flat_bank].is_empty() {
            self.miss_mask &= !bit;
        } else {
            self.miss_mask |= bit;
        }
    }
}

/// One DDR4 channel: banks, ranks, queues, scheduler, and data bus.
///
/// Drive it with [`DramSystem::enqueue`] and advance time one memory-clock
/// cycle at a time with [`DramSystem::tick`], which returns the requests
/// whose final data beat transferred during that cycle.
#[derive(Debug)]
pub struct DramSystem {
    cfg: DramConfig,
    mapping: AddressMapping,
    clock: SimClock,
    banks: Vec<Bank>,
    ranks: Vec<Rank>,
    read_sched: SchedQueue,
    write_sched: SchedQueue,
    /// Line address -> queued write count (O(1) store-forward probe).
    write_lines: FxHashMap<u64, u32>,
    scheduler_mode: SchedulerMode,
    draining_writes: bool,
    bus_busy_until: u64,
    bus_dir: BusDir,
    bus_rank: u32,
    pending: EventQueue<Completion>,
    stats: DramStats,
    /// Advance-policy accounting + decision-cause attribution. Outside
    /// `stats` because the two advance policies disagree on it by
    /// design (see [`ControllerTelemetry`]); plain per-instance `u64`s,
    /// so recording is free of atomics and provably non-perturbing.
    telemetry: ControllerTelemetry,
    /// Opt-in sim-time windowed series recorder: epochs the telemetry
    /// attribution, per-bank issue counts, and occupancy integrals.
    /// `None` (the default) keeps the hot path to one branch; like
    /// `telemetry` it lives outside every compared struct.
    series: Option<crate::series::DramSeries>,
    /// Age (cycles) beyond which the oldest request pre-empts row hits.
    starvation_limit: u64,
    /// True when the last tick performed no action and nothing was
    /// enqueued since: every issue condition is then waiting on a static
    /// timing threshold, so idle cycles may be skipped.
    quiescent: bool,
    /// Memoized [`Self::next_activity_cycle`] bound. The threshold set is
    /// static across a quiescent stretch, so the scan runs once per
    /// stretch; any enqueue or active tick invalidates it.
    next_activity_cache: Cell<Option<u64>>,
    /// Memoized controller-level [`Self::next_read_issue_cycle`] bound
    /// (raw, unclamped). Timing registers only ratchet upward, so a
    /// computed bound stays a valid lower bound until it expires; only a
    /// read enqueue (which can genuinely lower the true next issue)
    /// invalidates it early.
    next_read_issue_cache: Cell<Option<u64>>,
    /// Per-bank raw lower bound on the bank's earliest READ column issue.
    /// Same ratchet argument per bank: invalidated only by a read enqueue
    /// to that bank, re-derived lazily on expiry.
    read_bank_bound: Vec<Cell<Option<u64>>>,
    /// Memoized [`Self::next_decision_cycle`] bound (always strictly
    /// after the cycle it was computed at). Invalidated by any enqueue
    /// and by every non-no-op tick; no-op ticks cannot change scheduler
    /// state, so an unexpired value stays a valid lower bound across
    /// them.
    next_decision_cache: Cell<Option<u64>>,
    /// Per-bank lower bound on the bank's earliest command issue
    /// (column, PRE, or ACT) for one queue, tagged with the queue kind —
    /// a drain flip changes the candidate set, so entries computed for
    /// the other mode simply miss. Invalidated by an enqueue to the bank
    /// and by activate/precharge reclassification; commands at other
    /// banks only ratchet the shared rank registers upward, which keeps
    /// cached values valid lower bounds, and any command at this bank
    /// was itself a cached candidate, so the cache has already expired.
    decision_bank_bound: Vec<Cell<Option<(ReqKind, u64)>>>,
    /// False when the write-drain predicate provably cannot fire: it
    /// reads only the queue lengths and the current mode, so after an
    /// evaluation that did not flip it stays false until a length
    /// changes (enqueue or column issue). A flip leaves it set — the
    /// opposite predicate can hold immediately (an empty read queue over
    /// a sub-watermark write backlog oscillates every cycle).
    drain_dirty: bool,
    /// Earliest `refresh_due` across ranks (fast no-refresh-work exit).
    refresh_due_min: u64,
    /// True while any rank has a refresh pending.
    refresh_pending_any: bool,
    /// Cycle up to which the occupancy histograms have been credited.
    /// Queue lengths only change on enqueue and column issue, so spans of
    /// constant occupancy are recorded at those events (and folded in on
    /// [`Self::stats`]) instead of touching the histograms every tick.
    occupancy_credited_to: u64,
    /// log2(banks per rank) — flat-bank → rank without a division.
    rank_shift: u32,
    /// log2(banks per group) — flat-bank → bank-group without a division.
    bg_shift: u32,
    /// Mask selecting the within-rank part of a flat bank id.
    bank_in_rank_mask: usize,
}

impl DramSystem {
    /// Creates a channel from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: DramConfig) -> Self {
        cfg.validate().expect("invalid DRAM configuration");
        let mapping = AddressMapping::new(&cfg);
        let total_banks = cfg.total_banks() as usize;
        let banks = vec![Bank::default(); total_banks];
        let ranks: Vec<Rank> = (0..cfg.ranks)
            .map(|_| Rank::new(cfg.bank_groups, cfg.t_refi))
            .collect();
        let refresh_due_min = ranks
            .iter()
            .map(|r| r.refresh_due)
            .min()
            .unwrap_or(u64::MAX);
        let banks_per_rank = cfg.bank_groups * cfg.banks_per_group;
        Self {
            rank_shift: banks_per_rank.trailing_zeros(),
            bg_shift: cfg.banks_per_group.trailing_zeros(),
            bank_in_rank_mask: banks_per_rank as usize - 1,
            mapping,
            clock: SimClock::new(),
            banks,
            ranks,
            read_sched: SchedQueue::new(total_banks),
            write_sched: SchedQueue::new(total_banks),
            write_lines: FxHashMap::default(),
            scheduler_mode: SchedulerMode::Incremental,
            draining_writes: false,
            bus_busy_until: 0,
            bus_dir: BusDir::Idle,
            bus_rank: 0,
            pending: EventQueue::new(),
            stats: DramStats::default(),
            telemetry: ControllerTelemetry::default(),
            series: None,
            starvation_limit: 2_000,
            quiescent: false,
            next_activity_cache: Cell::new(None),
            next_read_issue_cache: Cell::new(None),
            read_bank_bound: vec![Cell::new(None); total_banks],
            next_decision_cache: Cell::new(None),
            decision_bank_bound: vec![Cell::new(None); total_banks],
            drain_dirty: true,
            refresh_due_min,
            refresh_pending_any: false,
            occupancy_credited_to: 0,
            cfg,
        }
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Current memory-clock cycle.
    pub fn cycle(&self) -> u64 {
        self.clock.now()
    }

    /// Statistics so far.
    ///
    /// The queue-occupancy histograms are maintained from the scheduler's
    /// incremental length counters — spans of constant occupancy are
    /// credited when a length changes, never by walking the queues — so
    /// this folds the still-open span in before returning.
    pub fn stats(&self) -> DramStats {
        let mut s = self.stats.clone();
        s.record_occupancy(
            self.read_sched.len(),
            self.write_sched.len(),
            self.clock.now() - self.occupancy_credited_to,
        );
        s
    }

    /// Advance-policy counters and decision-cause attribution so far.
    /// Unlike [`Self::stats`] these are *not* identical across advance
    /// policies (they measure the policy); the per-cause buckets always
    /// sum to `decision_cycles`.
    pub fn telemetry(&self) -> ControllerTelemetry {
        self.telemetry
    }

    /// Turns on sim-time windowed series recording at `epoch_width`
    /// mem-cycles per epoch: the decision-cause attribution, per-bank
    /// scheduler command counts, and queue-occupancy integrals are
    /// bucketed into the epoch containing each event's own cycle.
    /// Zero-perturbation like [`Self::telemetry`]: plain per-instance
    /// `u64`s outside every compared struct, recorded only on ticks the
    /// controller executes anyway.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_width` is zero.
    pub fn enable_series(&mut self, epoch_width: u64) {
        self.series = Some(crate::series::DramSeries::new(
            epoch_width,
            self.banks.len(),
        ));
    }

    /// The recorded series so far (`None` unless
    /// [`Self::enable_series`] was called), with the open partial epoch
    /// and the uncredited occupancy tail folded in exactly as
    /// [`Self::stats`] folds its open occupancy span. Per-epoch sums of
    /// the named rows reconcile bit-exactly with [`Self::telemetry`].
    pub fn series_snapshot(&self) -> Option<secddr_telemetry::SeriesSnapshot> {
        let series = self.series.as_ref()?;
        let tail = self.clock.now() - self.occupancy_credited_to;
        Some(series.snapshot_with_tail(
            &self.telemetry,
            self.read_sched.len() as u64 * tail,
            self.write_sched.len() as u64 * tail,
        ))
    }

    /// Credits the span of cycles since the last occupancy change at the
    /// current queue lengths. Must run before any length change.
    fn credit_occupancy(&mut self) {
        let now = self.clock.now();
        let span = now - self.occupancy_credited_to;
        if span > 0 {
            self.stats
                .record_occupancy(self.read_sched.len(), self.write_sched.len(), span);
            if let Some(series) = &mut self.series {
                series.read_q_integral += self.read_sched.len() as u64 * span;
                series.write_q_integral += self.write_sched.len() as u64 * span;
            }
            self.occupancy_credited_to = now;
        }
    }

    /// Number of queued reads.
    pub fn read_queue_len(&self) -> usize {
        self.read_sched.len()
    }

    /// Number of queued writes.
    pub fn write_queue_len(&self) -> usize {
        self.write_sched.len()
    }

    /// True when no request is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.read_sched.is_empty() && self.write_sched.is_empty() && self.pending.is_empty()
    }

    /// True when the last tick performed no action and nothing was
    /// enqueued since — the precondition for the event-driven skip.
    pub fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    /// Selects which scheduler implementation [`Self::tick`] runs
    /// (validation seam — both modes are bit-identical by construction
    /// and by the differential tests).
    pub fn set_scheduler_mode(&mut self, mode: SchedulerMode) {
        self.scheduler_mode = mode;
    }

    /// Finish cycle of the earliest in-flight (already issued) request,
    /// if any.
    pub fn next_pending_completion(&self) -> Option<u64> {
        self.pending.peek_time()
    }

    fn sched(&self, kind: ReqKind) -> &SchedQueue {
        match kind {
            ReqKind::Read => &self.read_sched,
            ReqKind::Write => &self.write_sched,
        }
    }

    #[inline]
    fn rank_and_bg_of(&self, flat_bank: usize) -> (usize, usize) {
        (
            flat_bank >> self.rank_shift,
            (flat_bank & self.bank_in_rank_mask) >> self.bg_shift,
        )
    }

    /// Lower bound (strictly after [`Self::cycle`]) on the next cycle at
    /// which [`Self::tick`] could perform any action, assuming the
    /// controller [is quiescent](Self::is_quiescent).
    ///
    /// Every issue condition in the scheduler is a conjunction of
    /// `now >= threshold` comparisons against timing registers that only
    /// change when a command issues. After a no-op tick, each candidate
    /// action therefore has at least one unsatisfied threshold in the set
    /// collected here, so nothing can happen before the earliest of them.
    pub fn next_activity_cycle(&self) -> u64 {
        let now = self.clock.now();
        if let Some(cached) = self.cached_next_activity() {
            return cached;
        }
        let bound = self.compute_next_activity(now);
        self.next_activity_cache.set(Some(bound));
        bound
    }

    /// The memoized [`Self::next_activity_cycle`] bound if one is still
    /// valid, without computing anything — callers advancing in small
    /// windows use this to skip for free and only pay for a fresh bound
    /// when the window is wide enough to amortize it.
    pub fn cached_next_activity(&self) -> Option<u64> {
        self.next_activity_cache
            .get()
            .filter(|&c| c > self.clock.now())
    }

    /// Folds every timing threshold a request queued at `flat_bank` can
    /// be waiting on (bank registers plus its rank/bank-group registers).
    fn fold_bank_thresholds(&self, now: u64, bound: &mut u64, flat_bank: usize) {
        let bank = &self.banks[flat_bank];
        fold_next_event(now, bound, bank.next_act);
        fold_next_event(now, bound, bank.next_pre);
        fold_next_event(now, bound, bank.next_read);
        fold_next_event(now, bound, bank.next_write);
        let (r, bg) = self.rank_and_bg_of(flat_bank);
        let rank = &self.ranks[r];
        fold_next_event(now, bound, rank.next_act_any);
        fold_next_event(now, bound, rank.next_col_any);
        fold_next_event(now, bound, rank.next_read_any);
        fold_next_event(now, bound, rank.faw_ready(self.cfg.t_faw));
        fold_next_event(now, bound, rank.next_act_same_bg[bg]);
        fold_next_event(now, bound, rank.next_col_same_bg[bg]);
        fold_next_event(now, bound, rank.next_read_same_bg[bg]);
    }

    fn compute_next_activity(&self, now: u64) -> u64 {
        let mut bound = u64::MAX;
        // In-flight data beats land at their precomputed finish cycles.
        if let Some(t) = self.pending.peek_time() {
            fold_next_event(now, &mut bound, t);
        }
        // The scheduler only ever touches banks with queued requests. For
        // short queues (the common stall case) walking the requests beats
        // sweeping the bank array; otherwise scan the per-bank occupancy
        // counters.
        let queued = self.read_sched.len() + self.write_sched.len();
        if queued <= SMALL_QUEUE_RESCAN {
            for q in [&self.read_sched, &self.write_sched] {
                for (_, entry) in q.iter() {
                    self.fold_bank_thresholds(now, &mut bound, entry.flat_bank);
                }
            }
        } else {
            let mut m = self.read_sched.hit_mask
                | self.read_sched.miss_mask
                | self.write_sched.hit_mask
                | self.write_sched.miss_mask;
            while m != 0 {
                let fb = m.trailing_zeros() as usize;
                m &= m - 1;
                self.fold_bank_thresholds(now, &mut bound, fb);
            }
        }
        // Refresh management runs regardless of the queues: the due
        // time itself, plus — once a refresh is pending — the
        // precharge/REF readiness of that rank's banks.
        let bpr = (self.cfg.bank_groups * self.cfg.banks_per_group) as usize;
        for (r, rank) in self.ranks.iter().enumerate() {
            fold_next_event(now, &mut bound, rank.refresh_due);
            if rank.refresh_pending {
                for bank in &self.banks[r * bpr..(r + 1) * bpr] {
                    fold_next_event(now, &mut bound, bank.next_act);
                    fold_next_event(now, &mut bound, bank.next_pre);
                }
            }
        }
        // Data-bus release: a column command needs `now + lat >=
        // bus_busy_until + bubble`; cover every (latency, bubble) combo.
        for lat in [self.cfg.t_cl, self.cfg.t_cwl] {
            for bubble in [0u64, 2] {
                let t = (self.bus_busy_until + bubble).saturating_sub(lat);
                fold_next_event(now, &mut bound, t);
            }
        }
        // Anti-starvation kicks in when the oldest request's age crosses
        // the limit, which changes scheduling even without a new command.
        for q in [&self.read_sched, &self.write_sched] {
            if let Some((_, oldest)) = q.oldest() {
                fold_next_event(
                    now,
                    &mut bound,
                    oldest.req.enqueue_cycle + self.starvation_limit,
                );
            }
        }
        bound.max(now + 1)
    }

    /// Lower bound on the next cycle a READ column command can issue —
    /// the moment read-queue capacity frees and the earliest any queued
    /// read's data can start moving.
    ///
    /// Unlike [`Self::next_activity_cycle`] this is valid in any state
    /// (not just quiescent): every term reads a timing register that only
    /// ratchets upward as commands issue, so current values lower-bound
    /// future readiness. Refresh blackouts are ignored (they only push
    /// the true issue later). Returns `u64::MAX` when no read is queued.
    pub fn next_read_issue_cycle(&self) -> u64 {
        if self.read_sched.is_empty() {
            return u64::MAX;
        }
        let now = self.clock.now();
        self.next_read_issue_raw(now).max(now + 1)
    }

    /// The unclamped bound behind [`Self::next_read_issue_cycle`]: may be
    /// at or before `now`, in which case a READ column command could be
    /// ready this very cycle.
    fn next_read_issue_raw(&self, now: u64) -> u64 {
        if let Some(cached) = self.next_read_issue_cache.get() {
            if cached > now {
                return cached;
            }
        }
        let bound = self.compute_next_read_issue(now);
        self.next_read_issue_cache.set(Some(bound));
        bound
    }

    fn compute_next_read_issue(&self, now: u64) -> u64 {
        // While draining, no read issues until the write queue falls to
        // the low watermark: `surplus` more writes must issue, their data
        // bursts occupy the bus at least `write_burst_cycles` apart, and
        // the earliest schedule starts a write this very cycle — so the
        // last one issues no sooner than `(surplus - 1)` spacings out and
        // a read column follows at the next tick. (`surplus *
        // write_burst_cycles` would overshoot by `write_burst_cycles - 1`;
        // this bound is consumed as an exact no-read-possible gate by
        // [`Self::pick_action_incremental`], so an overshoot would delay
        // real issues, not just wake sleepers late.)
        let floor = if self.draining_writes {
            let surplus = self
                .write_sched
                .len()
                .saturating_sub(self.cfg.write_drain_lo) as u64;
            now + surplus.saturating_sub(1) * self.cfg.write_burst_cycles + 1
        } else {
            now
        };
        let mut bound = u64::MAX;
        let mut m = self.read_sched.hit_mask | self.read_sched.miss_mask;
        while m != 0 {
            let fb = m.trailing_zeros() as usize;
            m &= m - 1;
            let per_bank = match self.read_bank_bound[fb].get() {
                Some(b) if b > now => b,
                _ => {
                    let b = self.compute_bank_read_issue(fb);
                    self.read_bank_bound[fb].set(Some(b));
                    b
                }
            };
            bound = bound.min(per_bank);
        }
        bound.max(floor)
    }

    /// Earliest cycle any of `flat_bank`'s queued reads could issue its
    /// column command. Within a bank, readiness is uniform across an
    /// eligibility class, so this inspects the class fronts rather than
    /// every request.
    fn compute_bank_read_issue(&self, flat_bank: usize) -> u64 {
        let q = &self.read_sched;
        let bank = &self.banks[flat_bank];
        let (r, bg) = self.rank_and_bg_of(flat_bank);
        let rank = &self.ranks[r];
        let mut t = u64::MAX;
        if !q.hits[flat_bank].is_empty() {
            t = t.min(bank.next_read);
        }
        if !q.misses[flat_bank].is_empty() {
            let m = match bank.open_row {
                // Conflict: PRE, tRP, ACT, tRCD before the column command.
                Some(_) => bank.next_pre + self.cfg.t_rp + self.cfg.t_rcd,
                // Closed: ACT constraints then tRCD.
                None => {
                    bank.next_act
                        .max(rank.next_act_any)
                        .max(rank.next_act_same_bg[bg])
                        .max(rank.faw_ready(self.cfg.t_faw))
                        + self.cfg.t_rcd
                }
            };
            t = t.min(m);
        }
        t.max(rank.next_read_any)
            .max(rank.next_read_same_bg[bg])
            .max(rank.next_col_any)
            .max(rank.next_col_same_bg[bg])
            .max(self.bus_busy_until.saturating_sub(self.cfg.t_cl))
    }

    /// Lower bound on the next cycle any queued (not yet issued) READ's
    /// final data beat can land: issue, CAS latency, then the burst.
    pub fn next_read_finish_cycle(&self) -> u64 {
        self.next_read_issue_cycle()
            .saturating_add(self.cfg.t_cl + self.cfg.read_burst_cycles)
    }

    /// Lower bound (strictly after [`Self::cycle`]) on the next cycle at
    /// which [`Self::tick`] could do anything at all — issue a command,
    /// flip drain mode, pop a completion, or cross a refresh or
    /// starvation boundary — valid in **any** state, busy or quiescent.
    ///
    /// Where [`Self::next_activity_cycle`] folds every *individual*
    /// threshold (and therefore requires quiescence, since an
    /// already-satisfied threshold is dropped even though its candidate
    /// may merely be deprioritized this cycle), this bound takes the
    /// conjunction per candidate command: the earliest cycle all of its
    /// thresholds hold, past-due ones clamping to the next cycle. A
    /// ready-but-suppressed candidate (refresh blackout, FCFS ordering,
    /// anti-starvation, turnaround bubble) keeps the bound at `now + 1`:
    /// suppression only delays an issue, so the cost is a spurious
    /// wake-up executing the same no-op tick the per-cycle reference
    /// executed — never a missed decision.
    pub fn next_decision_cycle(&self) -> u64 {
        let now = self.clock.now();
        if let Some(cached) = self.next_decision_cache.get() {
            if cached > now {
                return cached;
            }
        }
        let bound = self.compute_next_decision(now);
        self.next_decision_cache.set(Some(bound));
        bound
    }

    fn compute_next_decision(&self, now: u64) -> u64 {
        // A drain flip is a scheduling change with no timing threshold
        // attached: if the predicate holds on the current lengths it
        // fires on the very next tick. (`drain_dirty == false` proves it
        // cannot hold — see `update_drain_mode`.)
        if self.drain_dirty && self.drain_would_flip() {
            return now + 1;
        }
        let mut bound = u64::MAX;
        // In-flight data beats pop at their precomputed finish cycles.
        if let Some(t) = self.pending.peek_time() {
            fold_ready_event(now, &mut bound, t);
        }
        self.fold_refresh_decision(now, &mut bound);
        // Scheduler candidates, from the currently scheduled queue only:
        // the inactive queue cannot issue before a drain flip, and flips
        // are covered above (plus by cache invalidation on every length
        // change).
        if let Some(kind) = self.sched_kind() {
            let q = self.sched(kind);
            let mut m = q.hit_mask | q.miss_mask;
            while m != 0 {
                let fb = m.trailing_zeros() as usize;
                m &= m - 1;
                let per_bank = match self.decision_bank_bound[fb].get() {
                    Some((k, b)) if k == kind && b > now => b,
                    _ => {
                        let b = self.compute_bank_decision(kind, fb);
                        self.decision_bank_bound[fb].set(Some((kind, b)));
                        b
                    }
                };
                fold_ready_event(now, &mut bound, per_bank);
                if bound == now + 1 {
                    return bound;
                }
            }
            // Anti-starvation activates when the oldest request's age
            // first exceeds the limit, restricting scheduling to that
            // request — a decision change without any command issuing.
            if let Some((_, oldest)) = q.oldest() {
                fold_ready_event(
                    now,
                    &mut bound,
                    oldest.req.enqueue_cycle + self.starvation_limit + 1,
                );
            }
        }
        bound
    }

    /// Folds the refresh machinery's next possible action into `bound`,
    /// mirroring [`Self::issue_refresh`]'s serialized rank scan: due
    /// crossings arm ranks (and gate column issue, so the crossing cycle
    /// itself must execute), and the scan's first pending rank acts via
    /// its first open bank's precharge or, with all banks closed, a REF
    /// once every tRP/tRFC window has elapsed. Later pending ranks wait
    /// behind the first — their resolution starts no earlier than its.
    fn fold_refresh_decision(&self, now: u64, bound: &mut u64) {
        if !self.refresh_pending_any {
            if self.refresh_due_min != u64::MAX {
                fold_ready_event(now, bound, self.refresh_due_min);
            }
            return;
        }
        let bpr = (self.cfg.bank_groups * self.cfg.banks_per_group) as usize;
        let mut parked = false;
        for (r, rank) in self.ranks.iter().enumerate() {
            if !rank.refresh_pending {
                fold_ready_event(now, bound, rank.refresh_due);
                continue;
            }
            if parked {
                continue;
            }
            parked = true;
            let base = r * bpr;
            match (base..base + bpr).find(|&b| self.banks[b].open_row.is_some()) {
                Some(b) => fold_ready_event(now, bound, self.banks[b].next_pre),
                None => {
                    let ready = (base..base + bpr)
                        .map(|b| self.banks[b].next_act)
                        .max()
                        .unwrap_or(now);
                    fold_ready_event(now, bound, ready);
                }
            }
        }
    }

    /// Earliest cycle any of `flat_bank`'s requests in the `kind` queue
    /// could issue a command: the bank's oldest row hit's column command,
    /// or its miss front's PRE (row open) / ACT (row closed). Each
    /// candidate is the conjunction of the thresholds
    /// [`Self::col_cmd_ready`] / [`Self::act_ready`] check; refresh
    /// blackouts and turnaround bubbles are deliberately omitted (they
    /// only delay, so omission keeps this a lower bound).
    fn compute_bank_decision(&self, kind: ReqKind, flat_bank: usize) -> u64 {
        let q = self.sched(kind);
        let bank = &self.banks[flat_bank];
        let (r, bg) = self.rank_and_bg_of(flat_bank);
        let rank = &self.ranks[r];
        let mut t = u64::MAX;
        if !q.hits[flat_bank].is_empty() {
            let col = match kind {
                ReqKind::Read => bank
                    .next_read
                    .max(rank.next_read_any)
                    .max(rank.next_read_same_bg[bg])
                    .max(self.bus_busy_until.saturating_sub(self.cfg.t_cl)),
                ReqKind::Write => bank
                    .next_write
                    .max(self.bus_busy_until.saturating_sub(self.cfg.t_cwl)),
            };
            t = t.min(col.max(rank.next_col_any).max(rank.next_col_same_bg[bg]));
        }
        if !q.misses[flat_bank].is_empty() {
            let prep = match bank.open_row {
                Some(_) => bank.next_pre,
                None => bank
                    .next_act
                    .max(rank.next_act_any)
                    .max(rank.next_act_same_bg[bg])
                    .max(rank.faw_ready(self.cfg.t_faw)),
            };
            t = t.min(prep);
        }
        t
    }

    /// Fast-forwards over a span proven decision-free, crediting the
    /// cycle counter and the busy-cycle counter (queue contents and
    /// in-flight completions are constant across such a span, so its
    /// idleness is too; the occupancy histograms are credited lazily by
    /// [`Self::stats`] for the same reason).
    fn skip_span_to(&mut self, cycle: u64) {
        let skipped = self.clock.skip_to(cycle);
        if skipped > 0 {
            // Roll the series *before* crediting: a span skipped across
            // a window boundary is credited to the window it lands in.
            if let Some(series) = &mut self.series {
                series.roll(cycle, &self.telemetry);
            }
            self.stats.cycles += skipped;
            if !self.is_idle() {
                self.telemetry.busy_cycles += skipped;
            }
        }
    }

    /// Jumps the clock to just before the next decision cycle, or to
    /// `target` when no decision can occur at or before it. On return,
    /// either `cycle() == target` (nothing can happen in the window) or
    /// the next [`Self::tick`] executes a potential decision cycle.
    pub fn skip_to_next_decision(&mut self, target: u64) {
        let now = self.clock.now();
        if now >= target {
            return;
        }
        let next = match self.next_decision_cache.get().filter(|&c| c > now) {
            Some(cached) => cached,
            // A one-cycle window is never worth a fresh bound: ticking a
            // possibly-no-op cycle is cheaper and identical (the
            // reference ticks it too). A still-valid memoized bound was
            // consulted for free above.
            None if target <= now + 1 => return,
            None => self.next_decision_cycle(),
        };
        if next > target {
            self.skip_span_to(target);
        } else if next > now + 1 {
            self.skip_span_to(next - 1);
        }
    }

    /// Advances to `target` executing only decision cycles, returning
    /// every completion tagged with the cycle it landed on.
    ///
    /// Equivalent to `target - cycle()` sequential [`Self::tick`] calls
    /// — identical command schedules, statistics, and completion stream,
    /// pinned by the differential suites — but the provably no-op ticks
    /// in between are replaced by [`Self::skip_to_next_decision`] jumps,
    /// so a *busy* channel executes O(commands) ticks instead of
    /// O(cycles).
    pub fn tick_until(&mut self, target: u64) -> Vec<(u64, Completion)> {
        let mut done = Vec::new();
        while self.clock.now() < target {
            self.skip_to_next_decision(target);
            if self.clock.now() >= target {
                break;
            }
            let at = self.clock.now() + 1;
            for c in self.tick() {
                done.push((at, c));
            }
        }
        done
    }

    /// Fast-forwards the clock over cycles proven idle by
    /// [`Self::next_activity_cycle`], charging them to the cycle counter
    /// (and to the occupancy histograms — queue lengths are constant
    /// across a quiescent stretch).
    ///
    /// # Panics
    ///
    /// Panics if the controller is not quiescent or `cycle` is in the
    /// past.
    pub fn skip_idle_to(&mut self, cycle: u64) {
        assert!(
            self.quiescent,
            "skip_idle_to requires a quiescent controller"
        );
        self.skip_span_to(cycle);
    }

    /// Advances to `target`, returning every completion on the way.
    ///
    /// With [`Advance::ToNextEvent`] this rides [`Self::tick_until`],
    /// executing only decision cycles (busy or idle); with
    /// [`Advance::PerCycle`] it is exactly `target - cycle()` calls to
    /// [`Self::tick`]. Both produce identical schedules and stats.
    pub fn advance_to(&mut self, target: u64, advance: Advance) -> Vec<Completion> {
        if advance.is_event_driven() {
            return self
                .tick_until(target)
                .into_iter()
                .map(|(_, c)| c)
                .collect();
        }
        let mut done = Vec::new();
        while self.clock.now() < target {
            done.extend(self.tick());
        }
        done
    }

    /// Accepts a request into the appropriate queue.
    ///
    /// Reads that hit a queued write to the same line are served by store
    /// forwarding and complete on the next tick.
    ///
    /// # Errors
    ///
    /// Returns [`EnqueueError`] when the target queue is full; the caller
    /// should retry after draining some completions.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), EnqueueError> {
        let line_mask = !u64::from(self.cfg.line_bytes - 1);
        match req.kind {
            ReqKind::Read => {
                if self.write_lines.contains_key(&(req.addr & line_mask)) {
                    self.stats.forwarded_reads += 1;
                    self.stats.reads += 1;
                    let finish_cycle = self.clock.now() + 1;
                    self.pending.push(
                        finish_cycle,
                        Completion {
                            id: req.id,
                            kind: ReqKind::Read,
                            finish_cycle,
                            enqueue_cycle: req.enqueue_cycle,
                        },
                    );
                    self.quiescent = false;
                    self.next_activity_cache.set(None);
                    self.next_decision_cache.set(None);
                    return Ok(());
                }
                if self.read_sched.len() >= self.cfg.read_queue {
                    return Err(EnqueueError { rejected: req });
                }
                let decoded = self.mapping.decode(req.addr);
                let flat_bank = decoded.flat_bank(&self.cfg) as usize;
                let is_hit = self.banks[flat_bank].open_row == Some(decoded.row);
                self.credit_occupancy();
                self.read_sched.push(
                    QueuedReq {
                        req,
                        decoded,
                        flat_bank,
                        touched: false,
                    },
                    is_hit,
                );
                // A fresh read can genuinely lower the next-issue and
                // decision bounds — but only for its own bank.
                self.read_bank_bound[flat_bank].set(None);
                self.next_read_issue_cache.set(None);
                self.decision_bank_bound[flat_bank].set(None);
            }
            ReqKind::Write => {
                if self.write_sched.len() >= self.cfg.write_queue {
                    return Err(EnqueueError { rejected: req });
                }
                let decoded = self.mapping.decode(req.addr);
                let flat_bank = decoded.flat_bank(&self.cfg) as usize;
                let is_hit = self.banks[flat_bank].open_row == Some(decoded.row);
                self.credit_occupancy();
                *self.write_lines.entry(req.addr & line_mask).or_insert(0) += 1;
                self.write_sched.push(
                    QueuedReq {
                        req,
                        decoded,
                        flat_bank,
                        touched: false,
                    },
                    is_hit,
                );
                self.decision_bank_bound[flat_bank].set(None);
            }
        }
        self.quiescent = false;
        self.next_activity_cache.set(None);
        self.next_decision_cache.set(None);
        // A length change can satisfy the drain predicate.
        self.drain_dirty = true;
        Ok(())
    }

    /// Advances one memory-clock cycle, possibly issuing one command, and
    /// returns every completion whose final data beat lands this cycle.
    pub fn tick(&mut self) -> Vec<Completion> {
        let busy = !self.is_idle();
        let now = self.clock.tick();
        // Series epochs close on clock advance, before this tick records
        // anything, so everything below lands in `now`'s own epoch.
        if let Some(series) = &mut self.series {
            series.roll(now, &self.telemetry);
        }
        self.stats.cycles += 1;
        // Advance-policy accounting: this tick executes (a decision
        // cycle), and it covers one busy cycle when work was queued or
        // in flight at its start.
        self.telemetry.decision_cycles += 1;
        self.telemetry.busy_cycles += u64::from(busy);
        // A drain-mode flip counts as activity: it changes what the next
        // tick may issue without any timing threshold crossing, so the
        // idle-skip must not jump over the cycle after it.
        let drain_flipped = self.update_drain_mode();
        let (refreshed, issued_hit) = if self.issue_refresh() {
            (true, None)
        } else {
            (false, self.issue_scheduled())
        };
        let issued = refreshed || issued_hit.is_some();
        let mut done = Vec::new();
        while let Some((_, c)) = self.pending.pop_due(now) {
            done.push(c);
        }
        // Attribute the executed cycle to exactly one cause (commands
        // first — they are what the tick *did*; the passive causes rank
        // by how directly they explain a command-free wake-up), so the
        // cause buckets partition `decision_cycles` and their total
        // reconciles with it exactly.
        if refreshed {
            self.telemetry.causes.refresh += 1;
        } else if let Some(hit) = issued_hit {
            if hit {
                self.telemetry.causes.issue_hit += 1;
            } else {
                self.telemetry.causes.issue_miss += 1;
            }
        } else if !done.is_empty() {
            self.telemetry.causes.completion += 1;
        } else if drain_flipped {
            self.telemetry.causes.drain_flip += 1;
        } else if self.oldest_is_starving(now) {
            self.telemetry.causes.aging += 1;
        } else {
            self.telemetry.causes.noop += 1;
        }
        // A tick that changed nothing leaves every scheduling input
        // waiting on a static timing threshold.
        self.quiescent = !drain_flipped && !issued && done.is_empty();
        if !self.quiescent {
            self.next_activity_cache.set(None);
            self.next_decision_cache.set(None);
        }
        done
    }

    /// True when evaluating the drain hysteresis right now would flip
    /// the mode. Shared by [`Self::update_drain_mode`] and the decision
    /// bound (a flip is a scheduling change with no timing threshold).
    fn drain_would_flip(&self) -> bool {
        if self.draining_writes {
            self.write_sched.len() <= self.cfg.write_drain_lo
        } else {
            self.write_sched.len() >= self.cfg.write_drain_hi
                || (self.read_sched.is_empty() && !self.write_sched.is_empty())
        }
    }

    /// Updates write-drain hysteresis; returns true when the mode
    /// flipped.
    ///
    /// Hoisted out of the common tick: the predicate reads only the
    /// queue lengths and the mode, so while `drain_dirty` is false (no
    /// length change and no flip since the last evaluation) the answer
    /// is provably unchanged and the evaluation is skipped.
    fn update_drain_mode(&mut self) -> bool {
        if !self.drain_dirty {
            return false;
        }
        if self.drain_would_flip() {
            self.draining_writes = !self.draining_writes;
            // Stay dirty: the opposite predicate can hold immediately —
            // an empty read queue over a write backlog at or below the
            // low watermark re-enters drain mode every cycle.
            true
        } else {
            self.drain_dirty = false;
            false
        }
    }

    /// Handles refresh management; returns true if it used this cycle's
    /// command slot.
    fn issue_refresh(&mut self) -> bool {
        let now = self.clock.now();
        // Fast exit: nothing pending and nothing newly due — the scan
        // below would be a no-op.
        if !self.refresh_pending_any && now < self.refresh_due_min {
            return false;
        }
        for r in 0..self.ranks.len() {
            if now >= self.ranks[r].refresh_due {
                self.ranks[r].refresh_pending = true;
                self.refresh_pending_any = true;
            }
            if !self.ranks[r].refresh_pending {
                continue;
            }
            // Precharge any open bank in this rank (one command per cycle).
            let bpr = (self.cfg.bank_groups * self.cfg.banks_per_group) as usize;
            let base = r * bpr;
            for b in base..base + bpr {
                if self.banks[b].open_row.is_some() {
                    if now >= self.banks[b].next_pre {
                        self.banks[b].open_row = None;
                        self.banks[b].next_act = self.banks[b].next_act.max(now + self.cfg.t_rp);
                        self.stats.precharges += 1;
                        self.on_bank_precharged(b);
                        return true;
                    }
                    // An open bank not yet prechargeable: refresh
                    // management is intentionally serialized across
                    // ranks — the scan parks on its first pending rank
                    // until that rank's refresh completes, and later
                    // pending ranks wait their turn (at most one
                    // refresh-management command per cycle; earlier
                    // ranks crossing their due time can still pre-empt
                    // the parked rank on a later scan). The decision
                    // bound and `refresh_is_serialized_across_ranks`
                    // pin exactly this ordering.
                    return false;
                }
            }
            // All banks closed: issue REF once tRP windows have elapsed.
            let ready = (base..base + bpr).all(|b| now >= self.banks[b].next_act);
            if ready {
                for b in base..base + bpr {
                    self.banks[b].next_act = now + self.cfg.t_rfc;
                }
                self.ranks[r].refresh_due += self.cfg.t_refi;
                self.ranks[r].refresh_pending = false;
                self.refresh_due_min = self
                    .ranks
                    .iter()
                    .map(|rk| rk.refresh_due)
                    .min()
                    .unwrap_or(u64::MAX);
                self.refresh_pending_any = self.ranks.iter().any(|rk| rk.refresh_pending);
                self.stats.refreshes += 1;
                return true;
            }
            return false;
        }
        false
    }

    /// Runs the scheduler; `Some(row_hit)` when a command issued —
    /// `true` for a row-hit column command, `false` for the row-miss
    /// path (column after PRE/ACT, or the PRE/ACT itself). The flag
    /// feeds the decision-cause attribution in [`Self::tick`].
    fn issue_scheduled(&mut self) -> Option<bool> {
        let kind = if self.draining_writes {
            ReqKind::Write
        } else if !self.read_sched.is_empty() {
            ReqKind::Read
        } else {
            return None;
        };
        // Hybrid dispatch: the per-bank scan wins once the queue is
        // longer than the bank array; for short queues (the latency-bound
        // common case) walking the few requests directly is cheaper.
        // Both implementations are decision-identical (pinned by the
        // differential tests), so this is purely a cost choice.
        let q_len = self.sched(kind).len();
        let action = match self.scheduler_mode {
            SchedulerMode::Incremental if q_len > SMALL_QUEUE_RESCAN => {
                self.pick_action_incremental(kind)
            }
            _ => self.pick_action_rescan(kind),
        };
        let a = action?;
        // Classify before applying: a column issue removes its entry.
        let row_hit = match a {
            SchedAction::Column { kind, idx } => !self.sched(kind).req(idx).touched,
            SchedAction::Precharge { .. } | SchedAction::Activate { .. } => false,
        };
        self.apply_action(a);
        Some(row_hit)
    }

    /// True when the active queue's oldest request is past the
    /// anti-starvation limit (the aging bound is then waking the
    /// controller every cycle — the telemetry cause for otherwise
    /// unexplained executed no-op ticks).
    fn oldest_is_starving(&self, now: u64) -> bool {
        self.sched_kind()
            .and_then(|k| self.sched(k).oldest())
            .is_some_and(|(_, o)| now.saturating_sub(o.req.enqueue_cycle) > self.starvation_limit)
    }

    /// The command the scheduler would issue this cycle (incremental
    /// implementation), accounting for write-drain queue selection.
    /// Validation seam for the differential tests.
    pub fn next_sched_action(&self) -> Option<SchedAction> {
        self.sched_kind()
            .and_then(|kind| self.pick_action_incremental(kind))
    }

    /// As [`Self::next_sched_action`] via the retained naive full-rescan
    /// reference scheduler. Must always agree with the incremental one.
    pub fn next_sched_action_rescan(&self) -> Option<SchedAction> {
        self.sched_kind()
            .and_then(|kind| self.pick_action_rescan(kind))
    }

    fn sched_kind(&self) -> Option<ReqKind> {
        if self.draining_writes {
            Some(ReqKind::Write)
        } else if !self.read_sched.is_empty() {
            Some(ReqKind::Read)
        } else {
            None
        }
    }

    /// O(banks) scheduling decision from the per-bank eligibility FIFOs.
    ///
    /// Within one bank, column/ACT/PRE readiness is identical for every
    /// request of the same eligibility class, so only the front of each
    /// class can be the first-in-arrival-order ready request — the
    /// quantity both FR-FCFS passes select.
    fn pick_action_incremental(&self, kind: ReqKind) -> Option<SchedAction> {
        let q = self.sched(kind);
        let (oldest_idx, oldest) = q.oldest()?;
        let now = self.clock.now();
        let starving = now.saturating_sub(oldest.req.enqueue_cycle) > self.starvation_limit;
        // Column-issue pre-filter (reads only): a still-valid cached
        // next-read-issue bound in the future proves no READ column
        // command can be ready this cycle, so every hit scan below can be
        // skipped wholesale. Purely opportunistic — the cache is consulted
        // but never computed here (a saturated phase enqueues most ticks,
        // so forced recomputation would cost more than the scan); the
        // event-driven callers populate it as a side effect of their bound
        // queries.
        let col_possible = match kind {
            ReqKind::Read => self.next_read_issue_cache.get().is_none_or(|c| c <= now),
            ReqKind::Write => true,
        };

        // Pass 1 (FR-FCFS only): first-ready row hit in arrival order —
        // the earliest-arrived ready hit-FIFO front across banks.
        if !starving && !self.cfg.fcfs && col_possible {
            let mut best: Option<u32> = None;
            let mut m = q.hit_mask;
            while m != 0 {
                let fb = m.trailing_zeros() as usize;
                m &= m - 1;
                let idx = *q.hits[fb].front().expect("masked bank has hits");
                if best.is_some_and(|b| b < idx) {
                    continue;
                }
                let e = q.req(idx as usize);
                if self.col_cmd_ready(kind, &e.decoded, fb) {
                    best = Some(idx);
                }
            }
            if let Some(idx) = best {
                return Some(SchedAction::Column {
                    kind,
                    idx: idx as usize,
                });
            }
        }

        // Pass 2: prepare the oldest serviceable request (PRE or ACT), or
        // issue its column command if it is a starving / FCFS-head row
        // hit.
        if starving {
            // Only the globally oldest request may act.
            let e = oldest;
            let fb = e.flat_bank;
            if self.ranks[e.decoded.rank as usize].refresh_pending {
                return None;
            }
            return match self.banks[fb].open_row {
                Some(row) if row == e.decoded.row => (col_possible
                    && self.col_cmd_ready(kind, &e.decoded, fb))
                .then_some(SchedAction::Column {
                    kind,
                    idx: oldest_idx,
                }),
                Some(_) => (now >= self.banks[fb].next_pre)
                    .then_some(SchedAction::Precharge { idx: oldest_idx }),
                None => self
                    .act_ready(&e.decoded, fb)
                    .then_some(SchedAction::Activate { idx: oldest_idx }),
            };
        }

        // FCFS: only the globally oldest request may issue its column
        // command; being globally oldest, it beats every other candidate.
        if self.cfg.fcfs && col_possible {
            let e = oldest;
            let fb = e.flat_bank;
            if !self.ranks[e.decoded.rank as usize].refresh_pending
                && self.banks[fb].open_row == Some(e.decoded.row)
                && self.col_cmd_ready(kind, &e.decoded, fb)
            {
                return Some(SchedAction::Column {
                    kind,
                    idx: oldest_idx,
                });
            }
        }

        // PRE/ACT preparation: earliest-arrived ready miss-FIFO front.
        let mut best: Option<(u32, SchedAction)> = None;
        let mut m = q.miss_mask;
        while m != 0 {
            let fb = m.trailing_zeros() as usize;
            m &= m - 1;
            let idx = *q.misses[fb].front().expect("masked bank has misses");
            if best.as_ref().is_some_and(|&(b, _)| b < idx) {
                continue;
            }
            let e = q.req(idx as usize);
            if self.ranks[e.decoded.rank as usize].refresh_pending {
                continue;
            }
            match self.banks[fb].open_row {
                Some(_) => {
                    if now >= self.banks[fb].next_pre {
                        best = Some((idx, SchedAction::Precharge { idx: idx as usize }));
                    }
                }
                None => {
                    if self.act_ready(&e.decoded, fb) {
                        best = Some((idx, SchedAction::Activate { idx: idx as usize }));
                    }
                }
            }
        }
        best.map(|(_, a)| a)
    }

    /// The retained naive reference scheduler: a full rescan of the queue
    /// in arrival order, exactly the pre-incremental implementation.
    fn pick_action_rescan(&self, kind: ReqKind) -> Option<SchedAction> {
        let q = self.sched(kind);
        let (oldest_idx, oldest) = q.oldest()?;
        let now = self.clock.now();
        let starving = now.saturating_sub(oldest.req.enqueue_cycle) > self.starvation_limit;

        // Pass 1 (FR-FCFS only): first-ready row hit in arrival order.
        if !starving && !self.cfg.fcfs {
            for (idx, e) in q.iter() {
                if self.banks[e.flat_bank].open_row == Some(e.decoded.row)
                    && self.col_cmd_ready(kind, &e.decoded, e.flat_bank)
                {
                    return Some(SchedAction::Column { kind, idx });
                }
            }
        }

        // Pass 2: prepare the oldest serviceable request (PRE or ACT), or
        // issue its column command if it is a starving row hit.
        let limit = if starving { 1 } else { q.len() };
        for (idx, e) in q.iter().take(limit) {
            if self.ranks[e.decoded.rank as usize].refresh_pending {
                continue;
            }
            match self.banks[e.flat_bank].open_row {
                Some(row) if row == e.decoded.row => {
                    // FCFS: only the oldest request may issue its column
                    // command (younger ones may still prepare their banks).
                    if (starving || (self.cfg.fcfs && idx == oldest_idx))
                        && self.col_cmd_ready(kind, &e.decoded, e.flat_bank)
                    {
                        return Some(SchedAction::Column { kind, idx });
                    }
                    continue; // waiting on column timing
                }
                Some(_) => {
                    if now >= self.banks[e.flat_bank].next_pre {
                        return Some(SchedAction::Precharge { idx });
                    }
                }
                None => {
                    if self.act_ready(&e.decoded, e.flat_bank) {
                        return Some(SchedAction::Activate { idx });
                    }
                }
            }
        }
        None
    }

    fn apply_action(&mut self, action: SchedAction) {
        let now = self.clock.now();
        // Per-bank heatmap: exactly one scheduler command per issuing
        // tick, so the bank rows sum to issue_hit + issue_miss exactly
        // (refresh-path commands are the `refresh` cause, not counted
        // here). Field accesses only — no helper calls — so the series
        // borrow stays disjoint from the queue reads.
        if self.series.is_some() {
            let fb = match action {
                SchedAction::Column {
                    kind: ReqKind::Read,
                    idx,
                } => self.read_sched.req(idx).flat_bank,
                SchedAction::Column {
                    kind: ReqKind::Write,
                    idx,
                } => self.write_sched.req(idx).flat_bank,
                SchedAction::Precharge { idx } | SchedAction::Activate { idx } => {
                    if self.draining_writes {
                        self.write_sched.req(idx).flat_bank
                    } else {
                        self.read_sched.req(idx).flat_bank
                    }
                }
            };
            if let Some(series) = &mut self.series {
                series.bank_issues[fb] += 1;
            }
        }
        match action {
            SchedAction::Column { kind, idx } => self.issue_col_cmd(kind, idx),
            SchedAction::Precharge { idx } => {
                let q = match self.draining_writes {
                    true => &mut self.write_sched,
                    false => &mut self.read_sched,
                };
                let fb = q.req(idx).flat_bank;
                q.req_mut(idx).touched = true;
                self.banks[fb].open_row = None;
                self.banks[fb].next_act = self.banks[fb].next_act.max(now + self.cfg.t_rp);
                self.stats.precharges += 1;
                self.on_bank_precharged(fb);
            }
            SchedAction::Activate { idx } => {
                let q = match self.draining_writes {
                    true => &mut self.write_sched,
                    false => &mut self.read_sched,
                };
                q.req_mut(idx).touched = true;
                let (decoded, fb) = {
                    let e = q.req(idx);
                    (e.decoded, e.flat_bank)
                };
                self.issue_act(&decoded, fb);
                self.on_bank_activated(fb, decoded.row);
            }
        }
    }

    /// Reclassifies both queues' eligibility FIFOs after `flat_bank`
    /// opened `row`.
    fn on_bank_activated(&mut self, flat_bank: usize, row: u32) {
        self.read_sched.on_activate(flat_bank, row);
        self.write_sched.on_activate(flat_bank, row);
        self.decision_bank_bound[flat_bank].set(None);
    }

    /// Reclassifies both queues' eligibility FIFOs after `flat_bank`
    /// closed its row (scheduler PRE or refresh-path PRE).
    ///
    /// The bank's decision bound is dropped explicitly: a refresh-path
    /// PRE reclassifies hits into misses without having been a cached
    /// candidate, and the new ACT path can be *earlier* than a cached
    /// column bound (e.g. tRP elapsing before a long write-to-read
    /// turnaround) — the one reclassification the ratchet argument does
    /// not cover. Scheduler PRE/ACTs were cached candidates, so their
    /// caches already expired; invalidating uniformly is simply cheap.
    fn on_bank_precharged(&mut self, flat_bank: usize) {
        self.read_sched.on_precharge(flat_bank);
        self.write_sched.on_precharge(flat_bank);
        self.decision_bank_bound[flat_bank].set(None);
    }

    fn act_ready(&self, d: &DecodedAddr, flat_bank: usize) -> bool {
        let now = self.clock.now();
        let bank = &self.banks[flat_bank];
        let rank = &self.ranks[d.rank as usize];
        now >= bank.next_act
            && now >= rank.next_act_any
            && now >= rank.next_act_same_bg[d.bank_group as usize]
            && now >= rank.faw_ready(self.cfg.t_faw)
    }

    fn issue_act(&mut self, d: &DecodedAddr, flat_bank: usize) {
        let now = self.clock.now();
        let bank = &mut self.banks[flat_bank];
        bank.open_row = Some(d.row);
        bank.next_read = now + self.cfg.t_rcd;
        bank.next_write = now + self.cfg.t_rcd;
        bank.next_pre = bank.next_pre.max(now + self.cfg.t_ras);
        let rank = &mut self.ranks[d.rank as usize];
        rank.next_act_any = rank.next_act_any.max(now + self.cfg.t_rrd_s);
        let bg = d.bank_group as usize;
        rank.next_act_same_bg[bg] = rank.next_act_same_bg[bg].max(now + self.cfg.t_rrd_l);
        rank.record_act(now);
        self.stats.activates += 1;
    }

    fn col_cmd_ready(&self, kind: ReqKind, d: &DecodedAddr, flat_bank: usize) -> bool {
        let now = self.clock.now();
        let bank = &self.banks[flat_bank];
        let rank = &self.ranks[d.rank as usize];
        if rank.refresh_pending {
            return false;
        }
        let bg = d.bank_group as usize;
        let bank_ready = match kind {
            ReqKind::Read => {
                now >= bank.next_read
                    && now >= rank.next_read_any
                    && now >= rank.next_read_same_bg[bg]
            }
            ReqKind::Write => now >= bank.next_write,
        };
        if !bank_ready || now < rank.next_col_any || now < rank.next_col_same_bg[bg] {
            return false;
        }
        // Data bus availability with a turnaround bubble on direction or
        // rank switches.
        let (lat, dur, dir) = match kind {
            ReqKind::Read => (self.cfg.t_cl, self.cfg.read_burst_cycles, BusDir::Read),
            ReqKind::Write => (self.cfg.t_cwl, self.cfg.write_burst_cycles, BusDir::Write),
        };
        let _ = dur;
        let bubble =
            if self.bus_dir != BusDir::Idle && (self.bus_dir != dir || self.bus_rank != d.rank) {
                2
            } else {
                0
            };
        now + lat >= self.bus_busy_until + bubble
    }

    fn issue_col_cmd(&mut self, kind: ReqKind, idx: usize) {
        let now = self.clock.now();
        self.credit_occupancy();
        // A length change can satisfy the drain predicate.
        self.drain_dirty = true;
        let entry = match kind {
            ReqKind::Read => self.read_sched.remove_issued_hit(idx),
            ReqKind::Write => self.write_sched.remove_issued_hit(idx),
        };
        if kind == ReqKind::Write {
            let line_mask = !u64::from(self.cfg.line_bytes - 1);
            let line = entry.req.addr & line_mask;
            let n = self
                .write_lines
                .get_mut(&line)
                .expect("queued write is indexed");
            *n -= 1;
            if *n == 0 {
                self.write_lines.remove(&line);
            }
        }
        let d = entry.decoded;
        let bg = d.bank_group as usize;
        if !entry.touched {
            self.stats.row_hits += 1;
        }
        {
            let rank = &mut self.ranks[d.rank as usize];
            rank.next_col_any = rank.next_col_any.max(now + self.cfg.t_ccd_s);
            rank.next_col_same_bg[bg] = rank.next_col_same_bg[bg].max(now + self.cfg.t_ccd_l);
        }
        match kind {
            ReqKind::Read => {
                let data_start = now + self.cfg.t_cl;
                let finish = data_start + self.cfg.read_burst_cycles;
                let bank = &mut self.banks[entry.flat_bank];
                bank.next_pre = bank.next_pre.max(now + self.cfg.t_rtp);
                self.bus_busy_until = finish;
                self.bus_dir = BusDir::Read;
                self.bus_rank = d.rank;
                self.stats.data_bus_busy_cycles += self.cfg.read_burst_cycles;
                self.stats.reads += 1;
                self.stats.read_latency_sum += finish.saturating_sub(entry.req.enqueue_cycle);
                self.stats.read_queue_delay_sum += now.saturating_sub(entry.req.enqueue_cycle);
                self.pending.push(
                    finish,
                    Completion {
                        id: entry.req.id,
                        kind,
                        finish_cycle: finish,
                        enqueue_cycle: entry.req.enqueue_cycle,
                    },
                );
            }
            ReqKind::Write => {
                let data_start = now + self.cfg.t_cwl;
                let burst_end = data_start + self.cfg.write_burst_cycles;
                // OTPw generation (SecDDR) delays the internal commit.
                let internal_end = burst_end + self.cfg.write_extra_cycles;
                let bank = &mut self.banks[entry.flat_bank];
                bank.next_pre = bank.next_pre.max(internal_end + self.cfg.t_wr);
                let rank = &mut self.ranks[d.rank as usize];
                rank.next_read_any = rank.next_read_any.max(burst_end + self.cfg.t_wtr_s);
                rank.next_read_same_bg[bg] =
                    rank.next_read_same_bg[bg].max(burst_end + self.cfg.t_wtr_l);
                self.bus_busy_until = burst_end;
                self.bus_dir = BusDir::Write;
                self.bus_rank = d.rank;
                self.stats.data_bus_busy_cycles += self.cfg.write_burst_cycles;
                self.stats.writes += 1;
                self.pending.push(
                    burst_end,
                    Completion {
                        id: entry.req.id,
                        kind,
                        finish_cycle: burst_end,
                        enqueue_cycle: entry.req.enqueue_cycle,
                    },
                );
            }
        }
    }

    /// Rebuilds the per-bank eligibility state from scratch and compares
    /// it with the incrementally maintained one (validation seam for the
    /// property tests).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate_incremental_state(&self) -> Result<(), String> {
        for (label, kind) in [("read", ReqKind::Read), ("write", ReqKind::Write)] {
            let q = self.sched(kind);
            let banks = self.banks.len();
            let mut exp_hits: Vec<Vec<u32>> = vec![Vec::new(); banks];
            let mut exp_misses: Vec<Vec<u32>> = vec![Vec::new(); banks];
            for (idx, e) in q.iter() {
                if self.banks[e.flat_bank].open_row == Some(e.decoded.row) {
                    exp_hits[e.flat_bank].push(idx as u32);
                } else {
                    exp_misses[e.flat_bank].push(idx as u32);
                }
            }
            let live = q.iter().count();
            if q.live != live {
                return Err(format!("{label}: live count {} != rescan {live}", q.live));
            }
            for fb in 0..banks {
                let got_hits: Vec<u32> = q.hits[fb].iter().copied().collect();
                let got_misses: Vec<u32> = q.misses[fb].iter().copied().collect();
                if got_hits != exp_hits[fb] {
                    return Err(format!(
                        "{label}: bank {fb} hit FIFO {got_hits:?} != rescan {:?}",
                        exp_hits[fb]
                    ));
                }
                if got_misses != exp_misses[fb] {
                    return Err(format!(
                        "{label}: bank {fb} miss FIFO {got_misses:?} != rescan {:?}",
                        exp_misses[fb]
                    ));
                }
                let count = (exp_hits[fb].len() + exp_misses[fb].len()) as u32;
                if q.bank_count[fb] != count {
                    return Err(format!(
                        "{label}: bank {fb} count {} != {count}",
                        q.bank_count[fb]
                    ));
                }
                if (q.hit_mask & (1 << fb) != 0) == exp_hits[fb].is_empty() {
                    return Err(format!("{label}: bank {fb} hit-mask bit wrong"));
                }
                if (q.miss_mask & (1 << fb) != 0) == exp_misses[fb].is_empty() {
                    return Err(format!("{label}: bank {fb} miss-mask bit wrong"));
                }
                // Cached per-bank read-issue bounds must stay lower bounds
                // of a fresh computation (the ratchet invariant).
                if kind == ReqKind::Read && count > 0 {
                    if let Some(cached) = self.read_bank_bound[fb].get() {
                        let fresh = self.compute_bank_read_issue(fb);
                        if cached > fresh {
                            return Err(format!(
                                "bank {fb} cached read bound {cached} above fresh {fresh}"
                            ));
                        }
                    }
                }
                // Same ratchet invariant for the per-bank decision
                // bounds (checked once; the cache is per bank, not per
                // queue — its own tag says which queue it was computed
                // for). Only unexpired entries are ever consulted.
                if kind == ReqKind::Read {
                    if let Some((k, cached)) = self.decision_bank_bound[fb].get() {
                        if cached > self.clock.now() {
                            let fresh = self.compute_bank_decision(k, fb);
                            if cached > fresh {
                                return Err(format!(
                                    "bank {fb} cached {k:?} decision bound {cached} \
                                     above fresh {fresh}"
                                ));
                            }
                        }
                    }
                }
            }
        }
        // Store-forward index matches the queued writes.
        let line_mask = !u64::from(self.cfg.line_bytes - 1);
        let mut exp_lines: FxHashMap<u64, u32> = FxHashMap::default();
        for (_, e) in self.write_sched.iter() {
            *exp_lines.entry(e.req.addr & line_mask).or_insert(0) += 1;
        }
        if exp_lines != self.write_lines {
            return Err("store-forward line index diverged".into());
        }
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_done(dram: &mut DramSystem, max: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        for _ in 0..max {
            out.extend(dram.tick());
            if dram.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_read_latency_is_act_rcd_cl_burst() {
        let cfg = DramConfig::ddr4_3200();
        let mut dram = DramSystem::new(cfg.clone());
        dram.enqueue(MemRequest::new(1, ReqKind::Read, 0x1000, 0))
            .unwrap();
        let done = run_until_done(&mut dram, 500);
        assert_eq!(done.len(), 1);
        // ACT at cycle 1, READ at 1+tRCD, data done at +tCL+burst.
        let expected = 1 + cfg.t_rcd + cfg.t_cl + cfg.read_burst_cycles;
        assert_eq!(done[0].finish_cycle, expected);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let cfg = DramConfig::ddr4_3200();
        // Two lines in the same bank and row: 16-line stride (bank-group
        // interleaving maps adjacent lines to different banks).
        let stride = u64::from(cfg.bank_groups * cfg.banks_per_group * cfg.line_bytes);
        let mut dram = DramSystem::new(cfg);
        dram.enqueue(MemRequest::new(1, ReqKind::Read, 0x10000, 0))
            .unwrap();
        dram.enqueue(MemRequest::new(2, ReqKind::Read, 0x10000 + stride, 0))
            .unwrap();
        let done = run_until_done(&mut dram, 500);
        assert_eq!(done.len(), 2);
        let gap = done[1].finish_cycle - done[0].finish_cycle;
        assert!(
            gap <= dram.config().t_ccd_l + dram.config().read_burst_cycles,
            "gap {gap}"
        );
        assert!(dram.stats().row_hits >= 1);
        assert_eq!(dram.stats().activates, 1);
    }

    #[test]
    fn row_conflict_requires_precharge() {
        let cfg = DramConfig::ddr4_3200();
        let mapping = AddressMapping::new(&cfg);
        let d0 = mapping.decode(0x1000);
        // Same bank, different row.
        let conflict = DecodedAddr {
            row: d0.row + 8,
            ..d0
        };
        let addr1 = mapping.encode(&conflict);
        let mut dram = DramSystem::new(cfg);
        dram.enqueue(MemRequest::new(1, ReqKind::Read, 0x1000, 0))
            .unwrap();
        dram.enqueue(MemRequest::new(2, ReqKind::Read, addr1, 0))
            .unwrap();
        let done = run_until_done(&mut dram, 1000);
        assert_eq!(done.len(), 2);
        assert_eq!(dram.stats().precharges, 1);
        assert_eq!(dram.stats().activates, 2);
    }

    #[test]
    fn store_forwarding_serves_read_from_write_queue() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        dram.enqueue(MemRequest::new(1, ReqKind::Write, 0x2000, 0))
            .unwrap();
        dram.enqueue(MemRequest::new(2, ReqKind::Read, 0x2000, 0))
            .unwrap();
        let first = dram.tick();
        assert!(
            first.iter().any(|c| c.id == 2),
            "forwarded read completes immediately"
        );
        assert_eq!(dram.stats().forwarded_reads, 1);
    }

    #[test]
    fn read_queue_full_is_reported() {
        let mut cfg = DramConfig::ddr4_3200();
        cfg.read_queue = 2;
        let mut dram = DramSystem::new(cfg);
        dram.enqueue(MemRequest::new(1, ReqKind::Read, 0x0, 0))
            .unwrap();
        dram.enqueue(MemRequest::new(2, ReqKind::Read, 0x40000, 0))
            .unwrap();
        let err = dram.enqueue(MemRequest::new(3, ReqKind::Read, 0x80000, 0));
        assert!(err.is_err());
        assert_eq!(err.unwrap_err().rejected.id, 3);
    }

    #[test]
    fn writes_drain_at_watermark() {
        let mut cfg = DramConfig::ddr4_3200();
        cfg.write_drain_hi = 4;
        cfg.write_drain_lo = 1;
        let mut dram = DramSystem::new(cfg);
        for i in 0..4 {
            dram.enqueue(MemRequest::new(i, ReqKind::Write, i * 0x40000, 0))
                .unwrap();
        }
        let done = run_until_done(&mut dram, 2000);
        assert!(
            done.len() >= 3,
            "drain mode should service writes, got {}",
            done.len()
        );
        assert!(dram.stats().writes >= 3);
    }

    #[test]
    fn reads_have_priority_over_sparse_writes() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        dram.enqueue(MemRequest::new(1, ReqKind::Write, 0x2000, 0))
            .unwrap();
        dram.enqueue(MemRequest::new(2, ReqKind::Read, 0x100000, 0))
            .unwrap();
        let mut read_done = None;
        let mut write_done = None;
        for _ in 0..3000 {
            for c in dram.tick() {
                match c.id {
                    1 => write_done = Some(c.finish_cycle),
                    2 => read_done = Some(c.finish_cycle),
                    _ => {}
                }
            }
            if read_done.is_some() && write_done.is_some() {
                break;
            }
        }
        assert!(read_done.unwrap() < write_done.unwrap());
    }

    #[test]
    fn refresh_fires_periodically() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        for _ in 0..(12_480 * 2 + 600) {
            dram.tick();
        }
        // Two ranks, two tREFI windows each.
        assert!(
            dram.stats().refreshes >= 3,
            "got {}",
            dram.stats().refreshes
        );
    }

    #[test]
    fn refresh_blocks_and_then_releases_traffic() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        // Ride past a refresh boundary with continuous traffic.
        let mut id = 0;
        let mut completed = 0u64;
        for t in 0..30_000u64 {
            if t % 50 == 0 {
                id += 1;
                let _ = dram.enqueue(MemRequest::new(
                    id,
                    ReqKind::Read,
                    (id * 0x40) % (1 << 30),
                    t,
                ));
            }
            completed += dram.tick().len() as u64;
        }
        assert!(dram.stats().refreshes >= 2);
        assert!(
            completed >= id - 2,
            "requests must survive refreshes: {completed}/{id}"
        );
    }

    #[test]
    fn ewcrc_write_burst_slows_write_streams() {
        let run = |cfg: DramConfig| -> u64 {
            let mut dram = DramSystem::new(cfg);
            for i in 0..32u64 {
                dram.enqueue(MemRequest::new(i, ReqKind::Write, i * 64, 0))
                    .unwrap();
            }
            let mut last = 0;
            for _ in 0..20_000 {
                for c in dram.tick() {
                    last = last.max(c.finish_cycle);
                }
                if dram.is_idle() {
                    break;
                }
            }
            last
        };
        let bl8 = run(DramConfig::ddr4_3200());
        let bl10 = run(DramConfig::ddr4_3200_ewcrc());
        assert!(bl10 > bl8, "BL10 ({bl10}) must be slower than BL8 ({bl8})");
    }

    #[test]
    fn bank_parallelism_overlaps_requests() {
        // Many banks: total time far less than serial sum.
        let cfg = DramConfig::ddr4_3200();
        let serial_one = 1 + cfg.t_rcd + cfg.t_cl + cfg.read_burst_cycles;
        let mut dram = DramSystem::new(cfg);
        let n = 8u64;
        for i in 0..n {
            // Stride across bank groups.
            dram.enqueue(MemRequest::new(i, ReqKind::Read, i * 0x2000, 0))
                .unwrap();
        }
        let done = run_until_done(&mut dram, 5_000);
        assert_eq!(done.len() as u64, n);
        let makespan = done.iter().map(|c| c.finish_cycle).max().unwrap();
        assert!(
            makespan < serial_one * n * 6 / 10,
            "expected overlap, makespan {makespan} vs serial {}",
            serial_one * n
        );
    }

    #[test]
    fn starving_request_eventually_served_under_hit_storm() {
        let cfg = DramConfig::ddr4_3200();
        let mapping = AddressMapping::new(&cfg);
        let d0 = mapping.decode(0);
        let conflict = DecodedAddr {
            row: d0.row + 1,
            ..d0
        };
        let conflict_addr = mapping.encode(&conflict);
        let mut dram = DramSystem::new(cfg);
        dram.enqueue(MemRequest::new(9999, ReqKind::Read, conflict_addr, 0))
            .unwrap();
        let mut next_id = 0;
        let mut victim_done = false;
        for t in 0..30_000u64 {
            // Keep hammering row d0.row with hits.
            if dram.read_queue_len() < 32 {
                next_id += 1;
                let col = (next_id % 128) * 64;
                let _ = dram.enqueue(MemRequest::new(next_id, ReqKind::Read, col, t));
            }
            for c in dram.tick() {
                if c.id == 9999 {
                    victim_done = true;
                }
            }
            if victim_done {
                break;
            }
        }
        assert!(
            victim_done,
            "anti-starvation must serve the conflicting request"
        );
    }

    #[test]
    fn fcfs_is_slower_than_frfcfs_on_hit_heavy_mix() {
        // A stream with an interleaved row conflict: FR-FCFS reorders to
        // serve the hits; FCFS stalls behind the conflicting request.
        let run = |fcfs: bool| -> u64 {
            let mut cfg = DramConfig::ddr4_3200();
            cfg.fcfs = fcfs;
            let stride = u64::from(cfg.bank_groups * cfg.banks_per_group * cfg.line_bytes);
            let mapping = AddressMapping::new(&cfg);
            let d0 = mapping.decode(0);
            let conflict = DecodedAddr {
                row: d0.row + 1,
                ..d0
            };
            let conflict_addr = mapping.encode(&conflict);
            let mut dram = DramSystem::new(cfg);
            dram.enqueue(MemRequest::new(0, ReqKind::Read, 0, 0))
                .unwrap();
            dram.enqueue(MemRequest::new(1, ReqKind::Read, conflict_addr, 0))
                .unwrap();
            for i in 2..20u64 {
                dram.enqueue(MemRequest::new(i, ReqKind::Read, i * stride, 0))
                    .unwrap();
            }
            let mut last = 0;
            for _ in 0..100_000 {
                for c in dram.tick() {
                    last = last.max(c.finish_cycle);
                }
                if dram.is_idle() {
                    break;
                }
            }
            last
        };
        let frfcfs = run(false);
        let fcfs = run(true);
        assert!(fcfs >= frfcfs, "fcfs {fcfs} vs fr-fcfs {frfcfs}");
    }

    #[test]
    fn all_requests_complete_random_mix() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        let total = 500u64;
        let mut issued = 0u64;
        let mut completed = std::collections::HashSet::new();
        let mut t = 0u64;
        while completed.len() < total as usize && t < 2_000_000 {
            if issued < total && rng.gen_bool(0.3) {
                let kind = if rng.gen_bool(0.3) {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let addr = rng.gen_range(0..(1u64 << 32)) & !63;
                if dram.enqueue(MemRequest::new(issued, kind, addr, t)).is_ok() {
                    issued += 1;
                }
            }
            for c in dram.tick() {
                assert!(completed.insert(c.id), "duplicate completion {}", c.id);
            }
            t += 1;
        }
        assert_eq!(completed.len() as u64, total);
    }

    #[test]
    fn rescan_mode_matches_incremental_schedule() {
        use rand::{Rng, SeedableRng};
        for fcfs in [false, true] {
            let run = |mode: SchedulerMode| {
                let mut cfg = DramConfig::ddr4_3200();
                cfg.fcfs = fcfs;
                let mut dram = DramSystem::new(cfg);
                dram.set_scheduler_mode(mode);
                let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
                let mut completions = Vec::new();
                let mut id = 0u64;
                for t in 0..40_000u64 {
                    if rng.gen_bool(0.25) {
                        let kind = if rng.gen_bool(0.35) {
                            ReqKind::Write
                        } else {
                            ReqKind::Read
                        };
                        let addr = rng.gen_range(0..(1u64 << 28)) & !63;
                        if dram.enqueue(MemRequest::new(id, kind, addr, t)).is_ok() {
                            id += 1;
                        }
                    }
                    completions.extend(dram.tick());
                }
                (completions, dram.stats().clone())
            };
            let (inc_c, inc_s) = run(SchedulerMode::Incremental);
            let (ref_c, ref_s) = run(SchedulerMode::NaiveRescan);
            assert_eq!(inc_c, ref_c, "completion schedule diverged (fcfs={fcfs})");
            assert_eq!(inc_s, ref_s, "stats diverged (fcfs={fcfs})");
        }
    }

    #[test]
    fn decisions_and_state_agree_under_random_traffic() {
        use rand::{Rng, SeedableRng};
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut id = 0u64;
        for t in 0..25_000u64 {
            if rng.gen_bool(0.3) {
                let kind = if rng.gen_bool(0.3) {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let addr = rng.gen_range(0..(1u64 << 26)) & !63;
                if dram.enqueue(MemRequest::new(id, kind, addr, t)).is_ok() {
                    id += 1;
                }
            }
            assert_eq!(
                dram.next_sched_action(),
                dram.next_sched_action_rescan(),
                "decision diverged at cycle {t}"
            );
            dram.tick();
            if t % 500 == 0 {
                dram.validate_incremental_state().expect("state consistent");
            }
        }
    }

    #[test]
    fn tick_until_matches_sequential_ticks() {
        use rand::{Rng, SeedableRng};
        let run = |event_driven: bool| {
            let mut dram = DramSystem::new(DramConfig::ddr4_3200());
            let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
            let mut completions = Vec::new();
            let mut id = 0u64;
            let mut now = 0u64;
            for _ in 0..400 {
                // Burst a few requests, then jump a random window — mixes
                // saturated stretches, drain flips, and refresh crossings.
                for _ in 0..rng.gen_range(0..6u32) {
                    let kind = if rng.gen_bool(0.35) {
                        ReqKind::Write
                    } else {
                        ReqKind::Read
                    };
                    let addr = rng.gen_range(0..(1u64 << 28)) & !63;
                    let _ = dram.enqueue(MemRequest::new(id, kind, addr, now));
                    id += 1;
                }
                now += rng.gen_range(1..400u64);
                if event_driven {
                    completions.extend(dram.tick_until(now));
                } else {
                    while dram.cycle() < now {
                        let at = dram.cycle() + 1;
                        for c in dram.tick() {
                            completions.push((at, c));
                        }
                    }
                }
            }
            (completions, dram.stats(), dram.telemetry())
        };
        let (fast_c, fast_s, fast_t) = run(true);
        let (ref_c, ref_s, ref_t) = run(false);
        assert_eq!(fast_c, ref_c, "completion schedule diverged");
        assert_eq!(fast_s, ref_s, "stats diverged");
        // The telemetry counters live outside the identity comparison by
        // design; compare the fields directly: covered busy cycles are
        // policy-invariant, executed cycles must actually drop, and the
        // cause buckets partition the executed cycles exactly under both
        // policies.
        assert_eq!(fast_t.busy_cycles, ref_t.busy_cycles);
        assert_eq!(ref_t.decision_cycles, ref_s.cycles);
        assert!(
            fast_t.decision_cycles < fast_s.cycles,
            "tick_until must execute fewer cycles than it covers: {} of {}",
            fast_t.decision_cycles,
            fast_s.cycles
        );
        assert_eq!(fast_t.causes.total(), fast_t.decision_cycles);
        assert_eq!(ref_t.causes.total(), ref_t.decision_cycles);
        // Every command the two policies issue is identical, so the
        // command-attributed causes agree exactly; only the passive
        // buckets (noop et al.) absorb the policy difference.
        assert_eq!(fast_t.causes.issue_hit, ref_t.causes.issue_hit);
        assert_eq!(fast_t.causes.issue_miss, ref_t.causes.issue_miss);
        assert_eq!(fast_t.causes.refresh, ref_t.causes.refresh);
        // Completion pops and drain flips are decision cycles the fast
        // path must execute at their exact cycle (skipping one would
        // diverge the schedule), so those buckets agree too — only the
        // passive noop/aging buckets absorb the skipped ticks.
        assert_eq!(fast_t.causes.completion, ref_t.causes.completion);
        assert_eq!(fast_t.causes.drain_flip, ref_t.causes.drain_flip);
    }

    #[test]
    fn refresh_is_serialized_across_ranks() {
        let cfg = DramConfig::ddr4_3200();
        assert!(cfg.ranks >= 2, "test needs a multi-rank channel");
        let (t_refi, t_ras) = (cfg.t_refi, cfg.t_ras);
        let mapping = AddressMapping::new(&cfg);
        let d = DecodedAddr {
            rank: 0,
            ..mapping.decode(0)
        };
        let addr = mapping.encode(&d);
        let mut dram = DramSystem::new(cfg);
        // Park just before every rank's first refresh is due, then open a
        // row in rank 0: its ACT (next cycle) pins next_pre ~tRAS past
        // the due time, so the refresh scan parks on rank 0 with an
        // unprechargeable bank.
        let _ = dram.advance_to(t_refi - 4, Advance::PerCycle);
        dram.enqueue(MemRequest::new(1, ReqKind::Read, addr, dram.cycle()))
            .unwrap();
        // While rank 0's bank cannot precharge, *no* rank refreshes —
        // rank 1 is due with every bank closed and ready, but waits
        // behind the scan's first pending rank (the serialization the
        // issue_refresh comment documents).
        let blocked_until = t_refi - 4 + 1 + t_ras; // ACT cycle + tRAS
        let _ = dram.advance_to(blocked_until - 1, Advance::PerCycle);
        assert!(dram.stats().refreshes == 0 && dram.stats().precharges == 0);
        // Once rank 0 precharges and refreshes, rank 1 follows.
        let _ = dram.advance_to(blocked_until + t_refi / 2, Advance::PerCycle);
        assert!(
            dram.stats().refreshes >= 2,
            "both ranks refresh once the parked rank resolves: {}",
            dram.stats().refreshes
        );
    }

    #[test]
    fn saturated_decision_cycles_stay_below_busy_cycles() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        let mut id = 0u64;
        for _ in 0..200 {
            while dram.read_queue_len() < dram.config().read_queue {
                let addr = ((id * 0x940) % (1 << 28)) & !63;
                if dram
                    .enqueue(MemRequest::new(id, ReqKind::Read, addr, dram.cycle()))
                    .is_err()
                {
                    break;
                }
                id += 1;
            }
            let target = dram.cycle() + 500;
            let _ = dram.advance_to(target, Advance::ToNextEvent);
        }
        let t = dram.telemetry();
        assert!(t.busy_cycles > 10_000, "{}", t.busy_cycles);
        assert!(
            t.decision_cycles < t.busy_cycles,
            "a saturated channel must still skip: {} decisions over {} busy cycles",
            t.decision_cycles,
            t.busy_cycles
        );
        assert_eq!(t.causes.total(), t.decision_cycles);
        assert!(
            t.causes.issue_hit + t.causes.issue_miss > 0,
            "a saturated run issues commands"
        );
    }

    #[test]
    fn occupancy_histogram_covers_every_cycle() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        for i in 0..6u64 {
            dram.enqueue(MemRequest::new(i, ReqKind::Read, i * 0x2000, 0))
                .unwrap();
        }
        let _ = dram.advance_to(5_000, Advance::ToNextEvent);
        let s = dram.stats();
        let read_samples: u64 = s.read_q_occupancy.iter().sum();
        let write_samples: u64 = s.write_q_occupancy.iter().sum();
        assert_eq!(read_samples, s.cycles, "one read sample per cycle");
        assert_eq!(write_samples, s.cycles, "one write sample per cycle");
        assert!(s.mean_read_q_occupancy() > 0.0);
        assert_eq!(s.write_q_occupancy[0], s.cycles, "no writes queued");
    }
}

#[cfg(test)]
mod review_repro {
    use super::*;
    use crate::config::DramConfig;
    use crate::request::{MemRequest, ReqKind};

    #[test]
    fn gate_with_populated_cache_matches_rescan() {
        use rand::{Rng, SeedableRng};
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut id = 0u64;
        for t in 0..60_000u64 {
            // bursty writes to force drain mode, steady reads
            let w_burst = (t / 400) % 2 == 0;
            if rng.gen_bool(0.5) {
                let kind = if w_burst && rng.gen_bool(0.7) {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let addr = rng.gen_range(0..(1u64 << 28)) & !63;
                if dram.enqueue(MemRequest::new(id, kind, addr, t)).is_ok() {
                    id += 1;
                }
            }
            // populate the read-issue cache the way event-driven callers do
            let _ = dram.next_read_issue_cycle();
            assert_eq!(
                dram.next_sched_action(),
                dram.next_sched_action_rescan(),
                "decision diverged at cycle {t} (draining={})",
                dram.write_queue_len()
            );
            dram.tick();
        }
    }
}
