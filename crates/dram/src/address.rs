//! Physical-address decoding into DRAM coordinates.
//!
//! The mapping interleaves consecutive cache lines across bank groups and
//! banks before ranks and rows (Co→Bg→Ba→Ra→Row from the low bits up), the
//! usual choice for maximizing bank-level parallelism on streaming access,
//! with an XOR swizzle of low row bits into the bank index to break
//! pathological power-of-two strides.

use crate::config::DramConfig;

/// A physical address decomposed into DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    /// Rank index.
    pub rank: u32,
    /// Bank group index.
    pub bank_group: u32,
    /// Bank index within the group.
    pub bank: u32,
    /// Row index.
    pub row: u32,
    /// Column index (cache-line granularity).
    pub column: u32,
}

impl DecodedAddr {
    /// Flat bank identifier on the channel, `0..config.total_banks()`.
    pub fn flat_bank(&self, cfg: &DramConfig) -> u32 {
        (self.rank * cfg.bank_groups + self.bank_group) * cfg.banks_per_group + self.bank
    }
}

/// Address mapping for one channel.
#[derive(Debug, Clone)]
pub struct AddressMapping {
    line_shift: u32,
    col_bits: u32,
    bg_bits: u32,
    bank_bits: u32,
    rank_bits: u32,
    row_bits: u32,
}

impl AddressMapping {
    /// Builds the mapping for `cfg`.
    pub fn new(cfg: &DramConfig) -> Self {
        Self {
            line_shift: cfg.line_bytes.trailing_zeros(),
            col_bits: cfg.columns.trailing_zeros(),
            bg_bits: cfg.bank_groups.trailing_zeros(),
            bank_bits: cfg.banks_per_group.trailing_zeros(),
            rank_bits: cfg.ranks.trailing_zeros(),
            row_bits: cfg.rows.trailing_zeros(),
        }
    }

    /// Decodes a byte address into DRAM coordinates. Addresses beyond the
    /// channel capacity wrap (the modulo keeps synthetic traces simple).
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        let mut a = addr >> self.line_shift;
        let take = |a: &mut u64, bits: u32| -> u32 {
            let v = (*a & ((1 << bits) - 1)) as u32;
            *a >>= bits;
            v
        };
        let mut a2 = a;
        // Bank group first: consecutive lines rotate bank groups so
        // streaming traffic is gated by tCCD_S, not tCCD_L — the standard
        // DDR4 bank-group interleaving.
        let bank_group = take(&mut a2, self.bg_bits);
        let bank = take(&mut a2, self.bank_bits);
        let column = take(&mut a2, self.col_bits);
        let rank = take(&mut a2, self.rank_bits);
        let row = take(&mut a2, self.row_bits);
        a = a2;
        let _ = a;
        // XOR swizzle: fold low row bits into the bank/bank-group indices.
        let bank = bank ^ (row & ((1 << self.bank_bits) - 1));
        let bank_group = bank_group ^ ((row >> self.bank_bits) & ((1 << self.bg_bits) - 1));
        DecodedAddr {
            rank,
            bank_group,
            bank,
            row,
            column,
        }
    }

    /// Re-encodes coordinates into a canonical byte address (inverse of
    /// [`Self::decode`] up to capacity wrapping).
    pub fn encode(&self, d: &DecodedAddr) -> u64 {
        let bank_group = d.bank_group ^ ((d.row >> self.bank_bits) & ((1 << self.bg_bits) - 1));
        let bank = d.bank ^ (d.row & ((1 << self.bank_bits) - 1));
        let mut a = u64::from(d.row);
        a = (a << self.rank_bits) | u64::from(d.rank);
        a = (a << self.col_bits) | u64::from(d.column);
        a = (a << self.bank_bits) | u64::from(bank);
        a = (a << self.bg_bits) | u64::from(bank_group);
        a << self.line_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> (DramConfig, AddressMapping) {
        let cfg = DramConfig::ddr4_3200();
        let m = AddressMapping::new(&cfg);
        (cfg, m)
    }

    #[test]
    fn decode_encode_roundtrip() {
        let (_, m) = mapping();
        for addr in [0u64, 64, 4096, 0xDEAD_BE40, 0x3_FFFF_FFC0, 0x1_0000_0000] {
            let d = m.decode(addr);
            assert_eq!(m.encode(&d), addr & !63, "addr {addr:#x}");
        }
    }

    #[test]
    fn consecutive_lines_rotate_bank_groups() {
        let (cfg, m) = mapping();
        // Adjacent lines land in different bank groups (tCCD_S gating)...
        let d0 = m.decode(0);
        let d1 = m.decode(64);
        assert_ne!(d0.bank_group, d1.bank_group);
        assert_eq!(d0.row, d1.row);
        // ...and a 16-line stride returns to the same bank, next column.
        let stride = u64::from(cfg.bank_groups * cfg.banks_per_group * cfg.line_bytes);
        let d16 = m.decode(stride);
        assert_eq!(d0.flat_bank(&cfg), d16.flat_bank(&cfg));
        assert_eq!(d16.column, d0.column + 1);
        assert_eq!(d16.row, d0.row);
    }

    #[test]
    fn coordinates_stay_in_range() {
        let (cfg, m) = mapping();
        let mut addr = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..1000 {
            addr = addr.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(0x63);
            let d = m.decode(addr);
            assert!(d.rank < cfg.ranks);
            assert!(d.bank_group < cfg.bank_groups);
            assert!(d.bank < cfg.banks_per_group);
            assert!(d.row < cfg.rows);
            assert!(d.column < cfg.columns);
        }
    }

    #[test]
    fn flat_bank_is_injective() {
        let (cfg, _) = mapping();
        let mut seen = std::collections::HashSet::new();
        for rank in 0..cfg.ranks {
            for bg in 0..cfg.bank_groups {
                for bank in 0..cfg.banks_per_group {
                    let d = DecodedAddr {
                        rank,
                        bank_group: bg,
                        bank,
                        row: 0,
                        column: 0,
                    };
                    assert!(seen.insert(d.flat_bank(&cfg)));
                }
            }
        }
        assert_eq!(seen.len() as u32, cfg.total_banks());
    }

    #[test]
    fn swizzle_varies_bank_with_row() {
        let (cfg, m) = mapping();
        // Same column stride across rows should not always hit one bank.
        let row_stride =
            u64::from(cfg.columns * cfg.line_bytes) * u64::from(cfg.total_banks() / cfg.ranks);
        let banks: std::collections::HashSet<u32> = (0..8u64)
            .map(|i| m.decode(i * row_stride * 2).flat_bank(&cfg))
            .collect();
        assert!(banks.len() > 1, "swizzle should spread strided rows");
    }
}
