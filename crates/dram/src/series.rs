//! Sim-time windowed series recording for one DDR4 channel: the
//! controller's [`ControllerTelemetry`] attribution, per-bank scheduler
//! command counts, and queue-occupancy integrals, bucketed into fixed
//! mem-cycle epochs.
//!
//! Same zero-perturbation discipline as the aggregate telemetry: the
//! recorder is opt-in (`Option` on the controller), keeps plain
//! non-atomic `u64`s, and lives entirely outside
//! [`DramStats`](crate::DramStats) — enabling it provably cannot bend
//! the simulation (pinned by `tests/series_differential.rs`).
//!
//! Epochs close lazily on clock advance ([`EpochRoller`]): the deltas
//! of the cumulative counters since the last close are credited to the
//! epoch that was open while they accumulated. The controller rolls
//! *before* recording at a new `now` — including before crediting a
//! `tick_until` skip span — so every increment (and every wholesale
//! skipped span) lands in the epoch containing its own timestamp.

use secddr_telemetry::{EpochRoller, SeriesSnapshot};

use crate::telemetry::{ControllerTelemetry, DecisionCauses};

/// Per-channel series recorder (see module docs). Owned by
/// [`DramSystem`](crate::DramSystem) behind an `Option`.
#[derive(Debug, Clone)]
pub(crate) struct DramSeries {
    roller: EpochRoller,
    /// Cumulative controller telemetry at the last epoch close.
    base: ControllerTelemetry,
    /// Cumulative scheduler commands (column, PRE, ACT) per flat bank.
    /// One increments per issuing tick, so their sum tracks
    /// `issue_hit + issue_miss` exactly (refresh-path commands are the
    /// `refresh` cause and are deliberately excluded).
    pub(crate) bank_issues: Vec<u64>,
    base_bank: Vec<u64>,
    /// Cumulative occupancy integrals (queue length x cycles), credited
    /// alongside the occupancy histograms at length-change events.
    pub(crate) read_q_integral: u64,
    pub(crate) write_q_integral: u64,
    base_read_q: u64,
    base_write_q: u64,
    snap: SeriesSnapshot,
}

impl DramSeries {
    /// A recorder with `width` mem-cycles per epoch over `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub(crate) fn new(width: u64, banks: usize) -> Self {
        Self {
            roller: EpochRoller::new(width),
            base: ControllerTelemetry::default(),
            bank_issues: vec![0; banks],
            base_bank: vec![0; banks],
            read_q_integral: 0,
            write_q_integral: 0,
            base_read_q: 0,
            base_write_q: 0,
            snap: SeriesSnapshot::new(width),
        }
    }

    /// Closes the open epoch if `now` crossed a window boundary,
    /// crediting everything accumulated since the last close. Call
    /// before recording anything at `now`.
    pub(crate) fn roll(&mut self, now: u64, telemetry: &ControllerTelemetry) {
        if let Some(epoch) = self.roller.close_epoch(now) {
            self.flush(epoch, telemetry);
        }
    }

    /// Credits the cumulative-vs-base deltas to `epoch` and re-bases.
    fn flush(&mut self, epoch: u64, telemetry: &ControllerTelemetry) {
        let snap = &mut self.snap;
        snap.add(
            "dram.decisions_total",
            epoch,
            telemetry.decision_cycles - self.base.decision_cycles,
        );
        snap.add(
            "dram.busy_cycles",
            epoch,
            telemetry.busy_cycles - self.base.busy_cycles,
        );
        // Exhaustive destructuring: a new cause must pick its row name
        // here (and therefore join the reconciliation) to compile.
        let DecisionCauses {
            issue_hit,
            issue_miss,
            refresh,
            completion,
            drain_flip,
            aging,
            noop,
        } = telemetry.causes;
        let b = self.base.causes;
        snap.add("dram.decision.issue_hit", epoch, issue_hit - b.issue_hit);
        snap.add("dram.decision.issue_miss", epoch, issue_miss - b.issue_miss);
        snap.add("dram.decision.refresh", epoch, refresh - b.refresh);
        snap.add("dram.decision.completion", epoch, completion - b.completion);
        snap.add("dram.decision.drain_flip", epoch, drain_flip - b.drain_flip);
        snap.add("dram.decision.aging", epoch, aging - b.aging);
        snap.add("dram.decision.noop", epoch, noop - b.noop);
        for (bank, (cur, base)) in self
            .bank_issues
            .iter()
            .zip(self.base_bank.iter_mut())
            .enumerate()
        {
            if *cur > *base {
                snap.add(&format!("dram.bank{bank:02}.issues"), epoch, cur - *base);
            }
            *base = *cur;
        }
        snap.add(
            "dram.read_q_integral",
            epoch,
            self.read_q_integral - self.base_read_q,
        );
        snap.add(
            "dram.write_q_integral",
            epoch,
            self.write_q_integral - self.base_write_q,
        );
        self.base = *telemetry;
        self.base_read_q = self.read_q_integral;
        self.base_write_q = self.write_q_integral;
    }

    /// The series so far, with the open partial epoch folded in — plus
    /// the still-uncredited occupancy tail the controller computes the
    /// same way [`DramSystem::stats`](crate::DramSystem::stats) folds
    /// its open occupancy span. Non-destructive: recording continues.
    pub(crate) fn snapshot_with_tail(
        &self,
        telemetry: &ControllerTelemetry,
        read_tail: u64,
        write_tail: u64,
    ) -> SeriesSnapshot {
        let mut copy = self.clone();
        copy.read_q_integral += read_tail;
        copy.write_q_integral += write_tail;
        let open = copy.roller.open_epoch();
        copy.flush(open, telemetry);
        copy.snap
    }
}
