//! Controller-side telemetry: advance-policy accounting plus the
//! per-decision-cause attribution the perf work is steered by.
//!
//! These are plain per-instance `u64`s owned by the controller — not
//! registry atomics — so recording costs one add on a field the tick
//! already touches, results stay isolated per [`DramSystem`] (the bench
//! harness reconciles per-record totals), and instrumentation provably
//! cannot perturb simulation state. They live outside
//! [`DramStats`](crate::DramStats) because the per-cycle reference and
//! `tick_until` *disagree on them by design* (that is what they
//! measure), while `DramStats` participates in bit-identity.
//!
//! [`DramSystem`]: crate::DramSystem

use secddr_telemetry::TelemetrySnapshot;

/// Why an executed decision cycle executed. Every call into
/// `DramSystem::tick` lands in exactly one bucket, so
/// [`DecisionCauses::total`] equals
/// [`ControllerTelemetry::decision_cycles`] by construction — the
/// reconciliation the bench harness asserts per record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCauses {
    /// A row-hit column command issued (READ/WRITE into an open row).
    pub issue_hit: u64,
    /// A row-miss command issued (column after PRE/ACT, or the PRE/ACT
    /// itself).
    pub issue_miss: u64,
    /// Refresh management used the command slot (REF or refresh-path
    /// PRE).
    pub refresh: u64,
    /// No command issued, but at least one completion's final data beat
    /// landed this cycle.
    pub completion: u64,
    /// The write-drain hysteresis flipped and nothing else happened.
    pub drain_flip: u64,
    /// A no-op tick while the active queue's oldest request is past the
    /// anti-starvation limit (the aging bound wakes the controller every
    /// cycle until the starving request issues).
    pub aging: u64,
    /// Any other executed no-op tick (a conservatively early decision
    /// bound, or a per-cycle caller ticking through a dead cycle).
    pub noop: u64,
}

impl DecisionCauses {
    /// Sum over every cause — equals the executed decision cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        // Exhaustive destructuring: a new cause must join the sum (and
        // therefore the reconciliation) or fail to compile.
        let Self {
            issue_hit,
            issue_miss,
            refresh,
            completion,
            drain_flip,
            aging,
            noop,
        } = self;
        issue_hit + issue_miss + refresh + completion + drain_flip + aging + noop
    }

    /// Accumulates `other` into `self` (every bucket sums).
    pub fn merge(&mut self, other: &Self) {
        let Self {
            issue_hit,
            issue_miss,
            refresh,
            completion,
            drain_flip,
            aging,
            noop,
        } = other;
        self.issue_hit += issue_hit;
        self.issue_miss += issue_miss;
        self.refresh += refresh;
        self.completion += completion;
        self.drain_flip += drain_flip;
        self.aging += aging;
        self.noop += noop;
    }
}

/// Deterministic advance-policy counters for one controller: how many
/// cycles it actually executed ([`Self::decision_cycles`]) versus how
/// many busy cycles it covered ([`Self::busy_cycles`], executed or
/// skipped), with every executed cycle attributed to a
/// [`DecisionCauses`] bucket.
///
/// The per-cycle reference executes every busy cycle while `tick_until`
/// executes only decision cycles, so these differ between bit-identical
/// runs — the noise-free form of the event-ization win on a steal-noisy
/// host, and the breakdown that says *which* decisions dominate at high
/// core counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerTelemetry {
    /// Calls into `DramSystem::tick` — cycles the controller executed.
    pub decision_cycles: u64,
    /// Cycles covered (executed or skipped) while the controller was
    /// not idle. Identical across advance policies.
    pub busy_cycles: u64,
    /// Per-cause attribution of the executed cycles.
    pub causes: DecisionCauses,
}

impl ControllerTelemetry {
    /// Accumulates `other` into `self` (for cross-shard aggregation).
    pub fn merge(&mut self, other: &Self) {
        let Self {
            decision_cycles,
            busy_cycles,
            causes,
        } = other;
        self.decision_cycles += decision_cycles;
        self.busy_cycles += busy_cycles;
        self.causes.merge(causes);
    }

    /// Renders into `snap` under the `dram.` prefix
    /// (`dram.decision.issue_hit`, …, `dram.decisions_total`,
    /// `dram.busy_cycles`).
    pub fn render_into(&self, snap: &mut TelemetrySnapshot) {
        let Self {
            decision_cycles,
            busy_cycles,
            causes,
        } = self;
        snap.add_counter("dram.decisions_total", *decision_cycles);
        snap.add_counter("dram.busy_cycles", *busy_cycles);
        let DecisionCauses {
            issue_hit,
            issue_miss,
            refresh,
            completion,
            drain_flip,
            aging,
            noop,
        } = causes;
        snap.add_counter("dram.decision.issue_hit", *issue_hit);
        snap.add_counter("dram.decision.issue_miss", *issue_miss);
        snap.add_counter("dram.decision.refresh", *refresh);
        snap.add_counter("dram.decision.completion", *completion);
        snap.add_counter("dram.decision.drain_flip", *drain_flip);
        snap.add_counter("dram.decision.aging", *aging);
        snap.add_counter("dram.decision.noop", *noop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causes_total_and_merge_agree() {
        let mut a = DecisionCauses {
            issue_hit: 3,
            completion: 2,
            noop: 1,
            ..Default::default()
        };
        let b = DecisionCauses {
            issue_miss: 4,
            refresh: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 11);
    }

    #[test]
    fn snapshot_causes_reconcile_with_total() {
        let t = ControllerTelemetry {
            decision_cycles: 10,
            busy_cycles: 40,
            causes: DecisionCauses {
                issue_hit: 4,
                issue_miss: 3,
                completion: 2,
                noop: 1,
                ..Default::default()
            },
        };
        let mut snap = TelemetrySnapshot::new();
        t.render_into(&mut snap);
        assert_eq!(
            snap.counter_prefix_sum("dram.decision."),
            snap.counter("dram.decisions_total")
        );
        assert_eq!(snap.counter("dram.busy_cycles"), 40);
    }
}
