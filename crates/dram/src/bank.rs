//! Per-bank and per-rank DDR4 timing state.

use std::collections::VecDeque;

/// Timing state of one DRAM bank.
#[derive(Debug, Clone, Default)]
pub(crate) struct Bank {
    /// Currently open row, if any.
    pub open_row: Option<u32>,
    /// Earliest cycle an ACT may issue (tRP / tRFC).
    pub next_act: u64,
    /// Earliest cycle a READ may issue (tRCD after ACT).
    pub next_read: u64,
    /// Earliest cycle a WRITE may issue.
    pub next_write: u64,
    /// Earliest cycle a PRE may issue (tRAS / tRTP / tWR).
    pub next_pre: u64,
}

/// Timing state shared by all banks of a rank.
#[derive(Debug, Clone)]
pub(crate) struct Rank {
    /// Issue times of the most recent ACTs (tFAW window, max 4 retained).
    pub act_window: VecDeque<u64>,
    /// Earliest next ACT anywhere in the rank (tRRD_S).
    pub next_act_any: u64,
    /// Earliest next ACT per bank group (tRRD_L).
    pub next_act_same_bg: Vec<u64>,
    /// Earliest next column command anywhere in the rank (tCCD_S).
    pub next_col_any: u64,
    /// Earliest next column command per bank group (tCCD_L).
    pub next_col_same_bg: Vec<u64>,
    /// Earliest next READ anywhere in the rank (tWTR_S after a write).
    pub next_read_any: u64,
    /// Earliest next READ per bank group (tWTR_L after a write).
    pub next_read_same_bg: Vec<u64>,
    /// Cycle at which the next refresh becomes due.
    pub refresh_due: u64,
    /// Whether a refresh is pending (blocks new row activity).
    pub refresh_pending: bool,
}

impl Rank {
    pub fn new(bank_groups: u32, t_refi: u64) -> Self {
        Self {
            act_window: VecDeque::with_capacity(4),
            next_act_any: 0,
            next_act_same_bg: vec![0; bank_groups as usize],
            next_col_any: 0,
            next_col_same_bg: vec![0; bank_groups as usize],
            next_read_any: 0,
            next_read_same_bg: vec![0; bank_groups as usize],
            refresh_due: t_refi,
            refresh_pending: false,
        }
    }

    /// Earliest ACT permitted by the four-activate window.
    pub fn faw_ready(&self, t_faw: u64) -> u64 {
        if self.act_window.len() < 4 {
            0
        } else {
            self.act_window[0] + t_faw
        }
    }

    /// Records an ACT at `cycle` in the tFAW window.
    pub fn record_act(&mut self, cycle: u64) {
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faw_window_tracks_last_four() {
        let mut r = Rank::new(4, 1000);
        assert_eq!(r.faw_ready(34), 0);
        for t in [10, 20, 30, 40] {
            r.record_act(t);
        }
        assert_eq!(r.faw_ready(34), 10 + 34);
        r.record_act(50);
        assert_eq!(r.faw_ready(34), 20 + 34);
        assert_eq!(r.act_window.len(), 4);
    }

    #[test]
    fn bank_default_is_closed_and_ready() {
        let b = Bank::default();
        assert!(b.open_row.is_none());
        assert_eq!(b.next_act, 0);
    }
}
