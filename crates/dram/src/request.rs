//! Memory requests and completions exchanged with the controller.

/// Direction of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// A line fill (LLC miss or metadata fetch).
    Read,
    /// A line writeback.
    Write,
}

/// One cache-line-granularity request presented to the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-assigned identifier, echoed in the [`Completion`].
    pub id: u64,
    /// Read or write.
    pub kind: ReqKind,
    /// Physical byte address (line-aligned internally).
    pub addr: u64,
    /// Memory-clock cycle at which the request entered the queue.
    pub enqueue_cycle: u64,
}

impl MemRequest {
    /// Convenience constructor.
    pub fn new(id: u64, kind: ReqKind, addr: u64, enqueue_cycle: u64) -> Self {
        Self {
            id,
            kind,
            addr,
            enqueue_cycle,
        }
    }
}

/// Completion record returned by [`crate::DramSystem::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Identifier of the completed request.
    pub id: u64,
    /// Read or write.
    pub kind: ReqKind,
    /// Memory-clock cycle at which the last data beat transferred.
    pub finish_cycle: u64,
    /// Cycle the request was enqueued (for latency accounting).
    pub enqueue_cycle: u64,
}

impl Completion {
    /// Queueing + service latency in memory-clock cycles.
    pub fn latency(&self) -> u64 {
        self.finish_cycle.saturating_sub(self.enqueue_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_latency() {
        let c = Completion {
            id: 1,
            kind: ReqKind::Read,
            finish_cycle: 100,
            enqueue_cycle: 40,
        };
        assert_eq!(c.latency(), 60);
    }
}
