//! Event-driven simulation kernel shared by every timing layer of the
//! SecDDR reproduction.
//!
//! The seed simulator advanced the CPU system, the security engine, and
//! the DRAM controller one cycle at a time even when every queue was
//! idle. This crate provides the three pieces the layers now share:
//!
//! * [`SimClock`] — a monotonically advancing cycle counter with explicit
//!   single-step ([`SimClock::tick`]) and fast-forward
//!   ([`SimClock::skip_to`]) transitions;
//! * [`EventQueue`] — a binary-heap timestamped event queue with stable
//!   FIFO ordering for same-cycle events, used for in-flight memory
//!   completions at every layer;
//! * [`Advance`] — the advance policy. [`Advance::ToNextEvent`] lets a
//!   layer jump its clock over provably idle stretches;
//!   [`Advance::PerCycle`] is the reference lock-step semantics the
//!   equivalence tests compare against.
//!
//! The contract every fast-path must uphold: a skipped cycle is one where
//! the per-cycle reference would have done *nothing* — so statistics,
//! command schedules, and completion times are bit-identical between the
//! two policies. Each layer derives its own "next possible event" lower
//! bound (DRAM timing thresholds, ROB head readiness, backend completion
//! times) and the kernel supplies the mechanics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast multiply-xor hasher (FxHash-style) for the simulators' hot
/// integer-keyed maps (tokens, line addresses, transaction ids).
///
/// Not DoS-resistant — simulation state is never attacker-controlled, and
/// the default SipHash costs real wall-clock on per-event bookkeeping.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// How a simulation layer advances its clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Advance {
    /// Lock-step reference semantics: every cycle is simulated.
    PerCycle,
    /// Event-driven fast path: idle stretches (cycles where the per-cycle
    /// reference provably does nothing) are skipped in one jump.
    #[default]
    ToNextEvent,
}

impl Advance {
    /// True when the event-driven fast path is enabled.
    #[inline]
    #[must_use]
    pub fn is_event_driven(self) -> bool {
        matches!(self, Advance::ToNextEvent)
    }
}

/// A simulation clock counting cycles from zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    now: u64,
}

impl SimClock {
    /// A clock at cycle zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current cycle.
    #[inline]
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances one cycle and returns the new time.
    #[inline]
    pub fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// Fast-forwards to `cycle` and returns how many cycles were skipped.
    ///
    /// The caller asserts that nothing observable happens in the skipped
    /// range `(now, cycle]`; this is the [`Advance::ToNextEvent`] jump.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is in the past.
    #[inline]
    pub fn skip_to(&mut self, cycle: u64) -> u64 {
        assert!(cycle >= self.now, "SimClock cannot move backwards");
        let skipped = cycle - self.now;
        self.now = cycle;
        skipped
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled<T> {
    at: u64,
    seq: u64,
    payload: T,
}

impl<T: Eq> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<T: Eq> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A timestamped event queue over a binary heap.
///
/// Events pop in `(time, insertion order)` order, so same-cycle events
/// keep FIFO semantics — the property the per-cycle reference loops
/// provided implicitly by scanning vectors in insertion order.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<T: Eq> {
    heap: BinaryHeap<Reverse<Scheduled<T>>>,
    next_seq: u64,
}

impl<T: Eq> EventQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: u64, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, payload }));
    }

    /// The cycle of the earliest scheduled event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// The earliest scheduled `(time, payload)` without removing it.
    ///
    /// Schedulers with lazy staleness filtering use this to inspect the
    /// head entry and pop it only when it turns out to be stale — the
    /// pop-then-push round trip (two sift operations plus a burned
    /// sequence number per inspection) disappears.
    #[must_use]
    pub fn peek(&self) -> Option<(u64, &T)> {
        self.heap.peek().map(|Reverse(s)| (s.at, &s.payload))
    }

    /// As [`Self::peek`], but only when the head entry fires at or
    /// before `now`.
    #[must_use]
    pub fn peek_due(&self, now: u64) -> Option<(u64, &T)> {
        self.peek().filter(|&(at, _)| at <= now)
    }

    /// Pops the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, T)> {
        if self.peek_time()? <= now {
            self.heap.pop().map(|Reverse(s)| (s.at, s.payload))
        } else {
            None
        }
    }

    /// Iterates over all scheduled `(time, payload)` entries in
    /// unspecified order.
    ///
    /// Lets a layer derive *filtered* bounds (e.g. "earliest completion
    /// among tokens owned by one core") without popping; use
    /// [`Self::peek_time`] for the unfiltered minimum.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.heap.iter().map(|Reverse(s)| (s.at, &s.payload))
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Folds a candidate next-event time into a running lower bound, keeping
/// only candidates strictly after `now`.
///
/// Helper for the per-layer "earliest possible activity" computations: a
/// threshold at or before `now` is already satisfied and cannot be what
/// the layer is waiting on.
#[inline]
pub fn fold_next_event(now: u64, bound: &mut u64, candidate: u64) {
    if candidate > now && candidate < *bound {
        *bound = candidate;
    }
}

/// Folds a candidate threshold into a running lower bound, clamping
/// candidates at or before `now` to `now + 1`.
///
/// Helper for *decision* bounds, where an already-satisfied threshold
/// means the decision could fire on the very next tick (it may merely be
/// deprioritized right now, e.g. a precharge losing the command slot to a
/// column burst) — unlike [`fold_next_event`], which drops past-due
/// candidates because a *quiescent* layer is by definition not waiting on
/// them.
#[inline]
pub fn fold_ready_event(now: u64, bound: &mut u64, candidate: u64) {
    let candidate = candidate.max(now + 1);
    if candidate < *bound {
        *bound = candidate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ticks_and_skips() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.skip_to(10), 9);
        assert_eq!(c.now(), 10);
        assert_eq!(c.skip_to(10), 0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_rejects_rewind() {
        let mut c = SimClock::new();
        c.skip_to(5);
        c.skip_to(4);
    }

    #[test]
    fn queue_pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.push(5, "b");
        q.push(3, "a");
        q.push(5, "c");
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop_due(2), None);
        assert_eq!(q.pop_due(5), Some((3, "a")));
        assert_eq!(q.pop_due(5), Some((5, "b")), "FIFO among same-cycle events");
        assert_eq!(q.pop_due(5), Some((5, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_is_non_destructive_and_fifo_consistent() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek(), None);
        q.push(7, "late");
        q.push(4, "early");
        assert_eq!(q.peek(), Some((4, &"early")));
        assert_eq!(q.peek(), Some((4, &"early")), "peek must not pop");
        assert_eq!(q.peek_due(3), None);
        assert_eq!(q.peek_due(4), Some((4, &"early")));
        assert_eq!(q.pop_due(10), Some((4, "early")));
        assert_eq!(q.peek(), Some((7, &"late")));
    }

    #[test]
    fn queue_len_tracks_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, 10u64);
        q.push(1, 11u64);
        assert_eq!(q.len(), 2);
        let _ = q.pop_due(1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn fold_next_event_keeps_earliest_future_candidate() {
        let mut bound = u64::MAX;
        fold_next_event(10, &mut bound, 9); // past: ignored
        fold_next_event(10, &mut bound, 10); // present: ignored
        fold_next_event(10, &mut bound, 40);
        fold_next_event(10, &mut bound, 25);
        assert_eq!(bound, 25);
    }

    #[test]
    fn fold_ready_event_clamps_past_due_to_next_cycle() {
        let mut bound = u64::MAX;
        fold_ready_event(10, &mut bound, 40);
        assert_eq!(bound, 40);
        fold_ready_event(10, &mut bound, 9); // past-due: ready next cycle
        assert_eq!(bound, 11);
        fold_ready_event(10, &mut bound, 10); // present: same clamp
        assert_eq!(bound, 11);
        let mut tight = 11u64;
        fold_ready_event(10, &mut tight, 25); // cannot improve on now+1
        assert_eq!(tight, 11);
    }

    #[test]
    fn advance_default_is_event_driven() {
        assert!(Advance::default().is_event_driven());
        assert!(!Advance::PerCycle.is_event_driven());
    }
}
