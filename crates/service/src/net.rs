//! Line-delimited-JSON TCP front-end: [`ExperimentServer`] exposes an
//! [`ExperimentService`] to concurrent clients; [`ServiceClient`] is the
//! matching blocking client.
//!
//! # Protocol
//!
//! One JSON object per `\n`-terminated line, both directions.
//! Requests:
//!
//! ```text
//! {"cmd":"submit","spec":{…}}      → {"type":"submitted","job":N,"cells":M}
//! {"cmd":"cancel","job":N}         → {"type":"cancel_ack","job":N,"cancelled":bool}
//! {"cmd":"cache_stats"}            → {"type":"cache_stats",…}
//! {"cmd":"metrics"}                → {"type":"metrics","counters":{…},…}
//! {"cmd":"series","job":N}         → {"type":"series","job":N,"available":bool,…}
//! {"cmd":"ping"}                   → {"type":"pong"}
//! {"cmd":"shutdown"}               → {"type":"shutting_down"} (server then exits)
//! ```
//!
//! After a successful submit the job's events stream to the same
//! connection as `{"type":"queued"|"started"|"cell"|"metrics_frame"|
//! "finished"|"cancelled","job":N,…}` lines (one live `metrics_frame`
//! per completed cell). Events of one job are written by one
//! forwarder thread in stream order, so **per-job** event order is
//! preserved; events of different jobs (and command responses)
//! interleave arbitrarily between them — every line carries its job id.
//! Malformed input produces `{"type":"error","message":…}` and keeps
//! the connection open.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use cpu_model::SimResult;

use crate::json::Json;
use crate::service::{ExperimentService, JobEvent, JobId, ServiceStats};
use crate::spec::JobSpec;

/// Serializes one job event to its wire object.
#[must_use]
pub fn event_to_json(event: &JobEvent) -> Json {
    fn sim_to_json(sim: &SimResult) -> Json {
        Json::Obj(vec![
            ("instructions".into(), Json::u64(sim.instructions)),
            ("cycles".into(), Json::u64(sim.cycles)),
            ("ipc".into(), Json::f64(sim.ipc())),
            ("llc_misses".into(), Json::u64(sim.llc.misses)),
        ])
    }
    match event {
        JobEvent::Queued { job, cells } => Json::Obj(vec![
            ("type".into(), Json::str("queued")),
            ("job".into(), Json::u64(job.0)),
            ("cells".into(), Json::u64(*cells as u64)),
        ]),
        JobEvent::Started { job } => Json::Obj(vec![
            ("type".into(), Json::str("started")),
            ("job".into(), Json::u64(job.0)),
        ]),
        JobEvent::Cell {
            job,
            index,
            total,
            result,
        } => {
            let merged = result.merged();
            Json::Obj(vec![
                ("type".into(), Json::str("cell")),
                ("job".into(), Json::u64(job.0)),
                ("index".into(), Json::u64(*index as u64)),
                ("total".into(), Json::u64(*total as u64)),
                ("benchmark".into(), Json::str(result.benchmark.clone())),
                ("config".into(), Json::str(result.config.clone())),
                ("aggregate_ipc".into(), Json::f64(result.aggregate_ipc())),
                (
                    "per_core".into(),
                    Json::Arr(result.per_core.iter().map(sim_to_json).collect()),
                ),
                ("merged".into(), sim_to_json(&merged)),
                (
                    "engine_data_reads".into(),
                    Json::u64(result.engine.data_reads),
                ),
                (
                    "engine_data_writes".into(),
                    Json::u64(result.engine.data_writes),
                ),
            ])
        }
        JobEvent::Metrics { job, counters } => Json::Obj(vec![
            // Distinct from the "metrics" command response: frames carry
            // a job id and only the counters that moved.
            ("type".into(), Json::str("metrics_frame")),
            ("job".into(), Json::u64(job.0)),
            (
                "counters".into(),
                Json::Obj(
                    counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::u64(*v)))
                        .collect(),
                ),
            ),
        ]),
        JobEvent::Finished { job, summary } => Json::Obj(vec![
            ("type".into(), Json::str("finished")),
            ("job".into(), Json::u64(job.0)),
            ("cells".into(), Json::u64(summary.cells as u64)),
            ("merged".into(), sim_to_json(&summary.merged)),
        ]),
        JobEvent::Cancelled { job, completed } => Json::Obj(vec![
            ("type".into(), Json::str("cancelled")),
            ("job".into(), Json::u64(job.0)),
            ("completed".into(), Json::u64(*completed as u64)),
        ]),
        JobEvent::Failed { job, error } => Json::Obj(vec![
            ("type".into(), Json::str("failed")),
            ("job".into(), Json::u64(job.0)),
            ("error".into(), Json::str(error.clone())),
        ]),
    }
}

fn stats_to_json(stats: &ServiceStats) -> Json {
    Json::Obj(vec![
        ("type".into(), Json::str("cache_stats")),
        (
            "trace_memory_hits".into(),
            Json::u64(stats.traces.memory_hits),
        ),
        ("trace_disk_hits".into(), Json::u64(stats.traces.disk_hits)),
        ("trace_generated".into(), Json::u64(stats.traces.generated)),
        ("jobs_submitted".into(), Json::u64(stats.jobs_submitted)),
        ("jobs_completed".into(), Json::u64(stats.jobs_completed)),
    ])
}

/// Serializes a telemetry snapshot to the `metrics` response object:
/// counters and gauges as name→value maps, histograms as
/// name→`{count,sum,mean,p50,p95,p99}` (percentiles carry the
/// histogram's documented bucket-upper-bound semantics; the full bucket
/// vectors stay in-process — the wire view is for dashboards and CI
/// assertions). Public so other front-ends speaking the same protocol
/// (the fleet dispatcher) serve an identical `metrics` response shape.
#[must_use]
pub fn metrics_to_json(snap: &secddr_telemetry::TelemetrySnapshot) -> Json {
    let map = |entries: &std::collections::BTreeMap<String, u64>| {
        Json::Obj(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), Json::u64(*v)))
                .collect(),
        )
    };
    Json::Obj(vec![
        ("type".into(), Json::str("metrics")),
        ("counters".into(), map(&snap.counters)),
        ("gauges".into(), map(&snap.gauges)),
        (
            "histograms".into(),
            Json::Obj(
                snap.histograms
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            Json::Obj(vec![
                                ("count".into(), Json::u64(h.count)),
                                ("sum".into(), Json::u64(h.sum)),
                                ("mean".into(), Json::f64(h.mean())),
                                ("p50".into(), Json::u64(h.percentile(50.0))),
                                ("p95".into(), Json::u64(h.percentile(95.0))),
                                ("p99".into(), Json::u64(h.percentile(99.0))),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serializes the `series` response: the job's stored sim-time series
/// as name→epoch-vector rows, or `available: false` when the job is
/// unknown, still running, or recorded nothing.
fn series_to_json(job: u64, series: Option<&secddr_telemetry::SeriesSnapshot>) -> Json {
    let mut members = vec![
        ("type".into(), Json::str("series")),
        ("job".into(), Json::u64(job)),
        ("available".into(), Json::Bool(series.is_some())),
    ];
    if let Some(series) = series {
        members.push(("epoch_width".into(), Json::u64(series.epoch_width)));
        members.push((
            "rows".into(),
            Json::Obj(
                series
                    .rows
                    .iter()
                    .map(|(name, row)| {
                        (
                            name.clone(),
                            Json::Arr(row.iter().map(|&v| Json::u64(v)).collect()),
                        )
                    })
                    .collect(),
            ),
        ));
    }
    Json::Obj(members)
}

fn error_json(message: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("type".into(), Json::str("error")),
        ("message".into(), Json::Str(message.into())),
    ])
}

/// Writes one JSON line under the connection's write lock.
fn write_line(writer: &Mutex<TcpStream>, json: &Json) -> std::io::Result<()> {
    let mut stream = writer.lock().expect("writer lock");
    let mut line = json.to_string();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// The TCP front-end over one [`ExperimentService`].
pub struct ExperimentServer {
    service: Arc<ExperimentService>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

impl ExperimentServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over
    /// `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs, service: ExperimentService) -> std::io::Result<Self> {
        Ok(Self {
            service: Arc::new(service),
            listener: TcpListener::bind(addr)?,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (read the ephemeral port from here).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Self::serve`] return (the `shutdown`
    /// command uses the same mechanism).
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.local_addr().ok(),
        }
    }

    /// Accepts and serves connections until a shutdown is requested,
    /// drains in-flight jobs, and returns.
    ///
    /// The drain is explicit ([`ExperimentService::drain`]) rather than
    /// relying on dropping the service: connection threads hold their
    /// own references, so a drop here would not join the pool. Every
    /// queued/running job reaches its terminal event before this
    /// returns — the "clean shutdown" the CI gate asserts. (Forwarder
    /// threads may still be flushing final event lines to slow clients
    /// when the process exits; a client that needs the terminal event
    /// should read it before requesting shutdown, as the example does.)
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures (per-connection I/O errors only
    /// terminate that connection).
    pub fn serve(self) -> std::io::Result<()> {
        for incoming in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = incoming else {
                continue;
            };
            let service = Arc::clone(&self.service);
            let shutdown = ShutdownHandle {
                shutdown: Arc::clone(&self.shutdown),
                addr: self.local_addr().ok(),
            };
            std::thread::spawn(move || handle_connection(stream, &service, &shutdown));
        }
        self.service.drain();
        Ok(())
    }
}

/// Makes a running [`ExperimentServer::serve`] loop return.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    shutdown: Arc<AtomicBool>,
    addr: Option<SocketAddr>,
}

impl ShutdownHandle {
    /// Requests shutdown and nudges the accept loop awake.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(addr) = self.addr {
            // The accept loop only observes the flag on a connection;
            // poke it with one.
            let _ = TcpStream::connect(addr);
        }
    }
}

fn handle_connection(stream: TcpStream, service: &ExperimentService, shutdown: &ShutdownHandle) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // disconnected
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match Json::parse(line.trim()) {
            Ok(v) => v,
            Err(e) => {
                let _ = write_line(&writer, &error_json(format!("bad json: {e}")));
                continue;
            }
        };
        match request.get("cmd").and_then(Json::as_str) {
            Some("submit") => {
                let response = handle_submit(&request, service, &writer);
                if write_line(&writer, &response).is_err() {
                    return;
                }
            }
            Some("cancel") => {
                let Some(job) = request.get("job").and_then(Json::as_u64) else {
                    let _ = write_line(&writer, &error_json("cancel needs a \"job\" id"));
                    continue;
                };
                let cancelled = service.cancel(JobId(job));
                let ack = Json::Obj(vec![
                    ("type".into(), Json::str("cancel_ack")),
                    ("job".into(), Json::u64(job)),
                    ("cancelled".into(), Json::Bool(cancelled)),
                ]);
                if write_line(&writer, &ack).is_err() {
                    return;
                }
            }
            Some("cache_stats") => {
                if write_line(&writer, &stats_to_json(&service.stats())).is_err() {
                    return;
                }
            }
            Some("metrics") => {
                if write_line(&writer, &metrics_to_json(&service.telemetry_snapshot())).is_err() {
                    return;
                }
            }
            Some("series") => {
                let Some(job) = request.get("job").and_then(Json::as_u64) else {
                    let _ = write_line(&writer, &error_json("series needs a \"job\" id"));
                    continue;
                };
                let response = series_to_json(job, service.job_series(JobId(job)).as_ref());
                if write_line(&writer, &response).is_err() {
                    return;
                }
            }
            Some("ping") => {
                let pong = Json::Obj(vec![("type".into(), Json::str("pong"))]);
                if write_line(&writer, &pong).is_err() {
                    return;
                }
            }
            Some("shutdown") => {
                let bye = Json::Obj(vec![("type".into(), Json::str("shutting_down"))]);
                let _ = write_line(&writer, &bye);
                shutdown.shutdown();
                return;
            }
            other => {
                let _ = write_line(&writer, &error_json(format!("unknown cmd {other:?}")));
            }
        }
    }
}

fn handle_submit(
    request: &Json,
    service: &ExperimentService,
    writer: &Arc<Mutex<TcpStream>>,
) -> Json {
    let Some(spec_json) = request.get("spec") else {
        return error_json("submit needs a \"spec\" member");
    };
    let spec = match JobSpec::from_json(spec_json) {
        Ok(spec) => spec,
        Err(e) => return error_json(e.to_string()),
    };
    let cells = spec.cell_count().map_or(0, |c| c as u64);
    match service.submit(spec) {
        Ok(handle) => {
            let job = handle.id().0;
            let writer = Arc::clone(writer);
            // One forwarder per job keeps per-job event order on the
            // wire; the shared writer lock serializes whole lines.
            std::thread::spawn(move || {
                for event in handle.events() {
                    if write_line(&writer, &event_to_json(&event)).is_err() {
                        // Client gone: cancel so the worker stops
                        // burning cycles on unobservable results.
                        handle.cancel();
                        return;
                    }
                }
            });
            Json::Obj(vec![
                ("type".into(), Json::str("submitted")),
                ("job".into(), Json::u64(job)),
                ("cells".into(), Json::u64(cells)),
            ])
        }
        Err(e) => error_json(e.to_string()),
    }
}

/// A parsed server→client line.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// `{"type":"queued",…}`
    Queued {
        /// Job id.
        job: u64,
        /// Cell count.
        cells: u64,
    },
    /// `{"type":"started",…}`
    Started {
        /// Job id.
        job: u64,
    },
    /// `{"type":"cell",…}`
    Cell {
        /// Job id.
        job: u64,
        /// Cell index.
        index: u64,
        /// Cell count.
        total: u64,
        /// Benchmark label.
        benchmark: String,
        /// Configuration label.
        config: String,
        /// Merged instructions.
        instructions: u64,
        /// Merged (slowest-core) cycles.
        cycles: u64,
        /// Sum of per-core IPCs.
        aggregate_ipc: f64,
    },
    /// `{"type":"metrics_frame",…}` — the live per-cell service-metric
    /// delta.
    Metrics {
        /// Job id.
        job: u64,
        /// Counters that increased since the job's previous frame.
        counters: std::collections::BTreeMap<String, u64>,
    },
    /// `{"type":"finished",…}`
    Finished {
        /// Job id.
        job: u64,
        /// Cells run.
        cells: u64,
        /// Merged instructions.
        instructions: u64,
        /// Merged cycles.
        cycles: u64,
    },
    /// `{"type":"cancelled",…}`
    Cancelled {
        /// Job id.
        job: u64,
        /// Cells completed before cancellation.
        completed: u64,
    },
    /// `{"type":"failed",…}`
    Failed {
        /// Job id.
        job: u64,
        /// Server-side failure message.
        error: String,
    },
}

impl WireEvent {
    /// Parses an event line; `None` for non-event lines (acks, errors).
    #[must_use]
    pub fn from_json(json: &Json) -> Option<WireEvent> {
        let job = json.get("job")?.as_u64()?;
        match json.get("type")?.as_str()? {
            "queued" => Some(WireEvent::Queued {
                job,
                cells: json.get("cells")?.as_u64()?,
            }),
            "started" => Some(WireEvent::Started { job }),
            "cell" => {
                let merged = json.get("merged")?;
                Some(WireEvent::Cell {
                    job,
                    index: json.get("index")?.as_u64()?,
                    total: json.get("total")?.as_u64()?,
                    benchmark: json.get("benchmark")?.as_str()?.to_string(),
                    config: json.get("config")?.as_str()?.to_string(),
                    instructions: merged.get("instructions")?.as_u64()?,
                    cycles: merged.get("cycles")?.as_u64()?,
                    aggregate_ipc: json.get("aggregate_ipc")?.as_f64()?,
                })
            }
            "metrics_frame" => {
                let Json::Obj(entries) = json.get("counters")? else {
                    return None;
                };
                Some(WireEvent::Metrics {
                    job,
                    counters: entries
                        .iter()
                        .filter_map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
                        .collect(),
                })
            }
            "finished" => {
                let merged = json.get("merged")?;
                Some(WireEvent::Finished {
                    job,
                    cells: json.get("cells")?.as_u64()?,
                    instructions: merged.get("instructions")?.as_u64()?,
                    cycles: merged.get("cycles")?.as_u64()?,
                })
            }
            "cancelled" => Some(WireEvent::Cancelled {
                job,
                completed: json.get("completed")?.as_u64()?,
            }),
            "failed" => Some(WireEvent::Failed {
                job,
                error: json.get("error")?.as_str()?.to_string(),
            }),
            _ => None,
        }
    }

    /// The job this event belongs to.
    #[must_use]
    pub fn job(&self) -> u64 {
        match self {
            WireEvent::Queued { job, .. }
            | WireEvent::Started { job }
            | WireEvent::Cell { job, .. }
            | WireEvent::Metrics { job, .. }
            | WireEvent::Finished { job, .. }
            | WireEvent::Cancelled { job, .. }
            | WireEvent::Failed { job, .. } => *job,
        }
    }

    /// True for the stream-ending events.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            WireEvent::Finished { .. } | WireEvent::Cancelled { .. } | WireEvent::Failed { .. }
        )
    }
}

/// Wire view of the server's cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCacheStats {
    /// Trace requests answered from the in-process memo map.
    pub trace_memory_hits: u64,
    /// Trace requests answered from the disk tier.
    pub trace_disk_hits: u64,
    /// Trace requests that ran the kernels.
    pub trace_generated: u64,
    /// Jobs submitted to the server's service.
    pub jobs_submitted: u64,
    /// Jobs that reached a terminal event.
    pub jobs_completed: u64,
}

/// Blocking client for the line-delimited-JSON protocol. Responses and
/// job events share the connection; the client queues events internally
/// while waiting for command responses, so commands can be issued while
/// jobs stream.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    pending_events: std::collections::VecDeque<WireEvent>,
}

impl ServiceClient {
    /// Connects to a running [`ExperimentServer`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            reader,
            writer,
            pending_events: std::collections::VecDeque::new(),
        })
    }

    fn send(&mut self, json: &Json) -> std::io::Result<()> {
        let mut line = json.to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    fn read_json(&mut self) -> std::io::Result<Json> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Json::parse(line.trim())
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
    }

    /// Reads lines until one satisfies `want`, queueing event lines for
    /// [`Self::next_event`]; error lines become `Err`.
    fn read_until(&mut self, want: impl Fn(&Json) -> bool) -> std::io::Result<Json> {
        loop {
            let json = self.read_json()?;
            if want(&json) {
                return Ok(json);
            }
            if json.get("type").and_then(Json::as_str) == Some("error") {
                let message = json
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown server error");
                return Err(std::io::Error::other(message.to_string()));
            }
            if let Some(event) = WireEvent::from_json(&json) {
                self.pending_events.push_back(event);
            }
        }
    }

    /// Submits a spec; returns the assigned job id.
    ///
    /// # Errors
    ///
    /// Server-side rejections surface as `Err` with the server's
    /// message.
    pub fn submit(&mut self, spec: &JobSpec) -> std::io::Result<u64> {
        self.send(&Json::Obj(vec![
            ("cmd".into(), Json::str("submit")),
            ("spec".into(), spec.to_json()),
        ]))?;
        let ack = self.read_until(|j| j.get("type").and_then(Json::as_str) == Some("submitted"))?;
        ack.get("job").and_then(Json::as_u64).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "submitted ack without job id",
            )
        })
    }

    /// Blocks for the next job event (any job on this connection).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn next_event(&mut self) -> std::io::Result<WireEvent> {
        if let Some(event) = self.pending_events.pop_front() {
            return Ok(event);
        }
        loop {
            let json = self.read_json()?;
            if let Some(event) = WireEvent::from_json(&json) {
                return Ok(event);
            }
        }
    }

    /// Streams events until `job`'s terminal event, returning its full
    /// stream in order. Other jobs' interleaved events stay queued.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn stream_job(&mut self, job: u64) -> std::io::Result<Vec<WireEvent>> {
        let mut events = Vec::new();
        let mut stash = Vec::new();
        loop {
            let event = self.next_event()?;
            if event.job() == job {
                let terminal = event.is_terminal();
                events.push(event);
                if terminal {
                    self.pending_events.extend(stash);
                    return Ok(events);
                }
            } else {
                stash.push(event);
            }
        }
    }

    /// Requests cancellation of `job`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn cancel(&mut self, job: u64) -> std::io::Result<bool> {
        self.send(&Json::Obj(vec![
            ("cmd".into(), Json::str("cancel")),
            ("job".into(), Json::u64(job)),
        ]))?;
        let ack = self.read_until(|j| {
            j.get("type").and_then(Json::as_str) == Some("cancel_ack")
                && j.get("job").and_then(Json::as_u64) == Some(job)
        })?;
        Ok(ack
            .get("cancelled")
            .and_then(Json::as_bool)
            .unwrap_or(false))
    }

    /// Fetches the server's cache counters.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn cache_stats(&mut self) -> std::io::Result<WireCacheStats> {
        self.send(&Json::Obj(vec![("cmd".into(), Json::str("cache_stats"))]))?;
        let stats =
            self.read_until(|j| j.get("type").and_then(Json::as_str) == Some("cache_stats"))?;
        let field = |key: &str| {
            stats.get(key).and_then(Json::as_u64).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("cache_stats missing {key}"),
                )
            })
        };
        Ok(WireCacheStats {
            trace_memory_hits: field("trace_memory_hits")?,
            trace_disk_hits: field("trace_disk_hits")?,
            trace_generated: field("trace_generated")?,
            jobs_submitted: field("jobs_submitted")?,
            jobs_completed: field("jobs_completed")?,
        })
    }

    /// Fetches the server's telemetry counters (the `metrics` endpoint)
    /// as a name→value map in lexicographic order.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn metrics(&mut self) -> std::io::Result<std::collections::BTreeMap<String, u64>> {
        self.send(&Json::Obj(vec![("cmd".into(), Json::str("metrics"))]))?;
        let response =
            self.read_until(|j| j.get("type").and_then(Json::as_str) == Some("metrics"))?;
        let Some(Json::Obj(entries)) = response.get("counters") else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "metrics response without counters",
            ));
        };
        Ok(entries
            .iter()
            .filter_map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
            .collect())
    }

    /// Round-trips a `ping` — a cheap health check. An `Ok` return
    /// means the server end of this connection is alive and answering.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (a dead or wedged server surfaces
    /// as an I/O error rather than a `false`).
    pub fn ping(&mut self) -> std::io::Result<()> {
        self.send(&Json::Obj(vec![("cmd".into(), Json::str("ping"))]))?;
        self.read_until(|j| j.get("type").and_then(Json::as_str) == Some("pong"))?;
        Ok(())
    }

    /// Fetches the server's telemetry gauges (the `metrics` endpoint)
    /// as a name→value map in lexicographic order — the dispatcher and
    /// dashboards read `service.pool.queue_depth` /
    /// `service.pool.inflight` from here.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn gauges(&mut self) -> std::io::Result<std::collections::BTreeMap<String, u64>> {
        self.send(&Json::Obj(vec![("cmd".into(), Json::str("metrics"))]))?;
        let response =
            self.read_until(|j| j.get("type").and_then(Json::as_str) == Some("metrics"))?;
        let Some(Json::Obj(entries)) = response.get("gauges") else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "metrics response without gauges",
            ));
        };
        Ok(entries
            .iter()
            .filter_map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
            .collect())
    }

    /// Fetches a job's stored sim-time series (specs with a nonzero
    /// `epoch_width`), reconstructed as a
    /// [`secddr_telemetry::SeriesSnapshot`]. `None` when the server has
    /// no series for the job (unknown, still running, or the spec's
    /// shape recorded nothing).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn series(
        &mut self,
        job: u64,
    ) -> std::io::Result<Option<secddr_telemetry::SeriesSnapshot>> {
        self.send(&Json::Obj(vec![
            ("cmd".into(), Json::str("series")),
            ("job".into(), Json::u64(job)),
        ]))?;
        let response = self.read_until(|j| {
            j.get("type").and_then(Json::as_str) == Some("series")
                && j.get("job").and_then(Json::as_u64) == Some(job)
        })?;
        if response.get("available").and_then(Json::as_bool) != Some(true) {
            return Ok(None);
        }
        let invalid = |what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("series response {what}"),
            )
        };
        let width = response
            .get("epoch_width")
            .and_then(Json::as_u64)
            .filter(|&w| w > 0)
            .ok_or_else(|| invalid("without a positive epoch_width"))?;
        let Some(Json::Obj(rows)) = response.get("rows") else {
            return Err(invalid("without rows"));
        };
        let mut snap = secddr_telemetry::SeriesSnapshot::new(width);
        for (name, row) in rows {
            let values = row.as_array().ok_or_else(|| invalid("row not an array"))?;
            for (epoch, value) in values.iter().enumerate() {
                let value = value
                    .as_u64()
                    .ok_or_else(|| invalid("value not a non-negative integer"))?;
                snap.add(name, epoch as u64, value);
            }
        }
        Ok(Some(snap))
    }

    /// Asks the server to shut down cleanly.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn shutdown_server(&mut self) -> std::io::Result<()> {
        self.send(&Json::Obj(vec![("cmd".into(), Json::str("shutdown"))]))?;
        self.read_until(|j| j.get("type").and_then(Json::as_str) == Some("shutting_down"))?;
        Ok(())
    }
}
