//! The persistent worker pool every experiment runs on.
//!
//! [`WorkerPool`] generalizes the scoped-thread `par_sweep` harness the
//! bench binaries used through PR 4 into a resident pool: worker threads
//! live for the pool's lifetime, jobs queue with priorities (FIFO within
//! a priority), and every job receives a [`CancelToken`] for cooperative
//! cancellation. Two consumption styles share the one thread-count
//! policy:
//!
//! * [`WorkerPool::submit`] — fire-and-forget `'static` jobs (the
//!   experiment service's path: one job per submitted `JobSpec`);
//! * [`WorkerPool::map`] — order-preserving parallel map (the
//!   `par_sweep` path). The *calling* thread participates in the work,
//!   so a `map` issued from inside a pool job — or against a fully busy
//!   pool — always makes progress and can never deadlock waiting for a
//!   free worker.
//!
//! Sizing: `available_parallelism` capped by a caller-supplied limit
//! (the old hard-coded `.min(16)`), overridden end-to-end by the
//! `SECDDR_THREADS` environment variable so service deployments can
//! size the pool explicitly.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use secddr_telemetry::Gauge;

/// Default cap on worker threads when the caller does not supply one
/// (the `.min(16)` the scoped harness hard-coded).
pub const DEFAULT_THREAD_CAP: usize = 16;

/// Cooperative cancellation flag shared between a job's submitter and
/// the job itself. Cancellation never preempts: the job observes the
/// flag at its own checkpoints (the service checks between benchmark ×
/// configuration cells).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`Self::cancel`] was called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Pure thread-count policy: an explicit `SECDDR_THREADS` override wins,
/// otherwise the host parallelism capped at `cap`; always at least one.
#[must_use]
pub fn resolve_threads(available: usize, cap: usize, env_override: Option<&str>) -> usize {
    if let Some(n) = env_override.and_then(|v| v.trim().parse::<usize>().ok()) {
        if n >= 1 {
            return n;
        }
    }
    available.max(1).min(cap.max(1))
}

/// The thread count for this host: `SECDDR_THREADS` override, else
/// `available_parallelism` capped at `cap`.
#[must_use]
pub fn default_threads(cap: usize) -> usize {
    let available = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    resolve_threads(
        available,
        cap,
        std::env::var("SECDDR_THREADS").ok().as_deref(),
    )
}

type Job = Box<dyn FnOnce(&CancelToken) + Send>;

struct QueuedJob {
    priority: i8,
    seq: u64,
    cancel: CancelToken,
    job: Job,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, FIFO (lower seq) within one.
        (self.priority, std::cmp::Reverse(self.seq))
            .cmp(&(other.priority, std::cmp::Reverse(other.seq)))
    }
}

#[derive(Default)]
struct QueueState {
    heap: BinaryHeap<QueuedJob>,
    next_seq: u64,
    /// Jobs currently executing on workers (for [`WorkerPool::wait_idle`]).
    running: usize,
    shutdown: bool,
}

/// Telemetry gauges a pool keeps current, updated inside the queue lock
/// on every transition so readers never observe a torn pair. The
/// experiment service registers these as `service.pool.queue_depth` /
/// `service.pool.inflight` in the global registry (the `metrics` TCP
/// endpoint serves them); the fleet dispatcher's least-loaded placement
/// and the report example read the same names.
#[derive(Debug, Clone, Default)]
pub struct PoolGauges {
    /// Jobs waiting in the priority queue (not yet picked up).
    pub queue_depth: Gauge,
    /// Jobs currently executing on workers.
    pub inflight: Gauge,
}

#[derive(Default)]
struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
    /// Signalled whenever the pool becomes idle (empty queue, nothing
    /// running).
    idle: Condvar,
    /// Present when the pool publishes its levels (see [`PoolGauges`]).
    gauges: Option<PoolGauges>,
}

impl Shared {
    /// Publishes the current levels; call with the state lock held.
    fn publish(&self, state: &QueueState) {
        if let Some(gauges) = &self.gauges {
            gauges.queue_depth.set(state.heap.len() as u64);
            gauges.inflight.set(state.running as u64);
        }
    }
}

/// A persistent priority worker pool (see the module docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// A pool with exactly `threads` persistent workers.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self::build(threads, None)
    }

    /// A pool that additionally keeps `gauges` current (queue depth and
    /// in-flight count, updated on every queue transition).
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    #[must_use]
    pub fn with_gauges(threads: usize, gauges: PoolGauges) -> Self {
        Self::build(threads, Some(gauges))
    }

    fn build(threads: usize, gauges: Option<PoolGauges>) -> Self {
        assert!(threads >= 1, "a worker pool needs at least one thread");
        let shared = Arc::new(Shared {
            gauges,
            ..Shared::default()
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("secddr-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    /// A pool sized by [`default_threads`] with the default cap.
    #[must_use]
    pub fn with_default_size() -> Self {
        Self::new(default_threads(DEFAULT_THREAD_CAP))
    }

    /// The process-wide shared pool ([`crate::par_sweep`] and the bench
    /// harnesses ride this one).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::with_default_size)
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues `job` at `priority` (higher runs first; FIFO within a
    /// priority). The job always runs — a cancelled token is delivered
    /// to the job, which decides how to wind down (so submitters
    /// observing a job's side channel always see a terminal signal).
    pub fn submit<F>(&self, priority: i8, cancel: CancelToken, job: F)
    where
        F: FnOnce(&CancelToken) + Send + 'static,
    {
        let mut state = self.shared.state.lock().expect("pool lock");
        assert!(!state.shutdown, "submit on a shut-down pool");
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(QueuedJob {
            priority,
            seq,
            cancel,
            job: Box::new(job),
        });
        self.shared.publish(&state);
        drop(state);
        self.shared.available.notify_one();
    }

    /// Applies `f` to every item in parallel, preserving input order.
    ///
    /// The caller's thread claims items alongside up to `threads()`
    /// helper jobs, so the call always completes even when every worker
    /// is busy with long service jobs (and a `map` from *inside* a pool
    /// job cannot deadlock). This is the engine under
    /// [`crate::par_sweep`].
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any invocation of `f` produced, after
    /// every in-flight item finished — the scoped-thread harness this
    /// replaces propagated closure panics at scope join, and a silent
    /// hang would be strictly worse.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        struct MapState<T, R, F> {
            items: Vec<T>,
            f: F,
            next: AtomicUsize,
            slots: Mutex<Vec<Option<R>>>,
            completed: Mutex<usize>,
            all_done: Condvar,
            /// First panic payload from any item (re-raised by the
            /// caller once everything settled).
            panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
        }

        fn drain<T, R, F: Fn(&T) -> R>(state: &MapState<T, R, F>) {
            loop {
                let i = state.next.fetch_add(1, Ordering::Relaxed);
                if i >= state.items.len() {
                    return;
                }
                // Even a panicking item must count as completed, or the
                // caller's wait below would hang forever on an item no
                // thread will ever claim again.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    (state.f)(&state.items[i])
                }));
                match result {
                    Ok(result) => {
                        state.slots.lock().expect("map slots lock")[i] = Some(result);
                    }
                    Err(payload) => {
                        state
                            .panic
                            .lock()
                            .expect("map panic lock")
                            .get_or_insert(payload);
                    }
                }
                let mut completed = state.completed.lock().expect("map completion lock");
                *completed += 1;
                if *completed == state.items.len() {
                    state.all_done.notify_all();
                }
            }
        }

        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let mut slots = Vec::new();
        slots.resize_with(n, || None);
        let state = Arc::new(MapState {
            items,
            f,
            next: AtomicUsize::new(0),
            slots: Mutex::new(slots),
            completed: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        });
        // Helpers accelerate; the caller guarantees completion. One item
        // needs no helpers at all.
        for _ in 0..self.threads().min(n.saturating_sub(1)) {
            let state = Arc::clone(&state);
            self.submit(0, CancelToken::new(), move |_| drain(&state));
        }
        drain(&state);
        let mut completed = state.completed.lock().expect("map completion lock");
        while *completed < n {
            completed = state.all_done.wait(completed).expect("map completion wait");
        }
        drop(completed);
        if let Some(payload) = state.panic.lock().expect("map panic lock").take() {
            std::panic::resume_unwind(payload);
        }
        let mut slots = state.slots.lock().expect("map slots lock");
        slots
            .iter_mut()
            .map(|slot| slot.take().expect("all slots filled"))
            .collect()
    }

    /// Blocks until the pool is idle: no queued and no running jobs.
    ///
    /// This is how a server drains in-flight work before exiting without
    /// depending on being the last holder of the pool (connection
    /// threads may still hold references).
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock().expect("pool lock");
        while state.running > 0 || !state.heap.is_empty() {
            state = self.shared.idle.wait(state).expect("pool idle wait");
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("pool lock");
    loop {
        if let Some(queued) = state.heap.pop() {
            state.running += 1;
            shared.publish(&state);
            drop(state);
            // Contain job panics: a resident pool must not degrade
            // toward zero workers because one job misbehaved. The
            // submitter observes the failure through its own side
            // channel (the service wraps its job body and converts a
            // panic into a terminal Failed event).
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (queued.job)(&queued.cancel);
            }));
            state = shared.state.lock().expect("pool lock");
            state.running -= 1;
            shared.publish(&state);
            if state.running == 0 && state.heap.is_empty() {
                shared.idle.notify_all();
            }
        } else if state.shutdown {
            return;
        } else {
            state = shared.available.wait(state).expect("pool wait");
        }
    }
}

impl Drop for WorkerPool {
    /// Drains the queue: already-submitted jobs still run (each sees its
    /// own cancel token, so cancelled jobs wind down fast), then workers
    /// exit and are joined.
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool lock").shutdown = true;
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn resolve_threads_policy() {
        // Cap applies (the old `.min(16)` behavior, now a parameter).
        assert_eq!(resolve_threads(32, 16, None), 16);
        assert_eq!(resolve_threads(8, 16, None), 8);
        assert_eq!(resolve_threads(8, 4, None), 4);
        // Env override wins over both available parallelism and cap.
        assert_eq!(resolve_threads(8, 16, Some("2")), 2);
        assert_eq!(resolve_threads(2, 4, Some("64")), 64);
        assert_eq!(resolve_threads(8, 16, Some(" 3 ")), 3);
        // Invalid or zero overrides fall back to the policy.
        assert_eq!(resolve_threads(8, 16, Some("zero")), 8);
        assert_eq!(resolve_threads(8, 16, Some("0")), 8);
        // Degenerate inputs stay at one thread minimum.
        assert_eq!(resolve_threads(0, 0, None), 1);
    }

    #[test]
    fn map_preserves_order_and_runs_everything() {
        let pool = WorkerPool::new(3);
        let out = pool.map((0u64..100).collect(), |&x| x * x);
        assert_eq!(out, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
        assert_eq!(pool.map(Vec::<u64>::new(), |&x| x), Vec::<u64>::new());
    }

    #[test]
    fn map_from_inside_a_job_cannot_deadlock() {
        // A 1-thread pool whose only worker runs a job that itself maps:
        // the inner map's helper can never be scheduled, so only the
        // caller-participation path completes it.
        let pool = Arc::new(WorkerPool::new(1));
        let (tx, rx) = mpsc::channel();
        let inner_pool = Arc::clone(&pool);
        pool.submit(0, CancelToken::new(), move |_| {
            let out = inner_pool.map(vec![1u64, 2, 3], |&x| x + 1);
            tx.send(out).unwrap();
        });
        let out = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("no deadlock");
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn priorities_order_queued_jobs() {
        let pool = WorkerPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        // Block the single worker so the queue builds up.
        pool.submit(0, CancelToken::new(), move |_| {
            gate_rx.recv().unwrap();
        });
        for (priority, tag) in [(0i8, "low-a"), (5, "high"), (0, "low-b"), (3, "mid")] {
            let order = Arc::clone(&order);
            let done = done_tx.clone();
            pool.submit(priority, CancelToken::new(), move |_| {
                order.lock().unwrap().push(tag);
                done.send(()).unwrap();
            });
        }
        gate_tx.send(()).unwrap();
        for _ in 0..4 {
            done_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec!["high", "mid", "low-a", "low-b"],
            "priority order, FIFO within a priority"
        );
    }

    #[test]
    fn cancelled_jobs_observe_their_token() {
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        token.cancel();
        let (tx, rx) = mpsc::channel();
        pool.submit(0, token, move |cancel| {
            tx.send(cancel.is_cancelled()).unwrap();
        });
        assert!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            "job still runs and sees the cancelled token"
        );
    }

    #[test]
    fn map_propagates_closure_panics_instead_of_hanging() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map((0u64..16).collect(), |&x| {
                assert!(x != 7, "boom on seven");
                x
            })
        }));
        assert!(result.is_err(), "the item panic must surface to the caller");
        // The pool is still fully functional afterwards.
        assert_eq!(pool.map(vec![1u64, 2], |&x| x * 10), vec![10, 20]);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        pool.submit(0, CancelToken::new(), |_| panic!("job blew up"));
        let (tx, rx) = mpsc::channel();
        pool.submit(0, CancelToken::new(), move |_| tx.send(()).unwrap());
        rx.recv_timeout(Duration::from_secs(10))
            .expect("the single worker survived the panicking job");
    }

    #[test]
    fn wait_idle_blocks_until_jobs_drain() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            pool.submit(0, CancelToken::new(), move |_| {
                std::thread::sleep(Duration::from_millis(5));
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        pool.wait_idle(); // idempotent on an idle pool
    }

    #[test]
    fn gauges_track_queue_depth_and_inflight() {
        // Uniquely named gauges so parallel suites sharing the global
        // registry cannot perturb the exact assertions below.
        let gauges = PoolGauges {
            queue_depth: secddr_telemetry::Registry::global().gauge("test.pool_gauges.queue_depth"),
            inflight: secddr_telemetry::Registry::global().gauge("test.pool_gauges.inflight"),
        };
        let pool = WorkerPool::with_gauges(1, gauges.clone());
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.submit(0, CancelToken::new(), move |_| {
            gate_rx.recv().unwrap();
        });
        // Wait for the single worker to pick the blocker up.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while gauges.inflight.get() != 1 {
            assert!(std::time::Instant::now() < deadline, "worker never started");
            std::thread::yield_now();
        }
        // Two more jobs pile up behind the blocked worker.
        let (done_tx, done_rx) = mpsc::channel::<()>();
        for _ in 0..2 {
            let done = done_tx.clone();
            pool.submit(0, CancelToken::new(), move |_| done.send(()).unwrap());
        }
        assert_eq!(gauges.queue_depth.get(), 2, "both jobs queued");
        assert_eq!(gauges.inflight.get(), 1, "blocker still running");
        gate_tx.send(()).unwrap();
        for _ in 0..2 {
            done_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        pool.wait_idle();
        // Levels are published under the queue lock before the idle
        // notification, so an idle pool always reads as (0, 0).
        assert_eq!(gauges.queue_depth.get(), 0);
        assert_eq!(gauges.inflight.get(), 0);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            pool.submit(0, CancelToken::new(), move |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }
}
