//! Minimal hand-rolled JSON: a value type, a recursive-descent parser,
//! and a writer.
//!
//! The build environment has no crates.io access, so the service's wire
//! protocol (line-delimited JSON over TCP) and the `JobSpec` codec ride
//! this ~300-line module instead of serde. Integers are kept exact
//! ([`Number`] distinguishes unsigned/signed/float), so `u64` seeds and
//! cycle counts round-trip losslessly — `f64` alone would corrupt
//! anything above 2^53.

use std::fmt::{self, Write as _};

/// A JSON number, kept exact for integers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// Everything else.
    F(f64),
}

/// A parsed JSON value. Objects preserve insertion order (lookup is a
/// linear scan — wire objects are small).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an unsigned integer.
    #[must_use]
    pub fn u64(v: u64) -> Json {
        Json::Num(Number::U(v))
    }

    /// Convenience constructor for a float.
    #[must_use]
    pub fn f64(v: f64) -> Json {
        Json::Num(Number::F(v))
    }

    /// Convenience constructor for a string.
    #[must_use]
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Member lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(Number::U(v)) => Some(*v),
            Json::Num(Number::I(v)) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (any number).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(Number::U(v)) => Some(*v as f64),
            Json::Num(Number::I(v)) => Some(*v as f64),
            Json::Num(Number::F(v)) => Some(*v),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(Number::U(v)) => write!(f, "{v}"),
            Json::Num(Number::I(v)) => write!(f, "{v}"),
            Json::Num(Number::F(v)) => {
                if v.is_finite() {
                    // `{}` on f64 always includes enough digits to
                    // round-trip and never produces exponent-free
                    // ambiguity JSON can't parse.
                    write!(f, "{v}")
                } else {
                    f.write_str("null") // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    item.fmt(f)?;
                }
                f.write_char(']')
            }
            Json::Obj(members) => {
                f.write_char('{')?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    write_escaped(f, k)?;
                    f.write_char(':')?;
                    v.fmt(f)?;
                }
                f.write_char('}')
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.at) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                char::from(b),
                self.at
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.at)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.at += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.at += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate".into());
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(unit).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("unknown escape at offset {}", self.at)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err("unescaped control character".into());
                    }
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.at..self.at + 4)
            .ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.at += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.at += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.at += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.at += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            is_float = true;
            self.at += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.at += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Num(Number::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Num(Number::I(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Json::Num(Number::F(v)))
            .map_err(|_| format!("invalid number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_integers_stay_exact() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.to_string(), "18446744073709551615");
        let big = (1u64 << 53) + 1;
        let v = Json::u64(big);
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":true},"e":-3.25}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("c").and_then(|c| c.get("d")), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t unicode \u{1F600} nul-ish \u{1}";
        let encoded = Json::Str(original.into()).to_string();
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(original));
        assert_eq!(
            Json::parse(r#""surrogate \ud83d\ude00 pair""#)
                .unwrap()
                .as_str(),
            Some("surrogate \u{1F600} pair")
        );
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1}garbage",
            "\"bad \\q escape\"",
            "\"lone \\ud800\"",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn object_lookup_misses_cleanly() {
        let v = Json::parse(r#"{"a":1}"#).unwrap();
        assert_eq!(v.get("b"), None);
        assert_eq!(Json::Null.get("a"), None);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
    }
}
