//! [`JobSpec`]: the typed description of one experiment job, with its
//! line-delimited-JSON codec (the TCP front-end's submit payload).

use cpu_model::{Advance, CpuConfig};
use secddr_channels::Interleave;
use secddr_core::config::{EncMode, Mechanism, SecurityConfig};
use secddr_core::engine::EngineOptions;
use workloads::{Benchmark, Suite};

use crate::json::Json;

/// Which benchmarks a job runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// One benchmark by its paper label (`"mcf"`, `"pr"`, …).
    Bench(String),
    /// A whole suite, in Figure 6 order.
    Suite(SuiteSel),
}

/// Suite selector for [`Workload::Suite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteSel {
    /// The 23 SPEC CPU2017 profiles.
    Spec,
    /// The 6 GAPBS kernels.
    Gapbs,
    /// All 29 benchmarks.
    All,
}

/// Everything needed to run one experiment job: workload × security
/// configurations × machine shape × budget.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Benchmark or suite to run.
    pub workload: Workload,
    /// Security configurations; each benchmark runs under each (the
    /// job's cells are the benchmark × configuration product).
    pub configs: Vec<SecurityConfig>,
    /// Engine ablation knobs and the clock-advance policy.
    pub options: EngineOptions,
    /// Core count (1 = the bare `CpuSystem`; >1 = rate mode over a
    /// shared LLC and backend).
    pub cores: usize,
    /// Memory channel count (1 = the bare engine; >1 = `ShardedEngine`).
    pub channels: usize,
    /// Instruction budget per benchmark (per core in rate mode).
    pub instructions: u64,
    /// Trace generation seed.
    pub seed: u64,
    /// Scheduling priority (higher runs first; FIFO within one).
    pub priority: i8,
    /// Sim-time series epoch width in CPU cycles; 0 disables series
    /// recording (the default — recording stores per-job series the
    /// `series` endpoint serves). Only the sharded and multi-core
    /// shapes record; the bare 1-core/1-channel path has no series.
    pub epoch_width: u64,
}

/// Upper bound on cores and channels (a spec is a remote input; the
/// simulator's memory footprint scales with both).
const MAX_WIDTH: usize = 64;

impl JobSpec {
    /// A single-core, single-channel SecDDR+CTR run of one benchmark at
    /// a 40k-instruction budget — the smallest useful job; adjust fields
    /// from here.
    #[must_use]
    pub fn bench(name: &str) -> Self {
        Self {
            workload: Workload::Bench(name.to_string()),
            configs: vec![SecurityConfig::secddr_ctr()],
            options: EngineOptions::default(),
            cores: 1,
            channels: 1,
            instructions: 40_000,
            seed: 0xD5,
            priority: 0,
            epoch_width: 0,
        }
    }

    /// Validates shape and configuration compatibility.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), SpecError> {
        if let Workload::Bench(name) = &self.workload {
            if Benchmark::by_name(name).is_none() {
                return Err(SpecError::UnknownBenchmark(name.clone()));
            }
        }
        if self.configs.is_empty() {
            return Err(SpecError::Invalid("at least one config is required".into()));
        }
        for config in &self.configs {
            config.validate().map_err(SpecError::Invalid)?;
        }
        if self.cores == 0 || self.cores > MAX_WIDTH {
            return Err(SpecError::Invalid(format!(
                "cores must be in 1..={MAX_WIDTH}"
            )));
        }
        if self.channels == 0 || self.channels > MAX_WIDTH {
            return Err(SpecError::Invalid(format!(
                "channels must be in 1..={MAX_WIDTH}"
            )));
        }
        if self.instructions == 0 {
            return Err(SpecError::Invalid("instruction budget must be > 0".into()));
        }
        Ok(())
    }

    /// The benchmarks this spec runs, in Figure 6 order.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownBenchmark`] for an unresolvable name.
    pub fn resolve_benchmarks(&self) -> Result<Vec<Benchmark>, SpecError> {
        match &self.workload {
            Workload::Bench(name) => Benchmark::by_name(name)
                .map(|b| vec![b])
                .ok_or_else(|| SpecError::UnknownBenchmark(name.clone())),
            Workload::Suite(sel) => Ok(Benchmark::all()
                .into_iter()
                .filter(|b| match sel {
                    SuiteSel::Spec => b.suite() == Suite::Spec,
                    SuiteSel::Gapbs => b.suite() == Suite::Gapbs,
                    SuiteSel::All => true,
                })
                .collect()),
        }
    }

    /// Number of benchmark × configuration cells this job runs.
    ///
    /// # Errors
    ///
    /// Propagates benchmark resolution failures.
    pub fn cell_count(&self) -> Result<usize, SpecError> {
        Ok(self.resolve_benchmarks()?.len() * self.configs.len())
    }

    /// The address interleave for this spec's channel count: XOR-folded
    /// for powers of two, modulo otherwise.
    #[must_use]
    pub fn interleave(&self) -> Interleave {
        if self.channels.is_power_of_two() {
            Interleave::xor(self.channels)
        } else {
            Interleave::modulo(self.channels)
        }
    }

    /// The CPU configuration matching [`Self::options`] (the same
    /// derivation `run_trace_with_options` uses).
    #[must_use]
    pub fn cpu_config(&self) -> CpuConfig {
        CpuConfig {
            advance: self.options.advance,
            batch_submit: self.options.batched_ingestion,
            ..CpuConfig::default()
        }
    }

    /// Canonical 64-bit content hash of this spec, stable across
    /// processes and restarts: FNV-1a over the [`Self::to_json`]
    /// encoding (whose member order is fixed by construction) with the
    /// `priority` member removed — priority affects *when* a job runs,
    /// never *what* it computes, so two specs that differ only in
    /// priority are the same work and must dedupe to the same key.
    ///
    /// This is the fleet layer's identity: the job log dedupes replayed
    /// jobs by it and the result store keys memoized cells by it (the
    /// seed is part of the encoding, so `(spec, seed)` is covered).
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut json = self.to_json();
        if let Json::Obj(members) = &mut json {
            members.retain(|(key, _)| key != "priority");
        }
        fnv1a_64(json.to_string().as_bytes())
    }

    /// Decomposes this job into its benchmark × configuration cells, in
    /// cell order: each returned spec is a stand-alone single-benchmark,
    /// single-config job that runs *exactly* the same simulation as the
    /// corresponding cell of this job (the service's `run_cell` depends
    /// only on the benchmark, the config, and the shared shape fields,
    /// all of which are copied verbatim). The fleet dispatcher ships
    /// cells to workers as these specs and memoizes results under their
    /// [`Self::content_hash`].
    ///
    /// # Errors
    ///
    /// Propagates benchmark resolution failures.
    pub fn cell_specs(&self) -> Result<Vec<JobSpec>, SpecError> {
        let benchmarks = self.resolve_benchmarks()?;
        let mut cells = Vec::with_capacity(benchmarks.len() * self.configs.len());
        for bench in &benchmarks {
            for config in &self.configs {
                cells.push(JobSpec {
                    workload: Workload::Bench(bench.name().to_string()),
                    configs: vec![*config],
                    ..self.clone()
                });
            }
        }
        Ok(cells)
    }

    /// Encodes the spec as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let workload = match &self.workload {
            Workload::Bench(name) => Json::Obj(vec![("bench".into(), Json::str(name.clone()))]),
            Workload::Suite(sel) => Json::Obj(vec![(
                "suite".into(),
                Json::str(match sel {
                    SuiteSel::Spec => "spec",
                    SuiteSel::Gapbs => "gapbs",
                    SuiteSel::All => "all",
                }),
            )]),
        };
        Json::Obj(vec![
            ("workload".into(), workload),
            (
                "configs".into(),
                Json::Arr(self.configs.iter().map(config_to_json).collect()),
            ),
            ("options".into(), options_to_json(&self.options)),
            ("cores".into(), Json::u64(self.cores as u64)),
            ("channels".into(), Json::u64(self.channels as u64)),
            ("instructions".into(), Json::u64(self.instructions)),
            ("seed".into(), Json::u64(self.seed)),
            (
                "priority".into(),
                Json::Num(crate::json::Number::I(i64::from(self.priority))),
            ),
            ("epoch_width".into(), Json::u64(self.epoch_width)),
        ])
    }

    /// Decodes a spec from the [`Self::to_json`] encoding and validates
    /// it.
    ///
    /// # Errors
    ///
    /// [`SpecError::Malformed`] on shape problems, plus everything
    /// [`Self::validate`] rejects.
    pub fn from_json(json: &Json) -> Result<Self, SpecError> {
        let workload_json = require(json, "workload")?;
        let workload = if let Some(name) = workload_json.get("bench").and_then(Json::as_str) {
            Workload::Bench(name.to_string())
        } else if let Some(suite) = workload_json.get("suite").and_then(Json::as_str) {
            Workload::Suite(match suite {
                "spec" => SuiteSel::Spec,
                "gapbs" => SuiteSel::Gapbs,
                "all" => SuiteSel::All,
                other => return Err(SpecError::Malformed(format!("unknown suite \"{other}\""))),
            })
        } else {
            return Err(SpecError::Malformed(
                "workload needs a \"bench\" or \"suite\" member".into(),
            ));
        };
        let configs = require(json, "configs")?
            .as_array()
            .ok_or_else(|| SpecError::Malformed("configs must be an array".into()))?
            .iter()
            .map(config_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let options = options_from_json(require(json, "options")?)?;
        let spec = JobSpec {
            workload,
            configs,
            options,
            cores: usize_field(json, "cores")?,
            channels: usize_field(json, "channels")?,
            instructions: u64_field(json, "instructions")?,
            seed: u64_field(json, "seed")?,
            priority: i8_field(json, "priority")?,
            // Lenient: absent (pre-series clients) means disabled.
            epoch_width: json.get("epoch_width").and_then(Json::as_u64).unwrap_or(0),
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Everything that can be wrong with a submitted spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// No benchmark with the given paper label.
    UnknownBenchmark(String),
    /// A structurally valid spec with invalid contents (incompatible
    /// security configuration, zero cores, …).
    Invalid(String),
    /// The JSON encoding did not match the schema.
    Malformed(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownBenchmark(name) => write!(f, "unknown benchmark \"{name}\""),
            SpecError::Invalid(why) => write!(f, "invalid spec: {why}"),
            SpecError::Malformed(why) => write!(f, "malformed spec: {why}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// 64-bit FNV-1a. Embedded rather than pulled from crates.io (offline
/// build environment); not cryptographic — the fleet layer's keys hash
/// *trusted* canonical encodings, collision resistance against an
/// adversary is not a requirement.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

fn require<'a>(json: &'a Json, key: &str) -> Result<&'a Json, SpecError> {
    json.get(key)
        .ok_or_else(|| SpecError::Malformed(format!("missing \"{key}\"")))
}

fn u64_field(json: &Json, key: &str) -> Result<u64, SpecError> {
    require(json, key)?
        .as_u64()
        .ok_or_else(|| SpecError::Malformed(format!("\"{key}\" must be a non-negative integer")))
}

fn usize_field(json: &Json, key: &str) -> Result<usize, SpecError> {
    usize::try_from(u64_field(json, key)?)
        .map_err(|_| SpecError::Malformed(format!("\"{key}\" out of range")))
}

fn i8_field(json: &Json, key: &str) -> Result<i8, SpecError> {
    let v = require(json, key)?
        .as_f64()
        .ok_or_else(|| SpecError::Malformed(format!("\"{key}\" must be a number")))?;
    #[allow(clippy::cast_possible_truncation)]
    if v.fract() == 0.0 && (f64::from(i8::MIN)..=f64::from(i8::MAX)).contains(&v) {
        Ok(v as i8)
    } else {
        Err(SpecError::Malformed(format!(
            "\"{key}\" must be an integer in {}..={}",
            i8::MIN,
            i8::MAX
        )))
    }
}

fn bool_field(json: &Json, key: &str) -> Result<bool, SpecError> {
    require(json, key)?
        .as_bool()
        .ok_or_else(|| SpecError::Malformed(format!("\"{key}\" must be a boolean")))
}

/// Encodes a [`SecurityConfig`] structurally (mechanism + parameters),
/// so every expressible configuration — not just the paper's named
/// presets — round-trips.
fn config_to_json(config: &SecurityConfig) -> Json {
    let mut members = Vec::new();
    let mechanism = match config.mechanism {
        Mechanism::Tdx => "tdx",
        Mechanism::CounterTree { arity } => {
            members.push(("arity".into(), Json::u64(u64::from(arity))));
            "counter_tree"
        }
        Mechanism::HashTree { arity } => {
            members.push(("arity".into(), Json::u64(u64::from(arity))));
            "hash_tree"
        }
        Mechanism::SecDdr => "secddr",
        Mechanism::EncryptOnly => "encrypt_only",
        Mechanism::InvisiMem { realistic } => {
            members.push(("realistic".into(), Json::Bool(realistic)));
            "invisimem"
        }
    };
    members.insert(0, ("mechanism".into(), Json::str(mechanism)));
    members.push((
        "enc".into(),
        Json::str(match config.enc {
            EncMode::Ctr => "ctr",
            EncMode::Xts => "xts",
        }),
    ));
    members.push(("packing".into(), Json::u64(u64::from(config.ctr_packing))));
    Json::Obj(members)
}

fn config_from_json(json: &Json) -> Result<SecurityConfig, SpecError> {
    let arity = || -> Result<u32, SpecError> {
        u32::try_from(u64_field(json, "arity")?)
            .map_err(|_| SpecError::Malformed("\"arity\" out of range".into()))
    };
    let mechanism = match require(json, "mechanism")?.as_str() {
        Some("tdx") => Mechanism::Tdx,
        Some("counter_tree") => Mechanism::CounterTree { arity: arity()? },
        Some("hash_tree") => Mechanism::HashTree { arity: arity()? },
        Some("secddr") => Mechanism::SecDdr,
        Some("encrypt_only") => Mechanism::EncryptOnly,
        Some("invisimem") => Mechanism::InvisiMem {
            realistic: bool_field(json, "realistic")?,
        },
        other => return Err(SpecError::Malformed(format!("unknown mechanism {other:?}"))),
    };
    let enc = match require(json, "enc")?.as_str() {
        Some("ctr") => EncMode::Ctr,
        Some("xts") => EncMode::Xts,
        other => return Err(SpecError::Malformed(format!("unknown enc {other:?}"))),
    };
    let ctr_packing = u32::try_from(u64_field(json, "packing")?)
        .map_err(|_| SpecError::Malformed("\"packing\" out of range".into()))?;
    Ok(SecurityConfig {
        mechanism,
        enc,
        ctr_packing,
    })
}

fn options_to_json(options: &EngineOptions) -> Json {
    // Exhaustive destructuring: adding an `EngineOptions` field refuses
    // to compile until the codec carries it.
    let EngineOptions {
        metadata_cache_bytes,
        serial_tree_fetch,
        force_bl8,
        fcfs,
        advance,
        batched_ingestion,
    } = *options;
    Json::Obj(vec![
        (
            "metadata_cache_bytes".into(),
            Json::u64(metadata_cache_bytes),
        ),
        ("serial_tree_fetch".into(), Json::Bool(serial_tree_fetch)),
        ("force_bl8".into(), Json::Bool(force_bl8)),
        ("fcfs".into(), Json::Bool(fcfs)),
        (
            "advance".into(),
            Json::str(match advance {
                Advance::PerCycle => "per_cycle",
                Advance::ToNextEvent => "event_driven",
            }),
        ),
        ("batched_ingestion".into(), Json::Bool(batched_ingestion)),
    ])
}

fn options_from_json(json: &Json) -> Result<EngineOptions, SpecError> {
    let advance = match require(json, "advance")?.as_str() {
        Some("per_cycle") => Advance::PerCycle,
        Some("event_driven") => Advance::ToNextEvent,
        other => return Err(SpecError::Malformed(format!("unknown advance {other:?}"))),
    };
    Ok(EngineOptions {
        metadata_cache_bytes: u64_field(json, "metadata_cache_bytes")?,
        serial_tree_fetch: bool_field(json, "serial_tree_fetch")?,
        force_bl8: bool_field(json, "force_bl8")?,
        fcfs: bool_field(json, "fcfs")?,
        advance,
        batched_ingestion: bool_field(json, "batched_ingestion")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bench_spec_validates_and_round_trips() {
        let spec = JobSpec::bench("mcf");
        spec.validate().unwrap();
        let text = spec.to_json().to_string();
        let back = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(spec.cell_count().unwrap(), 1);
    }

    #[test]
    fn epoch_width_round_trips_and_defaults_off() {
        assert_eq!(JobSpec::bench("mcf").epoch_width, 0, "series is opt-in");
        let mut spec = JobSpec::bench("mcf");
        spec.epoch_width = 4_096;
        let text = spec.to_json().to_string();
        let back = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
        // Pre-series payloads (no "epoch_width" member) still parse,
        // with recording off.
        let stripped = text.replace(",\"epoch_width\":4096", "");
        assert_ne!(stripped, text, "member must have been present");
        let old = JobSpec::from_json(&Json::parse(&stripped).unwrap()).unwrap();
        assert_eq!(old.epoch_width, 0);
    }

    #[test]
    fn suite_specs_resolve_paper_counts() {
        for (sel, count) in [
            (SuiteSel::Spec, 23),
            (SuiteSel::Gapbs, 6),
            (SuiteSel::All, 29),
        ] {
            let mut spec = JobSpec::bench("mcf");
            spec.workload = Workload::Suite(sel);
            assert_eq!(spec.resolve_benchmarks().unwrap().len(), count);
        }
    }

    #[test]
    fn every_paper_config_round_trips() {
        for config in [
            SecurityConfig::tdx_baseline(),
            SecurityConfig::tree_64ary(),
            SecurityConfig::tree_128ary(),
            SecurityConfig::tree_8ary_hash(),
            SecurityConfig::secddr_ctr(),
            SecurityConfig::secddr_xts(),
            SecurityConfig::encrypt_only_ctr(),
            SecurityConfig::encrypt_only_xts(),
            SecurityConfig::invisimem_unrealistic(EncMode::Ctr),
            SecurityConfig::invisimem_realistic(EncMode::Xts),
        ] {
            let encoded = config_to_json(&config).to_string();
            let back = config_from_json(&Json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(back, config, "{}", config.label());
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(matches!(
            JobSpec::bench("nonexistent").validate(),
            Err(SpecError::UnknownBenchmark(_))
        ));
        let mut no_configs = JobSpec::bench("mcf");
        no_configs.configs.clear();
        assert!(no_configs.validate().is_err());
        let mut zero_cores = JobSpec::bench("mcf");
        zero_cores.cores = 0;
        assert!(zero_cores.validate().is_err());
        let mut wide = JobSpec::bench("mcf");
        wide.channels = MAX_WIDTH + 1;
        assert!(wide.validate().is_err());
        let mut incompatible = JobSpec::bench("mcf");
        incompatible.configs = vec![SecurityConfig {
            mechanism: Mechanism::CounterTree { arity: 64 },
            enc: EncMode::Xts,
            ctr_packing: 64,
        }];
        assert!(matches!(
            incompatible.validate(),
            Err(SpecError::Invalid(_))
        ));
    }

    #[test]
    fn malformed_json_is_rejected_with_context() {
        let good = JobSpec::bench("mcf").to_json().to_string();
        let mangled = good.replace("\"cores\"", "\"cpus\"");
        let err = JobSpec::from_json(&Json::parse(&mangled).unwrap()).unwrap_err();
        assert!(matches!(err, SpecError::Malformed(_)), "{err}");
    }

    #[test]
    fn content_hash_is_spec_equality_modulo_priority() {
        // Hash equality ⇔ spec equality modulo `priority`: same spec at
        // any priority hashes identically…
        let base = JobSpec::bench("mcf");
        for priority in [i8::MIN, -1, 0, 1, i8::MAX] {
            let mut spec = base.clone();
            spec.priority = priority;
            assert_eq!(spec.content_hash(), base.content_hash());
        }
        // …and perturbing any *content* field moves the hash.
        type Perturbation = Box<dyn Fn(&mut JobSpec)>;
        let perturb: Vec<(&str, Perturbation)> = vec![
            (
                "workload",
                Box::new(|s| s.workload = Workload::Bench("omnetpp".into())),
            ),
            (
                "suite",
                Box::new(|s| s.workload = Workload::Suite(SuiteSel::Gapbs)),
            ),
            (
                "configs",
                Box::new(|s| s.configs = vec![SecurityConfig::tdx_baseline()]),
            ),
            (
                "configs-extended",
                Box::new(|s| s.configs.push(SecurityConfig::tree_64ary())),
            ),
            ("options", Box::new(|s| s.options.serial_tree_fetch = true)),
            ("cores", Box::new(|s| s.cores = 2)),
            ("channels", Box::new(|s| s.channels = 2)),
            ("instructions", Box::new(|s| s.instructions += 1)),
            ("seed", Box::new(|s| s.seed ^= 1)),
            ("epoch_width", Box::new(|s| s.epoch_width = 4_096)),
        ];
        for (what, f) in perturb {
            let mut spec = base.clone();
            f(&mut spec);
            assert_ne!(
                spec.content_hash(),
                base.content_hash(),
                "{what} must be part of the content hash"
            );
        }
    }

    #[test]
    fn content_hash_is_stable_across_codec_round_trips() {
        let mut spec = JobSpec::bench("mcf");
        spec.configs = vec![SecurityConfig::secddr_ctr(), SecurityConfig::tdx_baseline()];
        spec.priority = 7;
        let text = spec.to_json().to_string();
        let back = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.content_hash(), spec.content_hash());
    }

    #[test]
    fn cell_specs_decompose_in_cell_order() {
        let mut spec = JobSpec::bench("mcf");
        spec.workload = Workload::Suite(SuiteSel::Gapbs);
        spec.configs = vec![SecurityConfig::secddr_ctr(), SecurityConfig::tdx_baseline()];
        spec.priority = 3;
        spec.seed = 99;
        let cells = spec.cell_specs().unwrap();
        assert_eq!(cells.len(), spec.cell_count().unwrap());
        // Benchmark-major, config-minor — exactly the order run_job
        // iterates cells in.
        let benchmarks = spec.resolve_benchmarks().unwrap();
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(
                cell.workload,
                Workload::Bench(benchmarks[i / 2].name().to_string())
            );
            assert_eq!(cell.configs, vec![spec.configs[i % 2]]);
            assert_eq!(cell.cell_count().unwrap(), 1);
            assert_eq!((cell.seed, cell.priority), (99, 3));
            cell.validate().unwrap();
        }
        // Distinct cells get distinct content hashes (the result-store
        // keys cannot collide within one job).
        let mut keys: Vec<u64> = cells.iter().map(JobSpec::content_hash).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), cells.len());
    }

    #[test]
    fn single_cell_jobs_decompose_to_themselves_modulo_nothing() {
        let spec = JobSpec::bench("mcf");
        let cells = spec.cell_specs().unwrap();
        assert_eq!(cells, vec![spec.clone()]);
        assert_eq!(cells[0].content_hash(), spec.content_hash());
    }

    #[test]
    fn interleave_matches_channel_count() {
        let mut spec = JobSpec::bench("mcf");
        spec.channels = 4;
        assert_eq!(spec.interleave().shard_count(), 4);
        spec.channels = 3;
        assert_eq!(spec.interleave().shard_count(), 3);
    }
}
