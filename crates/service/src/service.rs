//! The resident experiment service: submit [`JobSpec`]s, stream
//! [`JobEvent`]s, cancel cooperatively.
//!
//! One submitted spec becomes one pool job that runs its benchmark ×
//! configuration cells in order, emitting an event as each cell
//! completes. The execution paths are exactly the library's own —
//! [`run_trace_with_options`] for the 1-core/1-channel shape,
//! `CpuSystem` over [`ShardedEngine`] for multi-channel, and
//! [`MultiCoreSystem`] rate mode for multi-core — so service results are
//! bit-identical to direct calls (pinned by
//! `tests/service_differential.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cpu_model::{CpuSystem, SimResult};
use secddr_channels::ShardedEngine;
use secddr_core::engine::EngineStats;
use secddr_core::metadata::DATA_SPAN;
use secddr_core::system::run_trace_with_options;
use secddr_multicore::{CoreTrace, MultiCoreSystem};
use secddr_telemetry::{Registry, SeriesSnapshot, TelemetrySnapshot};
use workloads::{Benchmark, TraceCacheStats};

use crate::pool::{default_threads, CancelToken, PoolGauges, WorkerPool, DEFAULT_THREAD_CAP};
use crate::spec::{JobSpec, SpecError};

/// Identifier of one submitted job, unique per service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Result of one benchmark × configuration cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Benchmark label.
    pub benchmark: String,
    /// Configuration label.
    pub config: String,
    /// One [`SimResult`] per core (length 1 below rate mode).
    pub per_core: Vec<SimResult>,
    /// Security-engine traffic statistics (merged over channels).
    pub engine: EngineStats,
}

impl CellResult {
    /// All cores folded into one [`SimResult`] (counters sum, cycles is
    /// the slowest core).
    ///
    /// # Panics
    ///
    /// Panics if the cell has no cores (cells always have at least one).
    #[must_use]
    pub fn merged(&self) -> SimResult {
        let (first, rest) = self.per_core.split_first().expect("at least one core");
        let mut merged = first.clone();
        for r in rest {
            merged.merge(r);
        }
        merged
    }

    /// Sum of per-core IPCs (the rate-mode throughput metric; plain IPC
    /// for one core).
    #[must_use]
    pub fn aggregate_ipc(&self) -> f64 {
        self.per_core.iter().map(SimResult::ipc).sum()
    }
}

/// Merged view of a finished job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Number of cells the job ran.
    pub cells: usize,
    /// Every cell's cores folded into one [`SimResult`].
    pub merged: SimResult,
}

/// One progress event in a job's stream. Streams are strictly ordered:
/// `Queued`, `Started`, `Cell` with ascending `index`, then exactly one
/// terminal event (`Finished` or `Cancelled`).
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The spec was accepted and enqueued.
    Queued {
        /// The job.
        job: JobId,
        /// Cells the job will run.
        cells: usize,
    },
    /// A worker picked the job up.
    Started {
        /// The job.
        job: JobId,
    },
    /// One benchmark × configuration cell completed.
    Cell {
        /// The job.
        job: JobId,
        /// Cell index, ascending from 0.
        index: usize,
        /// Total cell count.
        total: usize,
        /// The cell's results.
        result: CellResult,
    },
    /// Live service-metric frame, one per completed cell: the
    /// process-wide registry counters that moved since this job's
    /// previous frame (the windowed delta of
    /// [`ExperimentService::telemetry_snapshot`]). The registry is
    /// shared, so concurrent jobs' activity can bleed into each other's
    /// frames — the frames are a live dashboard feed, not an exact
    /// attribution.
    Metrics {
        /// The job.
        job: JobId,
        /// Counters that increased since the previous frame, with their
        /// deltas.
        counters: std::collections::BTreeMap<String, u64>,
    },
    /// Terminal: all cells completed.
    Finished {
        /// The job.
        job: JobId,
        /// Merged results.
        summary: JobSummary,
    },
    /// Terminal: cancellation was observed before all cells ran.
    Cancelled {
        /// The job.
        job: JobId,
        /// Cells that completed before the cancellation took effect.
        completed: usize,
    },
    /// Terminal: the job's worker panicked mid-run. The pool worker
    /// survives (panics are contained per job) and the stream still
    /// ends with a terminal event instead of going silent.
    Failed {
        /// The job.
        job: JobId,
        /// The panic message, best-effort.
        error: String,
    },
}

impl JobEvent {
    /// The job this event belongs to.
    #[must_use]
    pub fn job(&self) -> JobId {
        match self {
            JobEvent::Queued { job, .. }
            | JobEvent::Started { job }
            | JobEvent::Cell { job, .. }
            | JobEvent::Metrics { job, .. }
            | JobEvent::Finished { job, .. }
            | JobEvent::Cancelled { job, .. }
            | JobEvent::Failed { job, .. } => *job,
        }
    }

    /// True for the stream-ending events.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobEvent::Finished { .. } | JobEvent::Cancelled { .. } | JobEvent::Failed { .. }
        )
    }
}

/// Collected outcome of one job (the convenience form of draining the
/// event stream).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Every completed cell, in order.
    pub cells: Vec<CellResult>,
    /// The merged summary — `None` when the job was cancelled.
    pub summary: Option<JobSummary>,
}

impl JobOutcome {
    /// True when the job ran to completion.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.summary.is_some()
    }
}

/// Caller's handle to one submitted job: a blocking event stream plus
/// cooperative cancellation.
#[derive(Debug)]
pub struct JobHandle {
    id: JobId,
    events: Receiver<JobEvent>,
    cancel: CancelToken,
}

impl JobHandle {
    /// The job's identifier.
    #[must_use]
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Requests cooperative cancellation: the job stops at its next
    /// cell boundary and emits [`JobEvent::Cancelled`].
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks for the next event; `None` once the stream ended (the
    /// terminal event was already delivered).
    pub fn next_event(&self) -> Option<JobEvent> {
        self.events.recv().ok()
    }

    /// A blocking iterator over the remaining events, ending after the
    /// terminal event.
    pub fn events(&self) -> impl Iterator<Item = JobEvent> + '_ {
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let event = self.next_event()?;
            done = event.is_terminal();
            Some(event)
        })
    }

    /// Drains the stream and returns the collected outcome.
    #[must_use]
    pub fn wait(self) -> JobOutcome {
        let mut outcome = JobOutcome {
            cells: Vec::new(),
            summary: None,
        };
        for event in self.events() {
            match event {
                JobEvent::Cell { result, .. } => outcome.cells.push(result),
                JobEvent::Finished { summary, .. } => outcome.summary = Some(summary),
                _ => {}
            }
        }
        outcome
    }
}

/// Point-in-time view of the service's caches and queue counters (the
/// TCP `cache_stats` endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Process-wide trace-cache counters (memory tier, disk tier,
    /// kernel generations) — see [`workloads::trace_cache_stats`].
    pub traces: TraceCacheStats,
    /// Jobs submitted to this service instance.
    pub jobs_submitted: u64,
    /// Jobs that reached a terminal event.
    pub jobs_completed: u64,
}

/// The resident experiment service (see the module docs).
///
/// Dropping the service drains in-flight jobs (cancelled ones wind down
/// at their next cell boundary) and joins the worker pool.
#[derive(Debug)]
pub struct ExperimentService {
    pool: WorkerPool,
    next_id: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_completed: Arc<AtomicU64>,
    /// Live jobs' cancel tokens, for cancellation by id (the TCP path).
    active: Arc<Mutex<std::collections::HashMap<u64, CancelToken>>>,
    /// Per-job merged sim-time series (jobs whose spec set a nonzero
    /// `epoch_width`), inserted before the terminal event so a caller
    /// that saw `Finished` can fetch it (the TCP `series` endpoint).
    series: Arc<Mutex<std::collections::HashMap<u64, SeriesSnapshot>>>,
}

impl Default for ExperimentService {
    fn default() -> Self {
        Self::new()
    }
}

impl ExperimentService {
    /// A service on a pool sized by the default policy
    /// (`SECDDR_THREADS` override, else host parallelism capped at
    /// [`DEFAULT_THREAD_CAP`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_threads(default_threads(DEFAULT_THREAD_CAP))
    }

    /// A service on a pool of exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        // The pool publishes its levels into the process-wide registry
        // (last-constructed service wins on the shared names — services
        // are one-per-process outside tests) so the `metrics` endpoint
        // serves live queue depth and in-flight count.
        let gauges = PoolGauges {
            queue_depth: Registry::global().gauge("service.pool.queue_depth"),
            inflight: Registry::global().gauge("service.pool.inflight"),
        };
        Self {
            pool: WorkerPool::with_gauges(threads, gauges),
            next_id: AtomicU64::new(1),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: Arc::new(AtomicU64::new(0)),
            active: Arc::new(Mutex::new(std::collections::HashMap::new())),
            series: Arc::new(Mutex::new(std::collections::HashMap::new())),
        }
    }

    /// Worker threads in the service's pool.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Validates and enqueues `spec`; the returned handle streams the
    /// job's events.
    ///
    /// # Errors
    ///
    /// Rejects invalid specs without consuming a job id.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SpecError> {
        spec.validate()?;
        let benchmarks = spec.resolve_benchmarks()?;
        let total = benchmarks.len() * spec.configs.len();
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        Registry::global().counter("service.job.submitted").inc();
        let queued_at = Instant::now();

        let (tx, rx) = std::sync::mpsc::channel();
        let cancel = CancelToken::new();
        self.active
            .lock()
            .expect("active-jobs lock")
            .insert(id.0, cancel.clone());
        let _ = tx.send(JobEvent::Queued {
            job: id,
            cells: total,
        });

        let active = Arc::clone(&self.active);
        let series_store = Arc::clone(&self.series);
        let completed_counter = Arc::clone(&self.jobs_completed);
        let priority = spec.priority;
        self.pool.submit(priority, cancel.clone(), move |token| {
            Registry::global()
                .histogram("service.job.queue_wait_us")
                .record(elapsed_us(queued_at));
            // A panicking cell must still produce a terminal event —
            // otherwise the handle (and any TCP client streaming it)
            // would wait forever on a stream that went silent.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_job(id, &spec, &benchmarks, total, &tx, token, &series_store)
            }));
            // Bookkeeping strictly before the terminal event: a caller
            // that has seen the terminal event observes the job as done
            // (no longer cancellable, counted as completed).
            completed_counter.fetch_add(1, Ordering::Relaxed);
            Registry::global().counter("service.job.completed").inc();
            active.lock().expect("active-jobs lock").remove(&id.0);
            let terminal = match outcome {
                Ok(terminal) => terminal,
                Err(payload) => Some(JobEvent::Failed {
                    job: id,
                    error: panic_message(payload.as_ref()),
                }),
            };
            if let Some(terminal) = terminal {
                let _ = tx.send(terminal);
            }
        });
        Ok(JobHandle {
            id,
            events: rx,
            cancel,
        })
    }

    /// Cancels a job by id (the TCP path — in-process callers use
    /// [`JobHandle::cancel`]). Returns false when the job is unknown or
    /// already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        match self.active.lock().expect("active-jobs lock").get(&id.0) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Blocks until every queued and running job reached its terminal
    /// event — the server's shutdown drain, independent of how many
    /// handles or connection threads still reference the service.
    pub fn drain(&self) {
        self.pool.wait_idle();
    }

    /// Current cache and queue counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            traces: workloads::trace_cache_stats(),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
        }
    }

    /// The merged sim-time series a job recorded (specs with a nonzero
    /// `epoch_width` on a multi-channel or multi-core shape), available
    /// once the job is terminal. `None` for unknown jobs, jobs still
    /// running, and jobs that recorded nothing.
    #[must_use]
    pub fn job_series(&self, id: JobId) -> Option<SeriesSnapshot> {
        self.series
            .lock()
            .expect("series-store lock")
            .get(&id.0)
            .cloned()
    }

    /// A deterministic snapshot of the process-wide telemetry registry:
    /// `service.job.*` / `service.cell.*` counters and timing
    /// histograms plus the `workloads.trace_cache.*` counters (the TCP
    /// `metrics` endpoint reports exactly this).
    #[must_use]
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        Registry::global().snapshot()
    }
}

/// Microseconds elapsed since `start`, saturating into `u64`.
fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Best-effort human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

/// Runs one job's cells in order on the calling worker thread and
/// returns the terminal event (the caller sends it after bookkeeping),
/// or `None` when the handle disappeared mid-run.
fn run_job(
    id: JobId,
    spec: &JobSpec,
    benchmarks: &[Benchmark],
    total: usize,
    tx: &Sender<JobEvent>,
    cancel: &CancelToken,
    series_store: &Mutex<std::collections::HashMap<u64, SeriesSnapshot>>,
) -> Option<JobEvent> {
    let _ = tx.send(JobEvent::Started { job: id });
    let mut merged: Option<SimResult> = None;
    let mut job_series: Option<SeriesSnapshot> = None;
    let mut completed = 0usize;
    // Baseline for the live metric frames: each cell streams the
    // registry counters that moved while it ran.
    let mut metrics_base = Registry::global().snapshot();
    'cells: for bench in benchmarks {
        for config in &spec.configs {
            if cancel.is_cancelled() {
                break 'cells;
            }
            let run_started = Instant::now();
            let (result, cell_series) = run_cell(bench, config, spec);
            Registry::global()
                .histogram("service.cell.run_us")
                .record(elapsed_us(run_started));
            if let Some(cell_series) = cell_series {
                match &mut job_series {
                    Some(s) => s.merge(&cell_series),
                    None => job_series = Some(cell_series),
                }
            }
            let cell_merged = result.merged();
            match &mut merged {
                Some(m) => m.merge(&cell_merged),
                None => merged = Some(cell_merged),
            }
            let stream_started = Instant::now();
            let delivered = tx.send(JobEvent::Cell {
                job: id,
                index: completed,
                total,
                result,
            });
            Registry::global()
                .histogram("service.cell.stream_us")
                .record(elapsed_us(stream_started));
            Registry::global().counter("service.cell.completed").inc();
            completed += 1;
            if delivered.is_err() {
                // The handle is gone — nobody can observe further cells
                // or a terminal event; abandon the orphaned job.
                return None;
            }
            let now_snap = Registry::global().snapshot();
            let frame = now_snap.delta_since(&metrics_base);
            metrics_base = now_snap;
            if tx
                .send(JobEvent::Metrics {
                    job: id,
                    counters: frame.counters,
                })
                .is_err()
            {
                return None;
            }
        }
    }
    // Publish whatever was recorded strictly before the terminal event,
    // so a caller that saw it can immediately fetch the series.
    if let Some(series) = job_series {
        series_store
            .lock()
            .expect("series-store lock")
            .insert(id.0, series);
    }
    if completed < total {
        return Some(JobEvent::Cancelled { job: id, completed });
    }
    Some(JobEvent::Finished {
        job: id,
        summary: JobSummary {
            cells: completed,
            merged: merged.expect("a job has at least one cell"),
        },
    })
}

/// Runs one benchmark × configuration cell with the spec's machine
/// shape. Traces come from [`Benchmark::generate_shared`], so repeated
/// specs hit the warm in-process cache (and restarts hit the disk tier).
///
/// When the spec set a nonzero `epoch_width` the sharded and multi-core
/// shapes also return the cell's sim-time series (scheduler and channel
/// layers merged). The bare 1-core/1-channel path stays exactly
/// `run_trace_with_options` — results bit-identical to direct calls
/// outweigh series coverage there, so it records nothing.
fn run_cell(
    bench: &Benchmark,
    config: &secddr_core::config::SecurityConfig,
    spec: &JobSpec,
) -> (CellResult, Option<SeriesSnapshot>) {
    let trace = bench.generate_shared(spec.instructions, spec.seed);
    let options = spec.options;
    let cpu_cfg = spec.cpu_config();
    let (per_core, engine, series) = if spec.cores == 1 && spec.channels == 1 {
        let r = run_trace_with_options(bench, &trace, config, options);
        (vec![r.sim], r.engine, None)
    } else if spec.cores == 1 {
        let mut engine =
            ShardedEngine::with_options(*config, cpu_cfg.clock_mhz, spec.interleave(), options);
        if spec.epoch_width > 0 {
            engine.enable_series(spec.epoch_width);
        }
        let mut sys = CpuSystem::new(cpu_cfg, engine);
        let sim = sys.run(trace.iter().copied());
        let series = sys.backend_mut().series_snapshot();
        (vec![sim], sys.backend_mut().stats(), series)
    } else {
        let mut engine =
            ShardedEngine::with_options(*config, cpu_cfg.clock_mhz, spec.interleave(), options);
        if spec.epoch_width > 0 {
            engine.enable_series(spec.epoch_width);
        }
        let mut sys = MultiCoreSystem::new(spec.cores, cpu_cfg, engine);
        if spec.epoch_width > 0 {
            sys.enable_series(spec.epoch_width);
        }
        let result = sys.run(CoreTrace::rate(&trace, DATA_SPAN, spec.cores));
        let mut series = sys.backend_mut().series_snapshot();
        if let (Some(series), Some(scheduler)) = (&mut series, sys.series_snapshot()) {
            series.merge(&scheduler);
        }
        (result.per_core, sys.backend_mut().stats(), series)
    };
    let result = CellResult {
        benchmark: bench.name().to_string(),
        config: config.label(),
        per_core,
        engine,
    };
    (result, series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SuiteSel, Workload};

    fn tiny_spec(name: &str) -> JobSpec {
        let mut spec = JobSpec::bench(name);
        spec.instructions = 3_000;
        spec
    }

    #[test]
    fn job_streams_ordered_events_to_completion() {
        let service = ExperimentService::with_threads(2);
        let handle = service.submit(tiny_spec("povray")).unwrap();
        let events: Vec<JobEvent> = handle.events().collect();
        assert!(matches!(events[0], JobEvent::Queued { cells: 1, .. }));
        assert!(matches!(events[1], JobEvent::Started { .. }));
        assert!(matches!(
            events[2],
            JobEvent::Cell {
                index: 0,
                total: 1,
                ..
            }
        ));
        let JobEvent::Metrics { counters, .. } = &events[3] else {
            panic!("every cell streams a live metrics frame: {events:?}");
        };
        assert!(
            counters.get("service.cell.completed").copied() >= Some(1),
            "the frame carries the deltas of the cell that just ran: {counters:?}"
        );
        let JobEvent::Finished { summary, .. } = &events[4] else {
            panic!("terminal event must be Finished: {events:?}");
        };
        assert_eq!(summary.cells, 1);
        assert!(summary.merged.instructions > 0);
        let stats = service.stats();
        assert_eq!(stats.jobs_submitted, 1);
    }

    #[test]
    fn multi_cell_jobs_index_cells_in_order() {
        let mut spec = tiny_spec("mcf");
        spec.configs = vec![
            secddr_core::config::SecurityConfig::secddr_ctr(),
            secddr_core::config::SecurityConfig::tdx_baseline(),
        ];
        let service = ExperimentService::with_threads(2);
        let outcome = service.submit(spec).unwrap().wait();
        assert!(outcome.finished());
        assert_eq!(outcome.cells.len(), 2);
        assert_eq!(outcome.cells[0].config, "SecDDR+CTR");
        assert_eq!(outcome.cells[1].config, "TDX baseline");
    }

    #[test]
    fn cancellation_stops_remaining_cells() {
        let service = ExperimentService::with_threads(1);
        // Occupy the single worker so cancel lands before the job runs.
        let mut blocker = tiny_spec("povray");
        blocker.instructions = 30_000;
        let blocker = service.submit(blocker).unwrap();
        let mut spec = tiny_spec("mcf");
        spec.workload = Workload::Suite(SuiteSel::Gapbs);
        let handle = service.submit(spec).unwrap();
        handle.cancel();
        let outcome_blocked = blocker.wait();
        assert!(outcome_blocked.finished());
        let events: Vec<JobEvent> = handle.events().collect();
        let terminal = events.last().unwrap();
        assert!(
            matches!(terminal, JobEvent::Cancelled { completed: 0, .. }),
            "{events:?}"
        );
    }

    #[test]
    fn cancel_by_id_reaches_live_jobs_only() {
        let service = ExperimentService::with_threads(1);
        let handle = service.submit(tiny_spec("povray")).unwrap();
        let id = handle.id();
        let _ = handle.wait();
        // The job already reached its terminal event; its token is gone.
        assert!(!service.cancel(id), "terminal jobs cannot be cancelled");
        assert!(!service.cancel(JobId(999)), "unknown id");
    }

    #[test]
    fn finished_jobs_show_up_in_the_telemetry_snapshot() {
        let service = ExperimentService::with_threads(1);
        let outcome = service.submit(tiny_spec("povray")).unwrap().wait();
        assert!(outcome.finished());
        // The registry is process-wide (other tests run jobs too), so
        // assert floors rather than exact values.
        let snap = service.telemetry_snapshot();
        assert!(snap.counter("service.job.submitted") >= 1);
        assert!(snap.counter("service.job.completed") >= 1);
        assert!(snap.counter("service.cell.completed") >= 1);
        let waits = &snap.histograms["service.job.queue_wait_us"];
        assert!(waits.count >= 1, "queue wait recorded per job");
        let runs = &snap.histograms["service.cell.run_us"];
        assert!(runs.count >= 1 && runs.sum > 0, "cell run time recorded");
    }

    #[test]
    fn series_specs_store_a_fetchable_job_series() {
        let service = ExperimentService::with_threads(1);
        let mut spec = tiny_spec("mcf");
        spec.cores = 2;
        spec.channels = 2;
        spec.epoch_width = 2_048;
        let handle = service.submit(spec).unwrap();
        let id = handle.id();
        assert!(handle.wait().finished());
        let series = service.job_series(id).expect("recorded series stored");
        assert_eq!(series.epoch_width, 2_048);
        assert!(series.row_total("dram.decisions_total") > 0);
        assert!(series.row_total("multicore.core.steps") > 0);
        // Jobs without an epoch width store nothing.
        let plain = service.submit(tiny_spec("mcf")).unwrap();
        let plain_id = plain.id();
        assert!(plain.wait().finished());
        assert!(service.job_series(plain_id).is_none());
    }

    #[test]
    fn invalid_specs_are_rejected_at_submit() {
        let service = ExperimentService::with_threads(1);
        assert!(service.submit(tiny_spec("nope")).is_err());
        let stats = service.stats();
        assert_eq!(stats.jobs_submitted, 0, "rejected specs consume nothing");
    }
}
