//! `secddr-serve`: the resident experiment server.
//!
//! ```text
//! secddr-serve [--port N] [--threads N]
//! ```
//!
//! Binds `127.0.0.1:PORT` (default 7441, `--port 0` for an ephemeral
//! port; `SECDDR_PORT` is the env equivalent) and serves the
//! line-delimited-JSON protocol of `secddr_service::net` until a client
//! sends `{"cmd":"shutdown"}`. The worker pool is sized by `--threads`
//! / `SECDDR_THREADS`, else host parallelism capped at 16.
//!
//! The first stdout line is `secddr-serve listening on ADDR` so
//! wrappers (CI, examples) can discover the bound address.

use secddr_service::{ExperimentServer, ExperimentService};
use std::io::Write;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let port: u16 = arg_value(&args, "--port")
        .or_else(|| std::env::var("SECDDR_PORT").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(7441);
    let service = match arg_value(&args, "--threads").and_then(|v| v.parse().ok()) {
        Some(threads) => ExperimentService::with_threads(threads),
        None => ExperimentService::new(),
    };
    let threads = service.threads();
    let server = ExperimentServer::bind(("127.0.0.1", port), service)?;
    let addr = server.local_addr()?;
    println!("secddr-serve listening on {addr} ({threads} worker threads)");
    std::io::stdout().flush()?;
    server.serve()?;
    println!("secddr-serve: clean shutdown");
    Ok(())
}
