//! Resident experiment service: a long-running job server that queues,
//! runs, and streams SecDDR simulation results.
//!
//! The batch story (PR 1–4) runs one sweep per process; this crate is
//! the front door the ROADMAP's million-user north star needs — a
//! *resident* process that accepts typed jobs, schedules them on a
//! persistent worker pool, streams incremental results, and reuses warm
//! state (memoized graphs and traces) across requests:
//!
//! * [`pool`] — [`WorkerPool`]: persistent workers, priority queue,
//!   cooperative [`CancelToken`]s, `SECDDR_THREADS` sizing; the scoped
//!   `par_sweep` harness is now [`par_sweep`] on the shared global
//!   instance of this pool, so the 10 bench binaries and the service
//!   share one thread policy (each service keeps its own pool
//!   instance, sized by the same rules).
//! * [`spec`] — [`JobSpec`]: benchmark/suite × `SecurityConfig`s ×
//!   `EngineOptions` × cores × channels × budget × seed × priority,
//!   with a lossless JSON codec.
//! * [`service`] — [`ExperimentService::submit`] returns a
//!   [`JobHandle`] streaming [`JobEvent`]s (queued → started → one per
//!   benchmark×config cell → finished/cancelled).
//! * [`net`] — [`ExperimentServer`]/[`ServiceClient`]: the same API
//!   over TCP as line-delimited JSON (`std::net`, no external deps),
//!   multiplexing any number of jobs per connection; `secddr-serve` is
//!   the binary.
//! * [`json`] — the minimal hand-rolled JSON the wire rides on.
//!
//! # Example
//!
//! ```
//! use secddr_service::{ExperimentService, JobEvent, JobSpec};
//!
//! let service = ExperimentService::with_threads(2);
//! let mut spec = JobSpec::bench("povray");
//! spec.instructions = 2_000;
//! let handle = service.submit(spec).unwrap();
//! let outcome = handle.wait();
//! assert!(outcome.finished());
//! assert!(outcome.cells[0].merged().instructions >= 2_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod net;
pub mod pool;
pub mod service;
pub mod spec;

pub use json::Json;
pub use net::{ExperimentServer, ServiceClient, ShutdownHandle, WireCacheStats, WireEvent};
pub use pool::{resolve_threads, CancelToken, PoolGauges, WorkerPool, DEFAULT_THREAD_CAP};
pub use service::{
    CellResult, ExperimentService, JobEvent, JobHandle, JobId, JobOutcome, JobSummary, ServiceStats,
};
pub use spec::{JobSpec, SpecError, SuiteSel, Workload};

/// Maps `f` over `items` on the process-wide [`WorkerPool`], preserving
/// input order.
///
/// This is the one parallel harness in the repository — every figure
/// and table binary fans out through it — now riding the same
/// [`WorkerPool`] machinery the experiment service schedules jobs on
/// (each `ExperimentService` constructs its own instance so tests can
/// size and drain it independently; `par_sweep` uses the process-wide
/// [`WorkerPool::global`]), so the thread-count policy
/// (`SECDDR_THREADS`, capped at [`DEFAULT_THREAD_CAP`]) lives in
/// exactly one place. The calling thread participates in the work, so
/// the call completes even when the pool is saturated with other jobs.
pub fn par_sweep<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
{
    WorkerPool::global().map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_sweep_preserves_order_on_the_global_pool() {
        let out = par_sweep((0u32..50).collect(), |&x| x * 3);
        assert_eq!(out, (0u32..50).map(|x| x * 3).collect::<Vec<_>>());
    }
}
