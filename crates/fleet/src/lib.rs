//! Fleet layer for the experiment service: durability, dispatch, and
//! whole-result memoization.
//!
//! One `secddr-serve` process saturates one host and forgets its queue
//! on crash. This crate scales the service out and makes it durable,
//! exploiting the property the rest of the repository pins relentlessly
//! — bit-identical determinism. Identical `(spec, seed)` submissions
//! are *proven* to produce identical results, so finished cells can be
//! memoized and served in O(1), a crashed worker's cells can be re-run
//! anywhere, and a replayed log can never produce a different answer
//! than the run it replaces. Three composable layers:
//!
//! * [`joblog`] — [`JobLog`]: write-ahead log of accepted specs and
//!   terminal outcomes; on restart the incomplete set (deduped by
//!   [`JobSpec::content_hash`], priority excluded) is replayed.
//! * [`store`] — [`ResultStore`]: versioned on-disk memoization of
//!   finished cell payloads keyed by the canonical hash of the cell
//!   spec (seed included); checked before dispatch, populated on
//!   completion, observable via `fleet.result_cache.*` telemetry.
//! * [`dispatch`] — [`Dispatcher`]: fans cells out to N `secddr-serve`
//!   workers, least-loaded placement with per-worker outstanding caps,
//!   ping health checks, and requeue-on-worker-death.
//! * [`server`] — [`FleetServer`]: the same line-delimited-JSON TCP
//!   protocol `secddr-serve` speaks, so
//!   [`ServiceClient`](secddr_service::ServiceClient) drives a fleet
//!   unchanged; `secddr-dispatch` is the binary, `secddr-fleetctl`
//!   inspects logs/stores and pings endpoints.
//!
//! Workers are expected to share one trace cache dir (point them all
//! at the same `SECDDR_TRACE_CACHE`) so a cell re-run after a worker
//! death starts from a warm trace no matter where it lands.
//!
//! [`JobSpec::content_hash`]: secddr_service::JobSpec::content_hash

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
pub mod joblog;
pub mod server;
pub mod store;

pub use dispatch::{Dispatcher, DispatcherConfig, FleetJobHandle, WorkerStatus};
pub use joblog::{JobLog, LogRecord, Terminal};
pub use server::{FleetServer, FleetShutdownHandle};
pub use store::ResultStore;
