//! `secddr-fleetctl`: inspect fleet state from the command line.
//!
//! ```text
//! secddr-fleetctl log <dir>       # decode a job-log dir
//! secddr-fleetctl store <dir>     # list result-store cells
//! secddr-fleetctl ping <addr>     # health-check a worker/dispatcher
//! secddr-fleetctl metrics <addr>  # dump an endpoint's counters+gauges
//! ```
//!
//! `log` and `store` read the on-disk formats directly (same guarded
//! decoders the dispatcher uses — corrupt files are reported, not
//! trusted); `ping` and `metrics` speak the TCP protocol, so they work
//! against both `secddr-serve` and `secddr-dispatch`.

use secddr_fleet::joblog;
use secddr_fleet::store;
use secddr_service::ServiceClient;

fn usage() -> std::io::Result<()> {
    eprintln!("usage: secddr-fleetctl log <dir> | store <dir> | ping <addr> | metrics <addr>");
    Err(std::io::Error::new(
        std::io::ErrorKind::InvalidInput,
        "bad arguments",
    ))
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(target)) = (args.first(), args.get(1)) else {
        return usage();
    };
    match cmd.as_str() {
        "log" => {
            let records = joblog::read_log(std::path::Path::new(target))?;
            let mut open = 0usize;
            for record in &records {
                match record {
                    joblog::LogRecord::Submitted { hash, spec } => {
                        open += 1;
                        println!("submitted {hash:016x} {}", spec.to_json());
                    }
                    joblog::LogRecord::Terminal { hash, outcome } => {
                        open = open.saturating_sub(1);
                        println!("terminal  {hash:016x} {outcome:?}");
                    }
                }
            }
            println!("{} records, ~{open} open", records.len());
        }
        "store" => {
            let cells = store::scan(std::path::Path::new(target))?;
            for (key, payload) in &cells {
                println!("{key:016x} {payload}");
            }
            println!("{} cells", cells.len());
        }
        "ping" => {
            let mut client = ServiceClient::connect(target.as_str())?;
            client.ping()?;
            println!("{target}: alive");
        }
        "metrics" => {
            let mut client = ServiceClient::connect(target.as_str())?;
            for (name, value) in client.metrics()? {
                println!("counter {name} {value}");
            }
            for (name, value) in client.gauges()? {
                println!("gauge   {name} {value}");
            }
        }
        _ => return usage(),
    }
    Ok(())
}
