//! `secddr-dispatch`: the fleet dispatcher front-end.
//!
//! ```text
//! secddr-dispatch [--port N] [--workers a:p,b:p,…] [--log-dir DIR]
//!                 [--store-dir DIR] [--outstanding N]
//! ```
//!
//! Binds `127.0.0.1:PORT` (default 7450, `--port 0` for an ephemeral
//! port; `SECDDR_DISPATCH_PORT` is the env equivalent) and serves the
//! same line-delimited-JSON protocol as `secddr-serve`, fanning jobs
//! out to the comma-separated `--workers` / `SECDDR_WORKERS` list of
//! running `secddr-serve` addresses. `--log-dir` / `SECDDR_FLEET_LOG`
//! enables the write-ahead job log (incomplete jobs replay on start);
//! `--store-dir` / `SECDDR_FLEET_STORE` enables the on-disk result
//! store; `--outstanding` caps cells in flight per worker (default 4).
//!
//! The first stdout line is `secddr-dispatch listening on ADDR` so
//! wrappers (CI, examples) can discover the bound address.

use std::io::Write;

use secddr_fleet::{Dispatcher, DispatcherConfig, FleetServer};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let port: u16 = arg_value(&args, "--port")
        .or_else(|| std::env::var("SECDDR_DISPATCH_PORT").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(7450);
    let workers: Vec<String> = arg_value(&args, "--workers")
        .or_else(|| std::env::var("SECDDR_WORKERS").ok())
        .map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    let log_dir = arg_value(&args, "--log-dir")
        .or_else(|| std::env::var("SECDDR_FLEET_LOG").ok())
        .map(Into::into);
    let store_dir = arg_value(&args, "--store-dir")
        .or_else(|| std::env::var("SECDDR_FLEET_STORE").ok())
        .map(Into::into);
    let max_outstanding = arg_value(&args, "--outstanding")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    let worker_count = workers.len();
    let dispatcher = Dispatcher::start(DispatcherConfig {
        workers,
        log_dir,
        store_dir,
        max_outstanding,
        ..DispatcherConfig::default()
    })?;
    let replayed = dispatcher.replayed();
    let server = FleetServer::bind(("127.0.0.1", port), dispatcher)?;
    let addr = server.local_addr()?;
    println!("secddr-dispatch listening on {addr} ({worker_count} workers, {replayed} replayed)");
    std::io::stdout().flush()?;
    server.serve()?;
    println!("secddr-dispatch: clean shutdown");
    Ok(())
}
