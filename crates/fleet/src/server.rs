//! TCP front-end over a [`Dispatcher`]: the same line-delimited-JSON
//! protocol `secddr-serve` speaks, so [`ServiceClient`] works against
//! a dispatcher unchanged (`submit`/`stream_job`/`cancel`/`ping`/
//! `metrics`/`shutdown_server`). `secddr-dispatch` is the binary.
//!
//! Two commands are dispatcher-specific: `workers` reports per-worker
//! liveness and load, and the single-service `cache_stats`/`series`
//! commands answer with an error (the dispatcher has no trace cache or
//! series store of its own — ask a worker).
//!
//! [`ServiceClient`]: secddr_service::ServiceClient

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use secddr_service::net::metrics_to_json;
use secddr_service::{JobSpec, Json};
use secddr_telemetry::Registry;

use crate::dispatch::Dispatcher;

fn error_json(message: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("type".into(), Json::str("error")),
        ("message".into(), Json::Str(message.into())),
    ])
}

fn write_line(writer: &Mutex<TcpStream>, json: &Json) -> std::io::Result<()> {
    let mut stream = writer.lock().expect("writer lock");
    let mut line = json.to_string();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// The TCP front-end over one [`Dispatcher`].
pub struct FleetServer {
    dispatcher: Arc<Dispatcher>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

/// Makes a running [`FleetServer::serve`] loop return.
#[derive(Debug, Clone)]
pub struct FleetShutdownHandle {
    shutdown: Arc<AtomicBool>,
    addr: Option<SocketAddr>,
}

impl FleetShutdownHandle {
    /// Requests shutdown and nudges the accept loop awake.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(addr) = self.addr {
            // The accept loop only observes the flag on a connection;
            // poke it with one.
            let _ = TcpStream::connect(addr);
        }
    }
}

impl FleetServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over
    /// `dispatcher`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs, dispatcher: Dispatcher) -> std::io::Result<Self> {
        Ok(Self {
            dispatcher: Arc::new(dispatcher),
            listener: TcpListener::bind(addr)?,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (read the ephemeral port from here).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shared handle to the underlying dispatcher, for ops hooks
    /// ([`Dispatcher::workers`], [`Dispatcher::sever_worker`]) while
    /// [`Self::serve`] owns `self`.
    #[must_use]
    pub fn dispatcher(&self) -> Arc<Dispatcher> {
        Arc::clone(&self.dispatcher)
    }

    /// A handle that makes [`Self::serve`] return (the `shutdown`
    /// command uses the same mechanism).
    #[must_use]
    pub fn shutdown_handle(&self) -> FleetShutdownHandle {
        FleetShutdownHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.local_addr().ok(),
        }
    }

    /// Accepts and serves connections until a shutdown is requested,
    /// drains active jobs, and returns — every accepted job reaches a
    /// terminal event (and a terminal log record) first, the "clean
    /// shutdown" the CI gate asserts.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures (per-connection I/O errors only
    /// terminate that connection).
    pub fn serve(self) -> std::io::Result<()> {
        for incoming in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = incoming else {
                continue;
            };
            let dispatcher = Arc::clone(&self.dispatcher);
            let shutdown = self.shutdown_handle();
            std::thread::spawn(move || handle_connection(stream, &dispatcher, &shutdown));
        }
        self.dispatcher.drain();
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, dispatcher: &Dispatcher, shutdown: &FleetShutdownHandle) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // disconnected
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match Json::parse(line.trim()) {
            Ok(v) => v,
            Err(e) => {
                let _ = write_line(&writer, &error_json(format!("bad json: {e}")));
                continue;
            }
        };
        match request.get("cmd").and_then(Json::as_str) {
            Some("submit") => {
                let response = handle_submit(&request, dispatcher, &writer);
                if write_line(&writer, &response).is_err() {
                    return;
                }
            }
            Some("cancel") => {
                let Some(job) = request.get("job").and_then(Json::as_u64) else {
                    let _ = write_line(&writer, &error_json("cancel needs a \"job\" id"));
                    continue;
                };
                let cancelled = dispatcher.cancel(job);
                let ack = Json::Obj(vec![
                    ("type".into(), Json::str("cancel_ack")),
                    ("job".into(), Json::u64(job)),
                    ("cancelled".into(), Json::Bool(cancelled)),
                ]);
                if write_line(&writer, &ack).is_err() {
                    return;
                }
            }
            Some("metrics") => {
                let snapshot = Registry::global().snapshot();
                if write_line(&writer, &metrics_to_json(&snapshot)).is_err() {
                    return;
                }
            }
            Some("workers") => {
                let workers = dispatcher
                    .workers()
                    .into_iter()
                    .map(|w| {
                        Json::Obj(vec![
                            ("addr".into(), Json::Str(w.addr)),
                            ("alive".into(), Json::Bool(w.alive)),
                            ("outstanding".into(), Json::u64(w.outstanding as u64)),
                        ])
                    })
                    .collect();
                let response = Json::Obj(vec![
                    ("type".into(), Json::str("workers")),
                    ("workers".into(), Json::Arr(workers)),
                ]);
                if write_line(&writer, &response).is_err() {
                    return;
                }
            }
            Some("ping") => {
                let pong = Json::Obj(vec![("type".into(), Json::str("pong"))]);
                if write_line(&writer, &pong).is_err() {
                    return;
                }
            }
            Some(unsupported @ ("cache_stats" | "series")) => {
                let _ = write_line(
                    &writer,
                    &error_json(format!(
                        "the dispatcher has no {unsupported}; ask a worker directly"
                    )),
                );
            }
            Some("shutdown") => {
                let bye = Json::Obj(vec![("type".into(), Json::str("shutting_down"))]);
                let _ = write_line(&writer, &bye);
                shutdown.shutdown();
                return;
            }
            other => {
                let _ = write_line(&writer, &error_json(format!("unknown cmd {other:?}")));
            }
        }
    }
}

fn handle_submit(request: &Json, dispatcher: &Dispatcher, writer: &Arc<Mutex<TcpStream>>) -> Json {
    let Some(spec_json) = request.get("spec") else {
        return error_json("submit needs a \"spec\" member");
    };
    let spec = match JobSpec::from_json(spec_json) {
        Ok(spec) => spec,
        Err(e) => return error_json(e.to_string()),
    };
    match dispatcher.submit(&spec) {
        Ok(handle) => {
            let job = handle.id;
            let cells = handle.cells;
            let writer = Arc::clone(writer);
            // One forwarder per job keeps per-job event order on the
            // wire; the shared writer lock serializes whole lines.
            std::thread::spawn(move || {
                while let Some(event) = handle.next_event() {
                    if write_line(&writer, &event).is_err() {
                        return; // client gone; the dispatcher keeps the
                                // job (its cells still fill the store)
                    }
                }
            });
            Json::Obj(vec![
                ("type".into(), Json::str("submitted")),
                ("job".into(), Json::u64(job)),
                ("cells".into(), Json::u64(cells as u64)),
            ])
        }
        Err(e) => error_json(e),
    }
}
