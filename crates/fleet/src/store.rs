//! Whole-result memoization: a versioned on-disk store of finished
//! cell payloads, keyed by the canonical content hash of the cell's
//! spec (which embeds the seed).
//!
//! Determinism is the load-bearing property: identical `(cell spec,
//! seed)` inputs are proven to produce identical results, so a stored
//! payload can be served for repeat traffic without touching a worker
//! and still be bit-identical to a fresh run. The dispatcher checks the
//! store before dispatch and populates it on every cell completion.
//!
//! On-disk format, one file per cell (`cell-{key:016x}.res`, all
//! integers little-endian):
//!
//! ```text
//! magic b"SDRS" | version u32 | key u64 | len u64 | payload[len]
//! ```
//!
//! Decode is guarded like the trace cache: wrong magic/version/key,
//! a `len` that does not exactly match the remaining bytes (truncated
//! *or* trailing), or a payload that is not valid JSON all fall
//! through to a miss — a corrupt file costs a re-simulation, never a
//! wrong answer. Writes are atomic (temp + rename) so concurrent
//! dispatchers sharing a store dir never observe a half-written file.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use secddr_service::Json;
use secddr_telemetry::{Counter, Histogram, Registry};

/// File magic for result-store cells ("SecDDR Result Store").
pub const MAGIC: &[u8; 4] = b"SDRS";
/// Format version; bump on any layout change.
pub const VERSION: u32 = 1;

/// Encodes a cell payload for `key` into the on-disk image.
#[must_use]
pub fn encode_cell(key: u64, payload: &str) -> Vec<u8> {
    let bytes = payload.as_bytes();
    let mut out = Vec::with_capacity(24 + bytes.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Decodes an on-disk image back to the payload string, verifying it
/// was written for `key`. Any mismatch (magic, version, key, length
/// not exactly the remaining bytes, non-UTF-8, non-JSON payload)
/// returns `None` — the caller treats it as a miss.
#[must_use]
pub fn decode_cell(key: u64, bytes: &[u8]) -> Option<String> {
    let header = bytes.get(..24)?;
    if &header[..4] != MAGIC {
        return None;
    }
    let mut word4 = [0u8; 4];
    word4.copy_from_slice(&header[4..8]);
    if u32::from_le_bytes(word4) != VERSION {
        return None;
    }
    let mut word = [0u8; 8];
    word.copy_from_slice(&header[8..16]);
    if u64::from_le_bytes(word) != key {
        return None;
    }
    word.copy_from_slice(&header[16..24]);
    let len = usize::try_from(u64::from_le_bytes(word)).ok()?;
    let rest = bytes.get(24..)?;
    if rest.len() != len {
        return None; // truncated or trailing bytes — reject both
    }
    let text = std::str::from_utf8(rest).ok()?;
    Json::parse(text).ok()?;
    Some(text.to_string())
}

/// Lists the `(key, payload)` pairs stored in `dir`, skipping files
/// that fail the decode guards. For `secddr-fleetctl store`.
///
/// # Errors
///
/// Propagates directory-read errors (a missing dir yields an empty
/// list).
pub fn scan(dir: &Path) -> std::io::Result<Vec<(u64, String)>> {
    let mut cells = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(cells),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(hex) = name
            .strip_prefix("cell-")
            .and_then(|rest| rest.strip_suffix(".res"))
        else {
            continue;
        };
        let Ok(key) = u64::from_str_radix(hex, 16) else {
            continue;
        };
        if let Ok(bytes) = std::fs::read(&path) {
            if let Some(payload) = decode_cell(key, &bytes) {
                cells.push((key, payload));
            }
        }
    }
    cells.sort_by_key(|(key, _)| *key);
    Ok(cells)
}

/// The memoization store: an in-memory map over an optional on-disk
/// tier. With no dir, results persist only for the dispatcher's
/// lifetime; with a dir, repeat traffic survives restarts and is
/// shared by any dispatcher pointed at the same path.
#[derive(Debug)]
pub struct ResultStore {
    dir: Option<PathBuf>,
    memory: HashMap<u64, String>,
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    serve_us: Histogram,
    fill_us: Histogram,
}

impl ResultStore {
    /// Opens the store, creating `dir` if given.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: Option<PathBuf>) -> std::io::Result<Self> {
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
        }
        let registry = Registry::global();
        Ok(Self {
            dir,
            memory: HashMap::new(),
            hits: registry.counter("fleet.result_cache.hits"),
            misses: registry.counter("fleet.result_cache.misses"),
            inserts: registry.counter("fleet.result_cache.inserts"),
            serve_us: registry.histogram("fleet.result_cache.serve_us"),
            fill_us: registry.histogram("fleet.result_cache.fill_us"),
        })
    }

    fn path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("cell-{key:016x}.res")))
    }

    /// Looks up a finished cell payload, memory tier first, then disk.
    /// Counts a hit or miss and records serve latency on hits.
    pub fn lookup(&mut self, key: u64) -> Option<String> {
        let start = Instant::now();
        if let Some(payload) = self.memory.get(&key) {
            let payload = payload.clone();
            self.hits.inc();
            self.record_elapsed(&start, Serve);
            return Some(payload);
        }
        if let Some(path) = self.path(key) {
            if let Ok(bytes) = std::fs::read(&path) {
                if let Some(payload) = decode_cell(key, &bytes) {
                    self.memory.insert(key, payload.clone());
                    self.hits.inc();
                    self.record_elapsed(&start, Serve);
                    return Some(payload);
                }
            }
        }
        self.misses.inc();
        None
    }

    /// Stores a finished cell payload under `key` (memory always; disk
    /// when a dir was given, atomically via temp + rename). Counts an
    /// insert and records fill latency. Disk failures degrade to
    /// memory-only — memoization is an optimization, never a
    /// correctness dependency.
    pub fn insert(&mut self, key: u64, payload: &str) {
        let start = Instant::now();
        self.memory.insert(key, payload.to_string());
        if let Some(path) = self.path(key) {
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            if std::fs::write(&tmp, encode_cell(key, payload)).is_ok()
                && std::fs::rename(&tmp, &path).is_err()
            {
                let _ = std::fs::remove_file(&tmp);
            }
        }
        self.inserts.inc();
        self.record_elapsed(&start, Fill);
    }

    fn record_elapsed(&self, start: &Instant, which: Lat) {
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        match which {
            Lat::Serve => self.serve_us.record(micros),
            Lat::Fill => self.fill_us.record(micros),
        }
    }
}

use Lat::{Fill, Serve};

#[derive(Clone, Copy)]
enum Lat {
    Serve,
    Fill,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("secddr-store-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const PAYLOAD: &str = r#"{"benchmark":"mcf","aggregate_ipc":1.5}"#;

    #[test]
    fn roundtrip_survives_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let mut store = ResultStore::open(Some(dir.clone())).unwrap();
            store.insert(7, PAYLOAD);
            assert_eq!(store.lookup(7).as_deref(), Some(PAYLOAD));
        }
        let mut store = ResultStore::open(Some(dir.clone())).unwrap();
        assert_eq!(
            store.lookup(7).as_deref(),
            Some(PAYLOAD),
            "disk tier survives"
        );
        assert_eq!(store.lookup(8), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_only_store_works_without_a_dir() {
        let mut store = ResultStore::open(None).unwrap();
        assert_eq!(store.lookup(1), None);
        store.insert(1, PAYLOAD);
        assert_eq!(store.lookup(1).as_deref(), Some(PAYLOAD));
    }

    #[test]
    fn wrong_magic_version_or_key_is_a_miss() {
        let image = encode_cell(7, PAYLOAD);
        assert!(decode_cell(7, &image).is_some());

        let mut bad = image.clone();
        bad[0] ^= 0xFF;
        assert!(decode_cell(7, &bad).is_none(), "magic");

        let mut bad = image.clone();
        bad[4] = 99;
        assert!(decode_cell(7, &bad).is_none(), "version");

        assert!(decode_cell(8, &image).is_none(), "key re-verify");
    }

    #[test]
    fn truncated_and_trailing_images_are_misses() {
        let image = encode_cell(7, PAYLOAD);
        assert!(
            decode_cell(7, &image[..image.len() - 1]).is_none(),
            "truncated"
        );
        let mut trailing = image.clone();
        trailing.push(0);
        assert!(decode_cell(7, &trailing).is_none(), "trailing");
        assert!(decode_cell(7, &image[..10]).is_none(), "short header");
        assert!(decode_cell(7, &[]).is_none(), "empty");
    }

    #[test]
    fn non_json_payload_is_a_miss() {
        let mut image = Vec::new();
        image.extend_from_slice(MAGIC);
        image.extend_from_slice(&VERSION.to_le_bytes());
        image.extend_from_slice(&7u64.to_le_bytes());
        image.extend_from_slice(&4u64.to_le_bytes());
        image.extend_from_slice(b"!!!!");
        assert!(decode_cell(7, &image).is_none());
    }

    #[test]
    fn huge_len_field_cannot_panic() {
        let mut image = Vec::new();
        image.extend_from_slice(MAGIC);
        image.extend_from_slice(&VERSION.to_le_bytes());
        image.extend_from_slice(&7u64.to_le_bytes());
        image.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_cell(7, &image).is_none());
    }

    #[test]
    fn corrupt_disk_file_falls_through_to_miss() {
        let dir = temp_dir("corrupt");
        let mut store = ResultStore::open(Some(dir.clone())).unwrap();
        store.insert(7, PAYLOAD);
        // Corrupt the file on disk, then reopen (fresh memory tier).
        let path = dir.join(format!("cell-{:016x}.res", 7u64));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = ResultStore::open(Some(dir.clone())).unwrap();
        assert_eq!(store.lookup(7), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_lists_valid_cells_and_skips_junk() {
        let dir = temp_dir("scan");
        let mut store = ResultStore::open(Some(dir.clone())).unwrap();
        store.insert(3, PAYLOAD);
        store.insert(1, PAYLOAD);
        std::fs::write(dir.join("cell-00000000000000ff.res"), b"junk").unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"junk").unwrap();
        let cells = scan(&dir).unwrap();
        assert_eq!(
            cells.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![1, 3]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
