//! Multi-worker dispatcher: fans jobs out to N `secddr-serve` worker
//! processes, cell by cell, with durable logging and whole-result
//! memoization.
//!
//! The dispatcher decomposes each accepted [`JobSpec`] into its
//! benchmark×config cells ([`JobSpec::cell_specs`]), logs the spec to
//! the write-ahead [`JobLog`] *before* dispatching anything, then
//! places cells on the least-loaded alive worker (per-worker
//! outstanding-cell accounting, capped by
//! [`DispatcherConfig::max_outstanding`]). Finished cell payloads are
//! stored in the [`ResultStore`] keyed by the cell spec's canonical
//! content hash, so identical resubmissions — and identical cells
//! inside *different* sweeps — are served without touching a worker.
//!
//! Requeue-on-death is sound because the simulator is deterministic: a
//! cell re-run on another worker is proven to produce the bit-identical
//! payload, so a worker crash mid-cell costs latency, never
//! correctness. Worker death is detected three ways — reader EOF,
//! write failure on dispatch, and periodic ping health checks — and
//! every in-flight cell of a dead worker goes back to the front of the
//! pending queue.
//!
//! All state lives on a single scheduler thread fed by an mpsc channel
//! (per-worker reader threads, a health-tick thread, and API calls all
//! send [`Msg`]s), so there are no locks around job state and event
//! ordering per job is trivially the service's ordering: queued →
//! started → cell (in index order) → finished/cancelled/failed.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use secddr_service::{JobSpec, Json};
use secddr_telemetry::{Counter, Gauge, Registry};

use crate::joblog::{JobLog, Terminal};
use crate::store::ResultStore;

/// Configuration for [`Dispatcher::start`].
#[derive(Debug, Clone)]
pub struct DispatcherConfig {
    /// Worker addresses (`host:port` of running `secddr-serve`s).
    pub workers: Vec<String>,
    /// Write-ahead log directory; `None` disables durability.
    pub log_dir: Option<PathBuf>,
    /// Result-store directory; `None` keeps memoization memory-only.
    pub store_dir: Option<PathBuf>,
    /// Max cells in flight per worker (least-loaded placement cap).
    pub max_outstanding: usize,
    /// Interval between ping health checks.
    pub health_interval: Duration,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        Self {
            workers: Vec::new(),
            log_dir: None,
            store_dir: None,
            max_outstanding: 4,
            health_interval: Duration::from_secs(2),
        }
    }
}

/// One worker's externally-visible state, as [`Dispatcher::workers`]
/// reports it.
#[derive(Debug, Clone)]
pub struct WorkerStatus {
    /// The address the dispatcher connected (or failed to connect) to.
    pub addr: String,
    /// Whether the link is currently up.
    pub alive: bool,
    /// Cells currently in flight on this worker.
    pub outstanding: usize,
}

/// A submitted job's handle: its id, cell count, and event stream.
///
/// Events are the same line-protocol objects a `secddr-serve` client
/// sees (`queued`, `started`, `cell`, `finished`/`cancelled`/`failed`),
/// with this dispatcher's job id. The channel closes after the
/// terminal event.
#[derive(Debug)]
pub struct FleetJobHandle {
    /// Dispatcher-assigned job id.
    pub id: u64,
    /// Number of benchmark×config cells in the job.
    pub cells: usize,
    events: mpsc::Receiver<Json>,
}

impl FleetJobHandle {
    /// Blocks for the next event; `None` once the stream has closed
    /// (i.e. after the terminal event has been delivered).
    #[must_use]
    pub fn next_event(&self) -> Option<Json> {
        self.events.recv().ok()
    }

    /// Collects every remaining event through the terminal one.
    #[must_use]
    pub fn wait(self) -> Vec<Json> {
        self.events.iter().collect()
    }
}

enum Msg {
    Submit {
        spec: JobSpec,
        events: Option<mpsc::Sender<Json>>,
        from_log: bool,
        reply: Option<mpsc::Sender<Result<(u64, usize), String>>>,
    },
    Cancel {
        job: u64,
        reply: mpsc::Sender<bool>,
    },
    FromWorker {
        worker: usize,
        line: String,
    },
    WorkerGone {
        worker: usize,
    },
    HealthTick,
    Drain {
        reply: mpsc::Sender<()>,
    },
    Status {
        reply: mpsc::Sender<Vec<WorkerStatus>>,
    },
    Sever {
        worker: usize,
    },
    Stop,
}

enum CellState {
    Pending,
    Inflight(usize),
    Done(Json),
}

struct Cell {
    spec: JobSpec,
    key: u64,
    state: CellState,
}

struct Job {
    hash: u64,
    total: usize,
    cells: Vec<Cell>,
    events: Option<mpsc::Sender<Json>>,
    /// Cells emitted so far — events go out strictly in index order.
    next_emit: usize,
    terminal: bool,
}

struct Worker {
    addr: String,
    writer: Option<Arc<Mutex<TcpStream>>>,
    outstanding: usize,
    /// Cells submitted but not yet acked. The worker handles requests
    /// sequentially per connection, so acks arrive in submission order
    /// and FIFO matching is exact.
    awaiting_ack: VecDeque<(u64, usize)>,
    /// Worker-side job id → (dispatcher job, cell index).
    wjobs: HashMap<u64, (u64, usize)>,
}

struct Metrics {
    jobs_submitted: Counter,
    jobs_replayed: Counter,
    jobs_completed: Counter,
    jobs_failed: Counter,
    jobs_cancelled: Counter,
    cells_dispatched: Counter,
    cells_requeued: Counter,
    worker_deaths: Counter,
    workers_alive: Gauge,
}

impl Metrics {
    fn new() -> Self {
        let r = Registry::global();
        Self {
            jobs_submitted: r.counter("fleet.jobs.submitted"),
            jobs_replayed: r.counter("fleet.jobs.replayed"),
            jobs_completed: r.counter("fleet.jobs.completed"),
            jobs_failed: r.counter("fleet.jobs.failed"),
            jobs_cancelled: r.counter("fleet.jobs.cancelled"),
            cells_dispatched: r.counter("fleet.cells.dispatched"),
            cells_requeued: r.counter("fleet.cells.requeued"),
            worker_deaths: r.counter("fleet.worker.deaths"),
            workers_alive: r.gauge("fleet.workers.alive"),
        }
    }
}

struct Core {
    log: Option<JobLog>,
    store: ResultStore,
    workers: Vec<Worker>,
    jobs: HashMap<u64, Job>,
    next_job: u64,
    /// Cells waiting for a worker slot, FIFO (requeues go to the
    /// front so interrupted work finishes first).
    pending: VecDeque<(u64, usize)>,
    /// Jobs accepted but not yet terminal.
    active: usize,
    drain_waiters: Vec<mpsc::Sender<()>>,
    max_outstanding: usize,
    metrics: Metrics,
}

impl Core {
    fn alive_count(&self) -> u64 {
        self.workers.iter().filter(|w| w.writer.is_some()).count() as u64
    }

    fn write_to_worker(&self, idx: usize, json: &Json) -> std::io::Result<()> {
        let Some(writer) = &self.workers[idx].writer else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "worker link is down",
            ));
        };
        let writer = Arc::clone(writer);
        let mut line = json.to_string();
        line.push('\n');
        let mut stream = writer
            .lock()
            .map_err(|_| std::io::Error::other("worker writer poisoned"))?;
        (*stream).write_all(line.as_bytes())
    }

    fn emit(&mut self, job_id: u64, event: Json) {
        if let Some(job) = self.jobs.get_mut(&job_id) {
            if let Some(events) = &job.events {
                if events.send(event).is_err() {
                    job.events = None; // listener went away; keep running
                }
            }
        }
    }

    fn log_terminal(&mut self, hash: u64, outcome: Terminal) {
        if let Some(log) = &mut self.log {
            // A failed terminal write costs a redundant (deterministic,
            // store-served) replay on restart — not worth failing the
            // job over.
            let _ = log.append_terminal(hash, outcome);
        }
    }

    fn job_done(&mut self) {
        self.active = self.active.saturating_sub(1);
        if self.active == 0 {
            for waiter in self.drain_waiters.drain(..) {
                let _ = waiter.send(());
            }
        }
    }

    fn submit(
        &mut self,
        spec: JobSpec,
        events: Option<mpsc::Sender<Json>>,
        from_log: bool,
        reply: Option<mpsc::Sender<Result<(u64, usize), String>>>,
    ) {
        let cell_list = match spec.cell_specs() {
            Ok(cells) => cells,
            Err(e) => {
                if let Some(reply) = reply {
                    let _ = reply.send(Err(e.to_string()));
                }
                return;
            }
        };
        let hash = spec.content_hash();
        if from_log {
            self.metrics.jobs_replayed.inc();
        } else {
            if let Some(log) = &mut self.log {
                if let Err(e) = log.append_submitted(hash, &spec) {
                    if let Some(reply) = reply {
                        let _ = reply.send(Err(format!("job log write failed: {e}")));
                    }
                    return;
                }
            }
            self.metrics.jobs_submitted.inc();
        }
        let id = self.next_job;
        self.next_job += 1;
        let total = cell_list.len();
        if let Some(reply) = reply {
            let _ = reply.send(Ok((id, total)));
        }

        let mut cells = Vec::with_capacity(total);
        let mut pending_cells = Vec::new();
        for (index, cell_spec) in cell_list.into_iter().enumerate() {
            let key = cell_spec.content_hash();
            let state = match self.store.lookup(key).and_then(|p| Json::parse(&p).ok()) {
                Some(payload) => CellState::Done(payload),
                None => {
                    pending_cells.push(index);
                    CellState::Pending
                }
            };
            cells.push(Cell {
                spec: cell_spec,
                key,
                state,
            });
        }
        self.jobs.insert(
            id,
            Job {
                hash,
                total,
                cells,
                events,
                next_emit: 0,
                terminal: false,
            },
        );
        self.active += 1;
        self.emit(
            id,
            Json::Obj(vec![
                ("type".into(), Json::str("queued")),
                ("job".into(), Json::u64(id)),
                ("cells".into(), Json::u64(total as u64)),
            ]),
        );
        self.emit(
            id,
            Json::Obj(vec![
                ("type".into(), Json::str("started")),
                ("job".into(), Json::u64(id)),
            ]),
        );
        for index in pending_cells {
            self.pending.push_back((id, index));
        }
        self.try_emit(id); // fully-cached jobs finish synchronously
        self.pump();
    }

    /// Places pending cells on the least-loaded alive workers until
    /// either the queue or the capacity runs out.
    fn pump(&mut self) {
        loop {
            if self.pending.is_empty() {
                return;
            }
            let Some(widx) = self
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.writer.is_some() && w.outstanding < self.max_outstanding)
                .min_by_key(|(_, w)| w.outstanding)
                .map(|(i, _)| i)
            else {
                return;
            };
            let Some((job_id, cell_idx)) = self.pending.pop_front() else {
                return;
            };
            let Some(spec_json) = self.jobs.get(&job_id).and_then(|job| {
                (!job.terminal && matches!(job.cells[cell_idx].state, CellState::Pending))
                    .then(|| job.cells[cell_idx].spec.to_json())
            }) else {
                continue; // stale entry (job terminal or cell no longer pending)
            };
            let line = Json::Obj(vec![
                ("cmd".into(), Json::str("submit")),
                ("spec".into(), spec_json),
            ]);
            if self.write_to_worker(widx, &line).is_ok() {
                if let Some(job) = self.jobs.get_mut(&job_id) {
                    job.cells[cell_idx].state = CellState::Inflight(widx);
                }
                let worker = &mut self.workers[widx];
                worker.outstanding += 1;
                worker.awaiting_ack.push_back((job_id, cell_idx));
                self.metrics.cells_dispatched.inc();
            } else {
                self.pending.push_front((job_id, cell_idx));
                self.worker_gone(widx);
            }
        }
    }

    /// Emits completed cells in index order; when all cells are out,
    /// folds the merged summary and finishes the job.
    fn try_emit(&mut self, job_id: u64) {
        loop {
            let Some(job) = self.jobs.get_mut(&job_id) else {
                return;
            };
            if job.terminal {
                return;
            }
            if job.next_emit < job.total {
                let index = job.next_emit;
                let CellState::Done(payload) = &job.cells[index].state else {
                    return; // next cell not done yet — stay ordered
                };
                let Json::Obj(body) = payload.clone() else {
                    return;
                };
                let mut members = vec![
                    ("type".into(), Json::str("cell")),
                    ("job".into(), Json::u64(job_id)),
                    ("index".into(), Json::u64(index as u64)),
                    ("total".into(), Json::u64(job.total as u64)),
                ];
                members.extend(body);
                job.next_emit += 1;
                self.emit(job_id, Json::Obj(members));
                continue;
            }
            // All cells emitted: fold the job-level summary exactly the
            // way SimResult::merge does (instructions sum, cycles max,
            // llc misses sum, ipc recomputed) so the finished event is
            // bit-identical to a single-service run.
            let mut instructions = 0u64;
            let mut cycles = 0u64;
            let mut llc_misses = 0u64;
            for cell in &job.cells {
                let CellState::Done(payload) = &cell.state else {
                    return;
                };
                let merged = payload.get("merged");
                let field = |name: &str| {
                    merged
                        .and_then(|m| m.get(name))
                        .and_then(Json::as_u64)
                        .unwrap_or(0)
                };
                instructions += field("instructions");
                cycles = cycles.max(field("cycles"));
                llc_misses += field("llc_misses");
            }
            let ipc = if cycles == 0 {
                0.0
            } else {
                instructions as f64 / cycles as f64
            };
            let total = job.total;
            let hash = job.hash;
            job.terminal = true;
            self.emit(
                job_id,
                Json::Obj(vec![
                    ("type".into(), Json::str("finished")),
                    ("job".into(), Json::u64(job_id)),
                    ("cells".into(), Json::u64(total as u64)),
                    (
                        "merged".into(),
                        Json::Obj(vec![
                            ("instructions".into(), Json::u64(instructions)),
                            ("cycles".into(), Json::u64(cycles)),
                            ("ipc".into(), Json::f64(ipc)),
                            ("llc_misses".into(), Json::u64(llc_misses)),
                        ]),
                    ),
                ]),
            );
            if let Some(job) = self.jobs.get_mut(&job_id) {
                job.events = None; // close the stream after the terminal
            }
            self.log_terminal(hash, Terminal::Finished);
            self.metrics.jobs_completed.inc();
            self.job_done();
            return;
        }
    }

    fn fail_job(&mut self, job_id: u64, error: &str) {
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return;
        };
        if job.terminal {
            return;
        }
        job.terminal = true;
        let hash = job.hash;
        self.emit(
            job_id,
            Json::Obj(vec![
                ("type".into(), Json::str("failed")),
                ("job".into(), Json::u64(job_id)),
                ("error".into(), Json::str(error.to_string())),
            ]),
        );
        if let Some(job) = self.jobs.get_mut(&job_id) {
            job.events = None;
        }
        self.log_terminal(hash, Terminal::Failed);
        self.metrics.jobs_failed.inc();
        self.cancel_inflight(job_id);
        self.job_done();
    }

    fn cancel(&mut self, job_id: u64) -> bool {
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return false;
        };
        if job.terminal {
            return false;
        }
        job.terminal = true;
        let hash = job.hash;
        let completed = job.next_emit;
        self.emit(
            job_id,
            Json::Obj(vec![
                ("type".into(), Json::str("cancelled")),
                ("job".into(), Json::u64(job_id)),
                ("completed".into(), Json::u64(completed as u64)),
            ]),
        );
        if let Some(job) = self.jobs.get_mut(&job_id) {
            job.events = None;
        }
        self.log_terminal(hash, Terminal::Cancelled);
        self.metrics.jobs_cancelled.inc();
        self.cancel_inflight(job_id);
        self.job_done();
        true
    }

    /// Best-effort worker-side cancellation of a terminal job's
    /// in-flight cells. The wjob mappings stay until the workers send
    /// their own terminals (which release the outstanding slots).
    fn cancel_inflight(&mut self, job_id: u64) {
        for widx in 0..self.workers.len() {
            let wjobs: Vec<u64> = self.workers[widx]
                .wjobs
                .iter()
                .filter(|(_, &(job, _))| job == job_id)
                .map(|(&wjob, _)| wjob)
                .collect();
            for wjob in wjobs {
                let line = Json::Obj(vec![
                    ("cmd".into(), Json::str("cancel")),
                    ("job".into(), Json::u64(wjob)),
                ]);
                let _ = self.write_to_worker(widx, &line);
            }
        }
    }

    fn on_worker_line(&mut self, idx: usize, line: &str) {
        let Ok(json) = Json::parse(line.trim()) else {
            return;
        };
        match json.get("type").and_then(Json::as_str).unwrap_or("") {
            "submitted" => {
                let Some(wjob) = json.get("job").and_then(Json::as_u64) else {
                    return;
                };
                if let Some(assignment) = self.workers[idx].awaiting_ack.pop_front() {
                    self.workers[idx].wjobs.insert(wjob, assignment);
                }
            }
            "error" => {
                // A submit was rejected before getting a job id; acks
                // are FIFO, so the front of the queue is the casualty.
                if let Some((job_id, _)) = self.workers[idx].awaiting_ack.pop_front() {
                    self.workers[idx].outstanding = self.workers[idx].outstanding.saturating_sub(1);
                    let message = json
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("worker rejected cell")
                        .to_string();
                    self.fail_job(job_id, &message);
                    self.pump();
                }
            }
            "cell" => {
                let Some(wjob) = json.get("job").and_then(Json::as_u64) else {
                    return;
                };
                let Some(&(job_id, cell_idx)) = self.workers[idx].wjobs.get(&wjob) else {
                    return;
                };
                // The stored payload is the cell body minus the
                // envelope (type/job/index/total), so it re-emits
                // bit-identically under any job id and cell index.
                let Json::Obj(members) = json else {
                    return;
                };
                let payload = Json::Obj(
                    members
                        .into_iter()
                        .filter(|(key, _)| {
                            !matches!(key.as_str(), "type" | "job" | "index" | "total")
                        })
                        .collect(),
                );
                let key = match self.jobs.get(&job_id) {
                    Some(job) if matches!(job.cells[cell_idx].state, CellState::Inflight(_)) => {
                        job.cells[cell_idx].key
                    }
                    _ => return,
                };
                self.store.insert(key, &payload.to_string());
                if let Some(job) = self.jobs.get_mut(&job_id) {
                    job.cells[cell_idx].state = CellState::Done(payload);
                }
                self.try_emit(job_id);
            }
            terminal @ ("finished" | "cancelled" | "failed") => {
                let Some(wjob) = json.get("job").and_then(Json::as_u64) else {
                    return;
                };
                let Some((job_id, cell_idx)) = self.workers[idx].wjobs.remove(&wjob) else {
                    return;
                };
                self.workers[idx].outstanding = self.workers[idx].outstanding.saturating_sub(1);
                match terminal {
                    "failed" => {
                        let message = json
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("worker cell failed")
                            .to_string();
                        self.fail_job(job_id, &message);
                    }
                    "cancelled" => {
                        // The worker dropped a cell we still need
                        // (e.g. its own shutdown path) — requeue it.
                        if let Some(job) = self.jobs.get_mut(&job_id) {
                            if !job.terminal
                                && matches!(job.cells[cell_idx].state, CellState::Inflight(_))
                            {
                                job.cells[cell_idx].state = CellState::Pending;
                                self.pending.push_front((job_id, cell_idx));
                                self.metrics.cells_requeued.inc();
                            }
                        }
                    }
                    _ => {} // finished: the cell payload already landed
                }
                self.pump();
            }
            _ => {} // pong / queued / started / metrics_frame
        }
    }

    /// Tears down a worker link and requeues its in-flight cells.
    /// Callers follow up with [`Core::pump`].
    fn worker_gone(&mut self, idx: usize) {
        let worker = &mut self.workers[idx];
        if worker.writer.is_none() && worker.awaiting_ack.is_empty() && worker.wjobs.is_empty() {
            return; // already torn down (EOF after write failure, etc.)
        }
        if let Some(writer) = worker.writer.take() {
            if let Ok(stream) = writer.lock() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        let mut lost: Vec<(u64, usize)> = worker.awaiting_ack.drain(..).collect();
        lost.extend(worker.wjobs.drain().map(|(_, assignment)| assignment));
        worker.outstanding = 0;
        self.metrics.worker_deaths.inc();
        self.metrics.workers_alive.set(self.alive_count());
        let mut requeued = 0u64;
        for (job_id, cell_idx) in lost {
            if let Some(job) = self.jobs.get_mut(&job_id) {
                if !job.terminal
                    && matches!(job.cells[cell_idx].state, CellState::Inflight(w) if w == idx)
                {
                    job.cells[cell_idx].state = CellState::Pending;
                    self.pending.push_front((job_id, cell_idx));
                    requeued += 1;
                }
            }
        }
        self.metrics.cells_requeued.add(requeued);
    }

    fn health_tick(&mut self) {
        let ping = Json::Obj(vec![("cmd".into(), Json::str("ping"))]);
        for idx in 0..self.workers.len() {
            if self.workers[idx].writer.is_some() && self.write_to_worker(idx, &ping).is_err() {
                self.worker_gone(idx);
            }
        }
        self.pump();
    }

    fn drain(&mut self, reply: mpsc::Sender<()>) {
        if self.active == 0 {
            let _ = reply.send(());
        } else {
            self.drain_waiters.push(reply);
        }
    }

    fn status(&self) -> Vec<WorkerStatus> {
        self.workers
            .iter()
            .map(|w| WorkerStatus {
                addr: w.addr.clone(),
                alive: w.writer.is_some(),
                outstanding: w.outstanding,
            })
            .collect()
    }
}

fn scheduler_loop(mut core: Core, rx: mpsc::Receiver<Msg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Stop => break,
            Msg::Submit {
                spec,
                events,
                from_log,
                reply,
            } => core.submit(spec, events, from_log, reply),
            Msg::Cancel { job, reply } => {
                let cancelled = core.cancel(job);
                let _ = reply.send(cancelled);
            }
            Msg::FromWorker { worker, line } => core.on_worker_line(worker, &line),
            Msg::WorkerGone { worker } | Msg::Sever { worker } => {
                core.worker_gone(worker);
                core.pump();
            }
            Msg::HealthTick => core.health_tick(),
            Msg::Drain { reply } => core.drain(reply),
            Msg::Status { reply } => {
                let _ = reply.send(core.status());
            }
        }
    }
}

fn reader_loop(idx: usize, stream: TcpStream, tx: mpsc::Sender<Msg>) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                let _ = tx.send(Msg::WorkerGone { worker: idx });
                return;
            }
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                if tx
                    .send(Msg::FromWorker {
                        worker: idx,
                        line: line.clone(),
                    })
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// The dispatcher: owns the scheduler thread, the worker links, the
/// job log, and the result store. Dropping it stops the scheduler and
/// closes every worker link (without shutting the workers down).
#[derive(Debug)]
pub struct Dispatcher {
    tx: mpsc::Sender<Msg>,
    scheduler: Option<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
    sockets: Vec<TcpStream>,
    replayed: usize,
}

impl Dispatcher {
    /// Starts the dispatcher: opens the log and store, connects the
    /// workers, and replays any incomplete jobs from the log
    /// (deduped by content hash, original submission order).
    ///
    /// Unreachable workers are recorded as dead, not errors — they
    /// count toward `fleet.worker.deaths` and the dispatcher runs
    /// with whatever is left.
    ///
    /// # Errors
    ///
    /// Propagates log/store open failures.
    pub fn start(config: DispatcherConfig) -> std::io::Result<Self> {
        let log = match &config.log_dir {
            Some(dir) => Some(JobLog::open(dir)?),
            None => None,
        };
        let store = ResultStore::open(config.store_dir.clone())?;
        let replay: Vec<JobSpec> = log
            .as_ref()
            .map(|l| l.incomplete().iter().map(|(_, s)| s.clone()).collect())
            .unwrap_or_default();

        let (tx, rx) = mpsc::channel();
        let metrics = Metrics::new();
        let mut workers = Vec::with_capacity(config.workers.len());
        let mut readers = Vec::new();
        let mut sockets = Vec::new();
        for (idx, addr) in config.workers.iter().enumerate() {
            let link = TcpStream::connect(addr)
                .and_then(|stream| Ok((stream.try_clone()?, stream.try_clone()?, stream)));
            match link {
                Ok((reader_stream, shutdown_clone, stream)) => {
                    let tx = tx.clone();
                    readers.push(std::thread::spawn(move || {
                        reader_loop(idx, reader_stream, tx);
                    }));
                    sockets.push(shutdown_clone);
                    workers.push(Worker {
                        addr: addr.clone(),
                        writer: Some(Arc::new(Mutex::new(stream))),
                        outstanding: 0,
                        awaiting_ack: VecDeque::new(),
                        wjobs: HashMap::new(),
                    });
                }
                Err(_) => {
                    metrics.worker_deaths.inc();
                    workers.push(Worker {
                        addr: addr.clone(),
                        writer: None,
                        outstanding: 0,
                        awaiting_ack: VecDeque::new(),
                        wjobs: HashMap::new(),
                    });
                }
            }
        }
        metrics
            .workers_alive
            .set(workers.iter().filter(|w| w.writer.is_some()).count() as u64);

        let core = Core {
            log,
            store,
            workers,
            jobs: HashMap::new(),
            next_job: 1,
            pending: VecDeque::new(),
            active: 0,
            drain_waiters: Vec::new(),
            max_outstanding: config.max_outstanding.max(1),
            metrics,
        };
        let scheduler = std::thread::spawn(move || scheduler_loop(core, rx));

        let health_tx = tx.clone();
        let interval = config.health_interval;
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if health_tx.send(Msg::HealthTick).is_err() {
                return; // scheduler is gone; so are we
            }
        });

        let replayed = replay.len();
        for spec in replay {
            let _ = tx.send(Msg::Submit {
                spec,
                events: None,
                from_log: true,
                reply: None,
            });
        }
        Ok(Self {
            tx,
            scheduler: Some(scheduler),
            readers,
            sockets,
            replayed,
        })
    }

    /// Jobs replayed from the log at startup.
    #[must_use]
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Submits a spec; returns a handle streaming its events.
    ///
    /// # Errors
    ///
    /// Invalid specs (unknown benchmark/suite, no configs) and job-log
    /// write failures are returned as messages; either way nothing was
    /// dispatched.
    pub fn submit(&self, spec: &JobSpec) -> Result<FleetJobHandle, String> {
        let (events_tx, events_rx) = mpsc::channel();
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(Msg::Submit {
                spec: spec.clone(),
                events: Some(events_tx),
                from_log: false,
                reply: Some(reply_tx),
            })
            .map_err(|_| "dispatcher stopped".to_string())?;
        let (id, cells) = reply_rx
            .recv()
            .map_err(|_| "dispatcher stopped".to_string())??;
        Ok(FleetJobHandle {
            id,
            cells,
            events: events_rx,
        })
    }

    /// Cancels a job; `true` if it was active.
    pub fn cancel(&self, job: u64) -> bool {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self
            .tx
            .send(Msg::Cancel {
                job,
                reply: reply_tx,
            })
            .is_err()
        {
            return false;
        }
        reply_rx.recv().unwrap_or(false)
    }

    /// Blocks until no job is active. Note: with zero alive workers
    /// and uncached pending cells this waits until a worker returns.
    pub fn drain(&self) {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.tx.send(Msg::Drain { reply: reply_tx }).is_ok() {
            let _ = reply_rx.recv();
        }
    }

    /// Current per-worker status, in configuration order.
    #[must_use]
    pub fn workers(&self) -> Vec<WorkerStatus> {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.tx.send(Msg::Status { reply: reply_tx }).is_err() {
            return Vec::new();
        }
        reply_rx.recv().unwrap_or_default()
    }

    /// Forcibly tears down a worker link as if it had died (test and
    /// operations hook; the worker process itself is untouched).
    pub fn sever_worker(&self, worker: usize) {
        let _ = self.tx.send(Msg::Sever { worker });
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Stop);
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        for socket in self.sockets.drain(..) {
            let _ = socket.shutdown(std::net::Shutdown::Both);
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store;

    fn event_type(event: &Json) -> String {
        event
            .get("type")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string()
    }

    #[test]
    fn zero_worker_cancel_reports_zero_completed_cells() {
        let dispatcher = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let mut spec = JobSpec::bench("mcf");
        spec.instructions = 1_000;
        let handle = dispatcher.submit(&spec).unwrap();
        let id = handle.id;
        assert!(dispatcher.cancel(id));
        let events = handle.wait();
        let types: Vec<String> = events.iter().map(event_type).collect();
        assert_eq!(types, vec!["queued", "started", "cancelled"]);
        assert_eq!(
            events[2].get("completed").and_then(Json::as_u64),
            Some(0),
            "no cell ran"
        );
        assert!(!dispatcher.cancel(id), "already terminal");
    }

    #[test]
    fn invalid_spec_is_rejected_without_dispatch() {
        let dispatcher = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let spec = JobSpec::bench("no-such-benchmark");
        assert!(dispatcher.submit(&spec).is_err());
    }

    #[test]
    fn fully_cached_job_finishes_with_zero_workers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "secddr-dispatch-cached-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let mut spec = JobSpec::bench("mcf");
        spec.instructions = 1_000;
        let key = spec.cell_specs().unwrap()[0].content_hash();
        let payload = Json::Obj(vec![
            ("benchmark".into(), Json::str("mcf")),
            ("config".into(), Json::str("baseline")),
            ("aggregate_ipc".into(), Json::f64(1.25)),
            ("per_core".into(), Json::Arr(vec![])),
            (
                "merged".into(),
                Json::Obj(vec![
                    ("instructions".into(), Json::u64(1_000)),
                    ("cycles".into(), Json::u64(800)),
                    ("ipc".into(), Json::f64(1.25)),
                    ("llc_misses".into(), Json::u64(42)),
                ]),
            ),
        ])
        .to_string();
        {
            let mut store = store::ResultStore::open(Some(dir.clone())).unwrap();
            store.insert(key, &payload);
        }
        let dispatcher = Dispatcher::start(DispatcherConfig {
            store_dir: Some(dir.clone()),
            ..DispatcherConfig::default()
        })
        .unwrap();
        let handle = dispatcher.submit(&spec).unwrap();
        assert_eq!(handle.cells, 1);
        let events = handle.wait();
        let types: Vec<String> = events.iter().map(event_type).collect();
        assert_eq!(types, vec!["queued", "started", "cell", "finished"]);
        let merged = events[3].get("merged").unwrap();
        assert_eq!(
            merged.get("instructions").and_then(Json::as_u64),
            Some(1_000)
        );
        assert_eq!(merged.get("cycles").and_then(Json::as_u64), Some(800));
        assert_eq!(merged.get("llc_misses").and_then(Json::as_u64), Some(42));
        dispatcher.drain(); // returns immediately: nothing active
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreachable_worker_is_reported_dead() {
        let dispatcher = Dispatcher::start(DispatcherConfig {
            // Port 1 is never listening on loopback in the test env.
            workers: vec!["127.0.0.1:1".into()],
            ..DispatcherConfig::default()
        })
        .unwrap();
        let status = dispatcher.workers();
        assert_eq!(status.len(), 1);
        assert!(!status[0].alive);
        assert_eq!(status[0].outstanding, 0);
    }
}
