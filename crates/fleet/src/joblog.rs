//! Write-ahead job log: durable record of accepted specs and their
//! terminal outcomes.
//!
//! Every accepted [`JobSpec`] is appended (as its canonical JSON, the
//! lossless codec from `secddr_service::json`) *before* any cell is
//! dispatched; when the job reaches a terminal state a matching
//! terminal record is appended. A dispatcher restarted against the same
//! log dir therefore sees exactly the set of jobs that were accepted
//! but never finished, and — because the simulator is deterministic —
//! replaying them can never produce a different answer than the run the
//! crash interrupted.
//!
//! On-disk format (all integers little-endian):
//!
//! ```text
//! magic  b"SDJL" | version u32
//! record*: kind u8 | hash u64 | len u64 | payload[len]
//! ```
//!
//! `kind` 1 = submitted (payload = canonical spec JSON), 2/3/4 =
//! finished/cancelled/failed (payload empty). `hash` is
//! [`JobSpec::content_hash`], the dedupe key (priority excluded).
//!
//! Decoding is guarded like the trace cache (PR 5): wrong magic or
//! version ignores the whole file; a truncated, corrupt, or
//! unknown-kind tail stops the scan and keeps the valid prefix — a
//! half-written record from a crash mid-append loses at most that one
//! record, never the log. All offset arithmetic is checked, so a
//! crafted `len` of `u64::MAX` cannot panic or allocate.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use secddr_service::{JobSpec, Json};

/// File magic for the job log ("SecDDR Job Log").
pub const MAGIC: &[u8; 4] = b"SDJL";
/// Format version; bump on any layout change.
pub const VERSION: u32 = 1;
/// Terminal records appended since the last compaction before the log
/// is rewritten to just its incomplete-job prefix.
const COMPACT_EVERY: u64 = 64;

const KIND_SUBMITTED: u8 = 1;
const KIND_FINISHED: u8 = 2;
const KIND_CANCELLED: u8 = 3;
const KIND_FAILED: u8 = 4;

/// How a logged job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// All cells ran (or were served from the result store).
    Finished,
    /// Cancelled by a client before completion.
    Cancelled,
    /// Rejected or errored server-side.
    Failed,
}

impl Terminal {
    fn kind(self) -> u8 {
        match self {
            Terminal::Finished => KIND_FINISHED,
            Terminal::Cancelled => KIND_CANCELLED,
            Terminal::Failed => KIND_FAILED,
        }
    }
}

/// One decoded log record, as [`decode_log`] returns them.
#[derive(Debug, Clone)]
pub enum LogRecord {
    /// A job was accepted; `hash` is its [`JobSpec::content_hash`].
    Submitted {
        /// Canonical content hash (the dedupe key).
        hash: u64,
        /// The accepted spec, decoded from its logged canonical JSON.
        spec: JobSpec,
    },
    /// A previously-submitted job reached a terminal state.
    Terminal {
        /// Canonical content hash of the finished job.
        hash: u64,
        /// Which terminal state it reached.
        outcome: Terminal,
    },
}

/// Decodes a raw log image into its valid record prefix.
///
/// Wrong magic/version yields no records; the scan stops (keeping
/// everything before it) at the first truncated, corrupt, or
/// unknown-kind record.
#[must_use]
pub fn decode_log(bytes: &[u8]) -> Vec<LogRecord> {
    let mut records = Vec::new();
    let Some(header) = bytes.get(..8) else {
        return records;
    };
    if &header[..4] != MAGIC
        || u32::from_le_bytes([header[4], header[5], header[6], header[7]]) != VERSION
    {
        return records;
    }
    let mut at = 8usize;
    while let Some(&kind) = bytes.get(at) {
        let Some(body_start) = at.checked_add(17) else {
            break;
        };
        let Some(head) = bytes.get(at + 1..body_start) else {
            break;
        };
        let mut word = [0u8; 8];
        word.copy_from_slice(&head[..8]);
        let hash = u64::from_le_bytes(word);
        word.copy_from_slice(&head[8..]);
        let Ok(len) = usize::try_from(u64::from_le_bytes(word)) else {
            break;
        };
        let Some(end) = body_start.checked_add(len) else {
            break;
        };
        let Some(payload) = bytes.get(body_start..end) else {
            break;
        };
        match kind {
            KIND_SUBMITTED => {
                let Ok(text) = std::str::from_utf8(payload) else {
                    break;
                };
                let Ok(json) = Json::parse(text) else {
                    break;
                };
                let Ok(spec) = JobSpec::from_json(&json) else {
                    break;
                };
                records.push(LogRecord::Submitted { hash, spec });
            }
            KIND_FINISHED | KIND_CANCELLED | KIND_FAILED => {
                if !payload.is_empty() {
                    break;
                }
                let outcome = match kind {
                    KIND_FINISHED => Terminal::Finished,
                    KIND_CANCELLED => Terminal::Cancelled,
                    _ => Terminal::Failed,
                };
                records.push(LogRecord::Terminal { hash, outcome });
            }
            _ => break,
        }
        at = end;
    }
    records
}

/// Reads and decodes `dir`'s log file (missing file → no records).
///
/// # Errors
///
/// Propagates I/O errors other than the file not existing.
pub fn read_log(dir: &Path) -> std::io::Result<Vec<LogRecord>> {
    match std::fs::read(dir.join("jobs.log")) {
        Ok(bytes) => Ok(decode_log(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

fn encode_record(out: &mut Vec<u8>, kind: u8, hash: u64, payload: &[u8]) {
    out.push(kind);
    out.extend_from_slice(&hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

fn encode_incomplete(incomplete: &[(u64, JobSpec)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    for (hash, spec) in incomplete {
        encode_record(
            &mut out,
            KIND_SUBMITTED,
            *hash,
            spec.to_json().to_string().as_bytes(),
        );
    }
    out
}

/// The durable write-ahead log, opened against a directory.
///
/// [`JobLog::open`] replays the existing file, computes the incomplete
/// set (submitted minus terminal, deduped by content hash, insertion
/// order preserved), compacts the file down to exactly that set, and
/// keeps an append handle for new records.
#[derive(Debug)]
pub struct JobLog {
    dir: PathBuf,
    file: File,
    /// Submitted-but-not-terminal jobs, insertion order, unique by hash.
    live: Vec<(u64, JobSpec)>,
    /// The incomplete set as of open — what a restart must replay.
    replay: Vec<(u64, JobSpec)>,
    terminals_since_compact: u64,
}

impl JobLog {
    /// Opens (creating if needed) the log in `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O errors.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut live: Vec<(u64, JobSpec)> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for record in read_log(&dir)? {
            match record {
                LogRecord::Submitted { hash, spec } => {
                    if seen.insert(hash) {
                        live.push((hash, spec));
                    }
                }
                LogRecord::Terminal { hash, .. } => {
                    seen.remove(&hash);
                    live.retain(|(h, _)| *h != hash);
                }
            }
        }
        let file = Self::rewrite(&dir, &live)?;
        Ok(Self {
            dir,
            file,
            replay: live.clone(),
            live,
            terminals_since_compact: 0,
        })
    }

    /// Atomically rewrites the log to just `incomplete` and returns a
    /// fresh append handle.
    fn rewrite(dir: &Path, incomplete: &[(u64, JobSpec)]) -> std::io::Result<File> {
        let path = dir.join("jobs.log");
        let tmp = dir.join(format!("jobs.log.tmp.{}", std::process::id()));
        std::fs::write(&tmp, encode_incomplete(incomplete))?;
        std::fs::rename(&tmp, &path)?;
        OpenOptions::new().append(true).open(&path)
    }

    /// The incomplete jobs found at open time — the replay set. Each
    /// entry is `(content_hash, spec)` in original submission order,
    /// already deduped by hash.
    #[must_use]
    pub fn incomplete(&self) -> &[(u64, JobSpec)] {
        &self.replay
    }

    /// Directory this log lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn append(&mut self, kind: u8, hash: u64, payload: &[u8]) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(17 + payload.len());
        encode_record(&mut buf, kind, hash, payload);
        self.file.write_all(&buf)?;
        self.file.flush()?;
        // Best-effort durability: the log stays correct without it (a
        // lost tail is just a shorter valid prefix), so sync failures
        // on exotic filesystems don't fail the submit.
        let _ = self.file.sync_data();
        Ok(())
    }

    /// Logs an accepted spec (call *before* dispatching any cell).
    ///
    /// # Errors
    ///
    /// Propagates write failures — a spec that cannot be logged must
    /// not be accepted, or durability is silently lost.
    pub fn append_submitted(&mut self, hash: u64, spec: &JobSpec) -> std::io::Result<()> {
        self.append(KIND_SUBMITTED, hash, spec.to_json().to_string().as_bytes())?;
        if !self.live.iter().any(|(h, _)| *h == hash) {
            self.live.push((hash, spec.clone()));
        }
        Ok(())
    }

    /// Logs a job's terminal state, retiring it from the replay set.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append_terminal(&mut self, hash: u64, outcome: Terminal) -> std::io::Result<()> {
        self.append(outcome.kind(), hash, &[])?;
        self.live.retain(|(h, _)| *h != hash);
        self.terminals_since_compact += 1;
        if self.terminals_since_compact >= COMPACT_EVERY {
            self.file = Self::rewrite(&self.dir, &self.live)?;
            self.terminals_since_compact = 0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("secddr-joblog-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(bench: &str, seed: u64) -> JobSpec {
        let mut s = JobSpec::bench(bench);
        s.seed = seed;
        s
    }

    #[test]
    fn open_replays_submitted_minus_terminal() {
        let dir = temp_dir("replay");
        {
            let mut log = JobLog::open(&dir).unwrap();
            let a = spec("mcf", 1);
            let b = spec("lbm", 2);
            let c = spec("povray", 3);
            log.append_submitted(a.content_hash(), &a).unwrap();
            log.append_submitted(b.content_hash(), &b).unwrap();
            log.append_submitted(c.content_hash(), &c).unwrap();
            log.append_terminal(b.content_hash(), Terminal::Finished)
                .unwrap();
        }
        let log = JobLog::open(&dir).unwrap();
        let hashes: Vec<u64> = log.incomplete().iter().map(|(h, _)| *h).collect();
        assert_eq!(
            hashes,
            vec![
                spec("mcf", 1).content_hash(),
                spec("povray", 3).content_hash()
            ],
            "terminal jobs retire; order is submission order"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_submissions_dedupe_by_content_hash() {
        let dir = temp_dir("dedupe");
        {
            let mut log = JobLog::open(&dir).unwrap();
            let a = spec("mcf", 1);
            let mut a_hi = a.clone();
            a_hi.priority = 5; // priority is excluded from the hash
            log.append_submitted(a.content_hash(), &a).unwrap();
            log.append_submitted(a_hi.content_hash(), &a_hi).unwrap();
        }
        let log = JobLog::open(&dir).unwrap();
        assert_eq!(log.incomplete().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_compacts_terminal_records_away() {
        let dir = temp_dir("compact");
        {
            let mut log = JobLog::open(&dir).unwrap();
            let a = spec("mcf", 1);
            log.append_submitted(a.content_hash(), &a).unwrap();
            log.append_terminal(a.content_hash(), Terminal::Finished)
                .unwrap();
        }
        {
            let log = JobLog::open(&dir).unwrap();
            assert!(log.incomplete().is_empty());
        }
        // After the second open the file holds only the header.
        let bytes = std::fs::read(dir.join("jobs.log")).unwrap();
        assert_eq!(bytes.len(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_keeps_valid_prefix() {
        let dir = temp_dir("truncated");
        {
            let mut log = JobLog::open(&dir).unwrap();
            let a = spec("mcf", 1);
            let b = spec("lbm", 2);
            log.append_submitted(a.content_hash(), &a).unwrap();
            log.append_submitted(b.content_hash(), &b).unwrap();
        }
        let path = dir.join("jobs.log");
        let bytes = std::fs::read(&path).unwrap();
        // Chop into the middle of the second record.
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let log = JobLog::open(&dir).unwrap();
        assert_eq!(log.incomplete().len(), 1);
        assert_eq!(log.incomplete()[0].0, spec("mcf", 1).content_hash());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_or_version_ignores_whole_file() {
        let dir = temp_dir("magic");
        {
            let mut log = JobLog::open(&dir).unwrap();
            let a = spec("mcf", 1);
            log.append_submitted(a.content_hash(), &a).unwrap();
        }
        let path = dir.join("jobs.log");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(JobLog::open(&dir).unwrap().incomplete().is_empty());

        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF; // restore magic
        bytes[4] = 99; // break version
        std::fs::write(&path, &bytes).unwrap();
        assert!(JobLog::open(&dir).unwrap().incomplete().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn huge_len_field_cannot_panic_or_allocate() {
        let dir = temp_dir("hugelen");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(KIND_SUBMITTED);
        bytes.extend_from_slice(&42u64.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(dir.join("jobs.log"), &bytes).unwrap();
        assert!(JobLog::open(&dir).unwrap().incomplete().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_kind_stops_the_scan() {
        let dir = temp_dir("unknown");
        let a = spec("mcf", 1);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        encode_record(
            &mut bytes,
            KIND_SUBMITTED,
            a.content_hash(),
            a.to_json().to_string().as_bytes(),
        );
        encode_record(&mut bytes, 200, 7, b"junk");
        let b = spec("lbm", 2);
        encode_record(
            &mut bytes,
            KIND_SUBMITTED,
            b.content_hash(),
            b.to_json().to_string().as_bytes(),
        );
        std::fs::write(dir.join("jobs.log"), &bytes).unwrap();
        let log = JobLog::open(&dir).unwrap();
        assert_eq!(log.incomplete().len(), 1, "prefix before the junk survives");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn terminal_with_payload_is_rejected() {
        let dir = temp_dir("termpay");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        encode_record(&mut bytes, KIND_FINISHED, 1, b"extra");
        std::fs::write(dir.join("jobs.log"), &bytes).unwrap();
        assert!(decode_log(&std::fs::read(dir.join("jobs.log")).unwrap()).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
