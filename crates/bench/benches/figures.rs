//! `cargo bench` target that regenerates every table and figure of the
//! paper at a reduced instruction budget (override with `SECDDR_INSTRS`).
//!
//! For publication-quality runs use the individual binaries with a larger
//! budget, e.g.:
//! `SECDDR_INSTRS=2000000 cargo run --release -p secddr-bench --bin fig6_performance`

fn main() {
    let budget = std::env::var("SECDDR_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000);
    let seed = secddr_bench::seed();

    secddr_bench::tab1_config::run();
    secddr_bench::tab2_power::run();
    secddr_bench::sec3_security::run();
    secddr_bench::fig6_performance::run_with_budget(budget, seed);
    secddr_bench::fig7_metadata_cache::run_with_budget(budget, seed);
    secddr_bench::fig8_arity::run_with_budget(budget, seed);
    secddr_bench::fig10_invisimem_xts::run_with_budget(budget, seed);
    secddr_bench::fig12_invisimem_ctr::run_with_budget(budget, seed);
}
