//! Microbenchmarks for the substrates: crypto primitive throughput (the
//! units SecDDR budgets on the ECC chip) and DRAM/protocol simulation
//! speed.
//!
//! Self-timed (the build environment has no crates.io access for
//! criterion): each benchmark is calibrated to ~50 ms of wall clock and
//! reports ns/iter plus MB/s where a byte count applies. Run with
//! `cargo bench -p secddr-bench --bench microbench`.

use std::time::{Duration, Instant};

use dimm_model::{EncryptionMode, SecureChannel};
use dram_sim::{DramConfig, DramSystem, MemRequest, ReqKind};
use secddr_crypto::aes::Aes128;
use secddr_crypto::crc::{Ewcrc, WriteAddress};
use secddr_crypto::mac::Cmac;
use secddr_crypto::otp::TransactionCounter;
use secddr_crypto::sha256::Sha256;
use secddr_crypto::xts::XtsAes128;

/// Times `f` for ~50 ms after a short warmup and prints one result row.
fn bench(name: &str, bytes: Option<u64>, mut f: impl FnMut()) {
    // Warmup + calibration: find an iteration count that runs >= 5 ms.
    let mut calib = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..calib {
            f();
        }
        if start.elapsed() >= Duration::from_millis(5) || calib > 1 << 30 {
            break;
        }
        calib *= 8;
    }
    let target = Duration::from_millis(50);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < target {
        for _ in 0..calib {
            f();
        }
        iters += calib;
    }
    let elapsed = start.elapsed();
    let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    match bytes {
        Some(b) => {
            let mbps = b as f64 * iters as f64 / elapsed.as_secs_f64() / 1e6;
            println!("{name:<32} {ns_per_iter:>12.1} ns/iter {mbps:>10.1} MB/s");
        }
        None => println!("{name:<32} {ns_per_iter:>12.1} ns/iter"),
    }
}

fn crypto_benches() {
    println!("\n== crypto ==");
    let aes = Aes128::new(&[7; 16]);
    let block = [0xA5u8; 16];
    bench("aes128_encrypt_block", Some(16), || {
        std::hint::black_box(aes.encrypt_block(std::hint::black_box(&block)));
    });

    let cmac = Cmac::new(Aes128::new(&[9; 16]));
    let line = [0x3Cu8; 64];
    bench("cmac_line_mac", Some(64), || {
        std::hint::black_box(cmac.line_mac(std::hint::black_box(&line), 0x40));
    });

    let xts = XtsAes128::new(&[1; 16], &[2; 16]);
    let mut data = [0u8; 64];
    bench("xts_encrypt_line", Some(64), || {
        xts.encrypt_units(0x40, &mut data);
        std::hint::black_box(data[0]);
    });

    let kt = Aes128::new(&[3; 16]);
    let mut ct = TransactionCounter::new(0);
    bench("emac_pad_derivation", Some(8), || {
        std::hint::black_box(ct.read_pad(&kt));
    });

    let addr = WriteAddress {
        rank: 0,
        bank_group: 1,
        bank: 2,
        row: 77,
        column: 5,
    };
    bench("ewcrc_generate", Some(9), || {
        std::hint::black_box(Ewcrc::generate(std::hint::black_box(&line[..8]), &addr));
    });

    bench("sha256_line", Some(64), || {
        std::hint::black_box(Sha256::digest(std::hint::black_box(&line)));
    });
}

fn dram_benches() {
    println!("\n== dram_sim ==");
    bench("stream_64_reads", None, || {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        for i in 0..64u64 {
            dram.enqueue(MemRequest::new(i, ReqKind::Read, i * 64, 0))
                .unwrap();
        }
        let mut done = 0;
        while done < 64 {
            done += dram.tick().len();
        }
        std::hint::black_box(dram.cycle());
    });
    bench("random_mixed_64", None, || {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut issued = 0u64;
        let mut done = 0;
        while done < 64 {
            if issued < 64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let kind = if x & 4 == 0 {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                if dram
                    .enqueue(MemRequest::new(issued, kind, (x % (1 << 34)) & !63, 0))
                    .is_ok()
                {
                    issued += 1;
                }
            }
            done += dram.tick().len();
        }
        std::hint::black_box(dram.cycle());
    });
}

fn protocol_benches() {
    println!("\n== secddr_protocol ==");
    let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 1);
    let data = [0x42u8; 64];
    let mut addr = 0u64;
    bench("secure_write_read_roundtrip", Some(64), || {
        addr = (addr + 64) % (1 << 20);
        ch.write(addr, &data);
        std::hint::black_box(ch.read(addr).expect("honest channel"));
    });
}

fn main() {
    crypto_benches();
    dram_benches();
    protocol_benches();
}
