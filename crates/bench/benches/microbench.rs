//! Criterion microbenchmarks for the substrates: crypto primitive
//! throughput (the units SecDDR budgets on the ECC chip) and DRAM/protocol
//! simulation speed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use dimm_model::{EncryptionMode, SecureChannel};
use dram_sim::{DramConfig, DramSystem, MemRequest, ReqKind};
use secddr_crypto::aes::Aes128;
use secddr_crypto::crc::{Ewcrc, WriteAddress};
use secddr_crypto::mac::Cmac;
use secddr_crypto::otp::TransactionCounter;
use secddr_crypto::sha256::Sha256;
use secddr_crypto::xts::XtsAes128;

fn crypto_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let aes = Aes128::new(&[7; 16]);
    let block = [0xA5u8; 16];
    g.throughput(Throughput::Bytes(16));
    g.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| std::hint::black_box(aes.encrypt_block(std::hint::black_box(&block))))
    });

    let cmac = Cmac::new(Aes128::new(&[9; 16]));
    let line = [0x3Cu8; 64];
    g.throughput(Throughput::Bytes(64));
    g.bench_function("cmac_line_mac", |b| {
        b.iter(|| std::hint::black_box(cmac.line_mac(std::hint::black_box(&line), 0x40)))
    });

    let xts = XtsAes128::new(&[1; 16], &[2; 16]);
    g.bench_function("xts_encrypt_line", |b| {
        let mut data = [0u8; 64];
        b.iter(|| {
            xts.encrypt_units(0x40, &mut data);
            std::hint::black_box(data[0])
        })
    });

    g.throughput(Throughput::Bytes(8));
    let kt = Aes128::new(&[3; 16]);
    g.bench_function("emac_pad_derivation", |b| {
        let mut ct = TransactionCounter::new(0);
        b.iter(|| std::hint::black_box(ct.read_pad(&kt)))
    });

    g.throughput(Throughput::Bytes(9));
    let addr = WriteAddress { rank: 0, bank_group: 1, bank: 2, row: 77, column: 5 };
    g.bench_function("ewcrc_generate", |b| {
        b.iter(|| std::hint::black_box(Ewcrc::generate(std::hint::black_box(&line[..8]), &addr)))
    });

    g.throughput(Throughput::Bytes(64));
    g.bench_function("sha256_line", |b| {
        b.iter(|| std::hint::black_box(Sha256::digest(std::hint::black_box(&line))))
    });
    g.finish();
}

fn dram_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_sim");
    g.bench_function("stream_64_reads", |b| {
        b.iter(|| {
            let mut dram = DramSystem::new(DramConfig::ddr4_3200());
            for i in 0..64u64 {
                dram.enqueue(MemRequest::new(i, ReqKind::Read, i * 64, 0)).unwrap();
            }
            let mut done = 0;
            while done < 64 {
                done += dram.tick().len();
            }
            std::hint::black_box(dram.cycle())
        })
    });
    g.bench_function("random_mixed_64", |b| {
        b.iter(|| {
            let mut dram = DramSystem::new(DramConfig::ddr4_3200());
            let mut x = 0x9E3779B97F4A7C15u64;
            let mut issued = 0u64;
            let mut done = 0;
            while done < 64 {
                if issued < 64 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let kind = if x & 4 == 0 { ReqKind::Write } else { ReqKind::Read };
                    if dram
                        .enqueue(MemRequest::new(issued, kind, x % (1 << 34) & !63, 0))
                        .is_ok()
                    {
                        issued += 1;
                    }
                }
                done += dram.tick().len();
            }
            std::hint::black_box(dram.cycle())
        })
    });
    g.finish();
}

fn protocol_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("secddr_protocol");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("secure_write_read_roundtrip", |b| {
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 1);
        let data = [0x42u8; 64];
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 64) % (1 << 20);
            ch.write(addr, &data);
            std::hint::black_box(ch.read(addr).expect("honest channel"))
        })
    });
    g.finish();
}

criterion_group!(benches, crypto_benches, dram_benches, protocol_benches);
criterion_main!(benches);
