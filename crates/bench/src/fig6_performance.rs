//! Figure 6: normalized performance (IPC) of the five main system
//! configurations across all 29 benchmarks, relative to the Intel-TDX-like
//! baseline.
//!
//! Paper's headline numbers this should reproduce in shape:
//! SecDDR+CTR ≈ +9.6% gmean over the 64-ary tree (within 3% of
//! encrypt-only CTR); SecDDR+XTS ≈ +18.8% over the tree, <1% from
//! encrypt-only XTS; pr/bc/sssp/omnetpp/xz gain most; lbm slightly slowed
//! by the eWCRC write bursts.

use secddr_core::config::SecurityConfig;
use secddr_core::system::RunParams;

use crate::runner::sweep;

/// Runs the Figure 6 sweep at the given instruction budget and prints the
/// table.
pub fn run_with_budget(instructions: u64, seed: u64) {
    let configs = [
        SecurityConfig::tree_64ary(),
        SecurityConfig::secddr_ctr(),
        SecurityConfig::encrypt_only_ctr(),
        SecurityConfig::secddr_xts(),
        SecurityConfig::encrypt_only_xts(),
    ];
    let s = sweep(&configs, RunParams { instructions, seed });
    s.print_normalized_table("Figure 6: Performance results (5 configurations)");

    // The paper's headline deltas.
    let (tree_all, tree_mem) = s.gmeans(0);
    let (sctr_all, sctr_mem) = s.gmeans(1);
    let (ectr_all, _) = s.gmeans(2);
    let (sxts_all, sxts_mem) = s.gmeans(3);
    let (exts_all, _) = s.gmeans(4);
    println!("\nHeadline comparisons (paper values in brackets):");
    println!(
        "  SecDDR+CTR vs 64-ary tree (all):     +{:.1}%   [paper: +9.6%]",
        (sctr_all / tree_all - 1.0) * 100.0
    );
    println!(
        "  SecDDR+CTR vs 64-ary tree (mem-int): +{:.1}%   [paper: +18.0%]",
        (sctr_mem / tree_mem - 1.0) * 100.0
    );
    println!(
        "  SecDDR+CTR vs Encrypt-only CTR:      {:+.1}%   [paper: within 3.0%]",
        (sctr_all / ectr_all - 1.0) * 100.0
    );
    println!(
        "  SecDDR+XTS vs 64-ary tree (all):     +{:.1}%   [paper: +18.8%]",
        (sxts_all / tree_all - 1.0) * 100.0
    );
    println!(
        "  SecDDR+XTS vs 64-ary tree (mem-int): +{:.1}%   [paper: +37.7%]",
        (sxts_mem / tree_mem - 1.0) * 100.0
    );
    println!(
        "  SecDDR+XTS vs Encrypt-only XTS:      {:+.1}%   [paper: within 1%]",
        (sxts_all / exts_all - 1.0) * 100.0
    );
    println!(
        "  SecDDR+XTS vs Encrypt-only CTR:      {:+.1}%   [paper: +5.4%]",
        (sxts_all / ectr_all - 1.0) * 100.0
    );
}

/// Runs with the environment-configured budget.
pub fn run() {
    run_with_budget(crate::instr_budget(), crate::seed());
}
