//! Kernel perf baseline: wall-clock of the Figure 6 smoke sweep under the
//! per-cycle reference vs the event-driven kernel, written to
//! `BENCH_kernel.json`.
//!
//! Three records are reported:
//!
//! * **fig6_smoke_sweep** — the full 29-benchmark × 6-configuration
//!   matrix `fig6_performance` runs, at a reduced smoke budget. This
//!   mixes bandwidth-saturated workloads (where the DDR4 channel issues a
//!   command every few cycles and an event-driven kernel can at best
//!   match lock-step simulation) with latency-bound ones.
//! * **latency_bound_runs** — the pointer-chase subset (mcf-style), where
//!   long quiet stalls dominate and idle-skipping pays directly.
//! * **dram_idle_gaps** — the bare DDR4 controller advanced across bursty
//!   traffic with long idle gaps, the kernel's strongest case.
//!
//! Every pass runs through the shared [`crate::runner::par_sweep`]
//! harness; result tables are asserted identical between the two advance
//! policies before any timing is reported, so each speedup is for
//! bit-identical simulation output.

use std::time::Instant;

use dram_sim::{DramConfig, DramSystem, MemRequest, ReqKind};
use secddr_core::config::SecurityConfig;
use secddr_core::engine::EngineOptions;
use secddr_core::system::RunParams;
use sim_kernel::Advance;

use crate::runner::{sweep_with_options, Sweep};

fn fig6_configs() -> [SecurityConfig; 5] {
    [
        SecurityConfig::tree_64ary(),
        SecurityConfig::secddr_ctr(),
        SecurityConfig::encrypt_only_ctr(),
        SecurityConfig::secddr_xts(),
        SecurityConfig::encrypt_only_xts(),
    ]
}

fn timed_sweep(params: RunParams, advance: Advance) -> (Sweep, f64) {
    let options = EngineOptions {
        advance,
        ..EngineOptions::default()
    };
    let start = Instant::now();
    let sweep = sweep_with_options(&fig6_configs(), params, options);
    (sweep, start.elapsed().as_secs_f64())
}

fn assert_sweeps_identical(fast: &Sweep, reference: &Sweep) {
    for (b, (f, r)) in fast
        .results
        .iter()
        .zip(reference.results.iter())
        .enumerate()
    {
        for (c, (fr, rr)) in f.iter().zip(r.iter()).enumerate() {
            assert_eq!(
                (fr.sim.clone(), fr.engine, fr.dram.clone()),
                (rr.sim.clone(), rr.engine, rr.dram.clone()),
                "event-driven kernel diverged on {}/{}",
                fast.benches[b].name(),
                fast.configs[c].label(),
            );
        }
    }
}

/// Bare-controller microbenchmark: bursty traffic with long idle gaps.
fn dram_idle_gap_secs(advance: Advance) -> f64 {
    let start = Instant::now();
    for rep in 0..20u64 {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        let mut id = 0u64;
        for burst in 0..8u64 {
            let target = burst * 20_000;
            let _ = dram.advance_to(target, advance);
            for i in 0..12u64 {
                let kind = if i % 3 == 0 {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let addr = (rep * 0x10_0000 + burst * 0x1_0000 + i * 0x940) & !63;
                dram.enqueue(MemRequest::new(id, kind, addr, dram.cycle()))
                    .unwrap();
                id += 1;
            }
        }
        let _ = dram.advance_to(200_000, advance);
    }
    start.elapsed().as_secs_f64()
}

fn record(name: &str, detail: &str, ref_secs: f64, fast_secs: f64) -> String {
    format!(
        "  {{\n    \"benchmark\": \"{name}\",\n    \
             \"detail\": \"{detail}\",\n    \
             \"per_cycle_seconds\": {ref_secs:.3},\n    \
             \"event_driven_seconds\": {fast_secs:.3},\n    \
             \"speedup\": {:.2}\n  }}",
        ref_secs / fast_secs,
    )
}

/// Runs all passes at the given budget and returns the JSON report.
///
/// # Panics
///
/// Panics if any pass pair disagrees on any simulated statistic — the
/// speedups are only meaningful for identical results.
pub fn report(instructions: u64, seed: u64) -> String {
    let params = RunParams { instructions, seed };
    // Warm the process-wide GAPBS graph (a OnceLock built on first use)
    // so neither timed pass absorbs its one-off construction cost.
    let _ = workloads::Benchmark::by_name("pr")
        .expect("pr exists")
        .generate(1_000, seed);

    // Two alternating passes per policy; the minimum of each is the least
    // contaminated by scheduler/frequency noise on a shared host.
    let (fast, fast_a) = timed_sweep(params, Advance::ToNextEvent);
    let (reference, ref_a) = timed_sweep(params, Advance::PerCycle);
    let (_, fast_b) = timed_sweep(params, Advance::ToNextEvent);
    let (_, ref_b) = timed_sweep(params, Advance::PerCycle);
    let (fast_secs, ref_secs) = (fast_a.min(fast_b), ref_a.min(ref_b));
    assert_sweeps_identical(&fast, &reference);

    // Latency-bound record: the pointer-chase benchmark, whose long quiet
    // stalls are what the idle-skip targets.
    let subset = "mcf";
    std::env::set_var("SECDDR_BENCH", subset);
    let (fast_lat, fast_lat_a) = timed_sweep(params, Advance::ToNextEvent);
    let (ref_lat, ref_lat_a) = timed_sweep(params, Advance::PerCycle);
    let (_, fast_lat_b) = timed_sweep(params, Advance::ToNextEvent);
    let (_, ref_lat_b) = timed_sweep(params, Advance::PerCycle);
    std::env::remove_var("SECDDR_BENCH");
    let (fast_lat_secs, ref_lat_secs) = (fast_lat_a.min(fast_lat_b), ref_lat_a.min(ref_lat_b));
    assert_sweeps_identical(&fast_lat, &ref_lat);

    let dram_fast =
        dram_idle_gap_secs(Advance::ToNextEvent).min(dram_idle_gap_secs(Advance::ToNextEvent));
    let dram_ref = dram_idle_gap_secs(Advance::PerCycle).min(dram_idle_gap_secs(Advance::PerCycle));

    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(16);
    format!(
        "{{\n  \"instructions_per_run\": {instructions},\n  \
           \"seed\": {seed},\n  \
           \"host_threads\": {threads},\n  \
           \"results_identical\": true,\n  \
           \"records\": [\n{},\n{},\n{}\n  ]\n}}\n",
        record(
            "fig6_smoke_sweep",
            &format!(
                "{} benchmarks x {} configs (mixed saturated + latency-bound)",
                fast.benches.len(),
                fast.configs.len() + 1
            ),
            ref_secs,
            fast_secs,
        ),
        record(
            "pointer_chase_runs",
            &format!("{subset} x {} configs", fast_lat.configs.len() + 1),
            ref_lat_secs,
            fast_lat_secs,
        ),
        record(
            "dram_idle_gaps",
            "bare DDR4 controller, bursty traffic over 200k-cycle windows",
            dram_ref,
            dram_fast,
        ),
    )
}

/// Runs the baseline and writes `BENCH_kernel.json` into the current
/// directory (the workspace root under `cargo run`).
pub fn run() {
    let instructions = std::env::var("SECDDR_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000);
    let json = report(instructions, crate::seed());
    print!("{json}");
    match std::fs::write("BENCH_kernel.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_kernel.json"),
        Err(e) => eprintln!("could not write BENCH_kernel.json: {e}"),
    }
}
