//! Kernel perf baseline: wall-clock of the Figure 6 smoke sweep under the
//! per-cycle reference vs the event-driven kernel, written to
//! `BENCH_kernel.json`.
//!
//! Four records are reported:
//!
//! * **fig6_smoke_sweep** — the full 29-benchmark × 6-configuration
//!   matrix `fig6_performance` runs, at a reduced smoke budget. This
//!   mixes bandwidth-saturated workloads (where the DDR4 channel issues a
//!   command every few cycles and an event-driven kernel can at best
//!   match lock-step simulation) with latency-bound ones.
//! * **pointer_chase_runs** — the pointer-chase subset (mcf-style), where
//!   long quiet stalls dominate and idle-skipping pays directly.
//! * **dram_idle_gaps** — the bare DDR4 controller advanced across bursty
//!   traffic with long idle gaps, the kernel's strongest case.
//! * **batched_ingestion** — `MemoryBackend::submit_batch` against one
//!   `submit` call per access on the bare engine, with identical
//!   statistics asserted before timing is reported.
//! * **shard_scaling_nN** (N = 1, 2, 4, 8) — the pointer-chase workload
//!   through `CpuSystem` over a `ShardedEngine` with N interleaved
//!   channels, per-cycle vs event-driven. Per-shard traffic thins as N
//!   grows, so per-shard idle windows *widen* and the event-driven
//!   speedup must not shrink under sharding. The N=1 sharded run is
//!   asserted bit-identical to the bare unsharded engine (reported as
//!   `sharded_n1_matches_unsharded`, gated in CI).
//! * **multicore_rate_nN** (N = 1, 2, 4, 8, 16) — the pointer-chase
//!   workload in rate mode: N cores sharing the LLC and a 4-channel
//!   `ShardedEngine` through `MultiCoreSystem`, per-cycle (every core
//!   steps every cycle) vs the event-driven awake-list scheduler. Each
//!   N's event-driven run is asserted bit-identical to its per-cycle
//!   reference, and the single-core `MultiCoreSystem` is asserted
//!   bit-identical to the bare `CpuSystem` over the same backend and
//!   trace (reported as `multicore_n1_matches_single`, gated in CI).
//!   These records also carry `per_cycle_core_steps` /
//!   `event_driven_core_steps` — the summed number of times any core was
//!   actually stepped, the scheduler-efficiency measure wall-clock
//!   speedups follow from.
//! * **multicore_bursty_nN** (N = 8, 16) — the same rate-mode harness on
//!   a *bursty* variant of the trace (64-op mcf chunks separated by
//!   2000-instruction compute blocks), so every channel sees real idle
//!   windows between bursts: the regime where block-advance should win
//!   biggest at high core counts (the ROADMAP's n8/n16 open item).
//!
//! Sharded and multicore records additionally report
//! `controller_decision_cycles` / `controller_busy_cycles` — the
//! channel-merged count of DRAM cycles the controllers actually
//! *executed* vs the busy cycles they covered (executed or
//! block-skipped). These are deterministic, so unlike seconds they are
//! immune to steal noise, and every saturated rate record asserts
//! decision < busy before timing is reported.
//!
//! Sharded and multicore records also carry a compact `series` block
//! summarising the sim-time windowed series recorded during the
//! event-driven run (epoch width, per-phase dominant decision causes,
//! aging onset epoch, channel imbalance). Series recording is enabled in
//! *all* timed runs of both policies so the overhead is symmetric, and
//! the per-epoch sums are asserted to reconcile exactly with the
//! aggregate telemetry before each record is built (`series_reconciles`,
//! gated in CI).
//!
//! Every record also carries `*_vs_pr1` ratios against the wall-clock
//! the PR 1 kernel recorded in its own `BENCH_kernel.json` (same
//! workload, same budget). Absolute seconds are host-dependent; the
//! within-run per-cycle/event-driven ratio is measured with mirrored
//! ABBA ordering so host drift cancels.
//!
//! Sweeps run through the shared [`crate::runner::par_sweep`] harness;
//! result tables are asserted identical between the two advance policies
//! before any timing is reported, so each speedup is for bit-identical
//! simulation output.

use std::sync::Arc;
use std::time::Instant;

use cpu_model::system::{AccessKind, BatchAccess, MemoryBackend, SimResult};
use cpu_model::{CpuConfig, CpuSystem, TraceOp};
use dram_sim::{ControllerTelemetry, DramConfig, DramStats, DramSystem, MemRequest, ReqKind};
use secddr_channels::{Interleave, ShardedEngine};
use secddr_core::config::SecurityConfig;
use secddr_core::engine::{EngineOptions, EngineStats, SecurityEngine};
use secddr_core::metadata::DATA_SPAN;
use secddr_core::system::{run_trace_with_options, RunParams};
use secddr_multicore::{CoreTrace, MultiCoreResult, MultiCoreSystem, WakeReasons};
use secddr_telemetry::{report as series_report, SeriesSnapshot, TelemetrySnapshot};
use sim_kernel::Advance;

use crate::runner::{sweep_with_options, Sweep};

/// Wall-clock seconds PR 1's kernel recorded for (per-cycle,
/// event-driven) per record, from the `BENCH_kernel.json` it committed.
/// `None` for records PR 1 did not measure.
const PR1_BASELINE: [(&str, Option<(f64, f64)>); 4] = [
    ("fig6_smoke_sweep", Some((2.960, 3.114))),
    ("pointer_chase_runs", Some((0.216, 0.141))),
    ("dram_idle_gaps", Some((0.052, 0.001))),
    ("batched_ingestion", None),
];

/// Instruction budget PR 1's baseline numbers were recorded at; the
/// `*_vs_pr1` ratios are only meaningful (and only emitted) when the
/// current run uses the same budget.
const PR1_BASELINE_INSTRUCTIONS: u64 = 40_000;

/// Baseline wall-clocks below this are at the artifact's rounding
/// granularity; a ratio against them would be quantization noise, so the
/// field is omitted instead.
const MIN_MEANINGFUL_BASELINE_SECS: f64 = 0.01;

/// Series epoch width (CPU cycles) for the sharded and multicore
/// records: scales with the instruction budget so epoch counts stay in
/// the dozens, floored so smoke budgets still roll several epochs.
fn series_width(instructions: u64) -> u64 {
    (instructions * 2).max(2_048)
}

fn fig6_configs() -> [SecurityConfig; 5] {
    [
        SecurityConfig::tree_64ary(),
        SecurityConfig::secddr_ctr(),
        SecurityConfig::encrypt_only_ctr(),
        SecurityConfig::secddr_xts(),
        SecurityConfig::encrypt_only_xts(),
    ]
}

fn timed_sweep(params: RunParams, advance: Advance) -> (Sweep, f64) {
    let options = EngineOptions {
        advance,
        ..EngineOptions::default()
    };
    let start = Instant::now();
    let sweep = sweep_with_options(&fig6_configs(), params, options);
    (sweep, start.elapsed().as_secs_f64())
}

fn assert_sweeps_identical(fast: &Sweep, reference: &Sweep) {
    for (b, (f, r)) in fast
        .results
        .iter()
        .zip(reference.results.iter())
        .enumerate()
    {
        for (c, (fr, rr)) in f.iter().zip(r.iter()).enumerate() {
            assert_eq!(
                (fr.sim.clone(), fr.engine, fr.dram.clone()),
                (rr.sim.clone(), rr.engine, rr.dram.clone()),
                "event-driven kernel diverged on {}/{}",
                fast.benches[b].name(),
                fast.configs[c].label(),
            );
        }
    }
}

/// Bare-controller microbenchmark: bursty traffic with long idle gaps.
fn dram_idle_gap_secs(advance: Advance) -> f64 {
    let start = Instant::now();
    for rep in 0..20u64 {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200());
        let mut id = 0u64;
        for burst in 0..8u64 {
            let target = burst * 20_000;
            let _ = dram.advance_to(target, advance);
            for i in 0..12u64 {
                let kind = if i % 3 == 0 {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let addr = (rep * 0x10_0000 + burst * 0x1_0000 + i * 0x940) & !63;
                dram.enqueue(MemRequest::new(id, kind, addr, dram.cycle()))
                    .unwrap();
                id += 1;
            }
        }
        let _ = dram.advance_to(200_000, advance);
    }
    start.elapsed().as_secs_f64()
}

/// Bare-engine ingestion microbenchmark: volleys of accesses fed either
/// through `submit_batch` or one `submit` per access, returning the
/// elapsed seconds and the final engine statistics (asserted identical
/// across modes by the caller).
fn ingestion_run(batched: bool) -> (f64, secddr_core::engine::EngineStats) {
    let start = Instant::now();
    let mut last_stats = None;
    for _rep in 0..6u64 {
        let mut engine = SecurityEngine::new(SecurityConfig::secddr_ctr(), 3200);
        let mut results = Vec::new();
        let mut batch = Vec::with_capacity(8);
        let mut now = 100u64;
        for volley in 0..4_000u64 {
            batch.clear();
            for i in 0..8u64 {
                let x = volley * 8 + i;
                batch.push(BatchAccess {
                    kind: if x % 4 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    addr: (x.wrapping_mul(0x9E37_79B9) << 6) & ((1 << 33) - 1),
                    is_prefetch: false,
                });
            }
            results.clear();
            if batched {
                engine.submit_batch(&batch, now, &mut results);
            } else {
                for b in &batch {
                    results.push(engine.submit(b.kind, b.addr, now, b.is_prefetch));
                }
            }
            now += 120;
            let _ = engine.tick(now);
        }
        last_stats = Some(engine.stats());
    }
    (
        start.elapsed().as_secs_f64(),
        last_stats.expect("at least one rep"),
    )
}

/// One `CpuSystem`-over-`ShardedEngine` run: simulated results (for the
/// identity asserts), the merged controller telemetry plus the recorded
/// sim-time series (both kept out of the compared tuple — the advance
/// policies disagree on telemetry by design), and the wall-clock
/// seconds of the run itself. Series recording is enabled in every run,
/// so both timing columns carry the same (near-zero) recording cost.
fn sharded_run(
    trace: &[TraceOp],
    shards: usize,
    advance: Advance,
    epoch_width: u64,
) -> (
    (SimResult, EngineStats, DramStats),
    (ControllerTelemetry, SeriesSnapshot),
    f64,
) {
    let options = EngineOptions {
        advance,
        ..EngineOptions::default()
    };
    let cpu_cfg = CpuConfig {
        advance,
        batch_submit: options.batched_ingestion,
        ..CpuConfig::default()
    };
    let start = Instant::now();
    let mut engine = ShardedEngine::with_options(
        SecurityConfig::secddr_ctr(),
        cpu_cfg.clock_mhz,
        Interleave::xor(shards),
        options,
    );
    engine.enable_series(epoch_width);
    let mut sys = CpuSystem::new(cpu_cfg, engine);
    let sim = sys.run(trace.iter().copied());
    let secs = start.elapsed().as_secs_f64();
    let series = sys
        .backend_mut()
        .series_snapshot()
        .expect("series recording was enabled");
    (
        (
            sim,
            sys.backend_mut().stats(),
            sys.backend_mut().dram_stats(),
        ),
        (sys.backend_mut().dram_telemetry(), series),
        secs,
    )
}

/// Shard-scaling records (N = 1, 2, 4, 8) on the pointer-chase workload,
/// ABBA-ordered per N. Returns the records and asserts along the way
/// that each N's event-driven run matches its per-cycle reference and
/// that the N=1 sharded run is bit-identical to the bare engine.
fn shard_scaling_records(params: RunParams) -> Vec<Record> {
    let bench = workloads::Benchmark::by_name("mcf").expect("mcf exists");
    let trace = bench.generate(params.instructions, params.seed);

    // Unsharded baseline for the N=1 identity gate (event-driven, the
    // same options sharded_run uses).
    let bare = run_trace_with_options(
        &bench,
        &trace,
        &SecurityConfig::secddr_ctr(),
        EngineOptions::default(),
    );

    let width = series_width(params.instructions);
    let mut records = Vec::new();
    for (n, name) in [
        (1usize, "shard_scaling_n1"),
        (2, "shard_scaling_n2"),
        (4, "shard_scaling_n4"),
        (8, "shard_scaling_n8"),
    ] {
        let (ref_res, _, ref_a) = sharded_run(&trace, n, Advance::PerCycle, width);
        let (fast_res, (fast_t, fast_series), fast_a) =
            sharded_run(&trace, n, Advance::ToNextEvent, width);
        let (_, _, fast_b) = sharded_run(&trace, n, Advance::ToNextEvent, width);
        let (_, _, ref_b) = sharded_run(&trace, n, Advance::PerCycle, width);
        assert_eq!(
            fast_res, ref_res,
            "N={n}: event-driven sharded run diverged from per-cycle"
        );
        if n == 1 {
            assert_eq!(fast_res.0, bare.sim, "sharded N=1 SimResult != unsharded");
            assert_eq!(
                fast_res.1, bare.engine,
                "sharded N=1 EngineStats != unsharded"
            );
            assert_eq!(fast_res.2, bare.dram, "sharded N=1 DramStats != unsharded");
        }
        assert_eq!(
            fast_t.causes.total(),
            fast_t.decision_cycles,
            "N={n}: decision causes must partition the executed cycles"
        );
        let mut aggregate = TelemetrySnapshot::default();
        fast_t.render_into(&mut aggregate);
        assert!(
            fast_series.reconciles_with(&aggregate),
            "N={n}: per-epoch series sums must reconcile with the aggregate"
        );
        records.push(Record {
            name,
            detail: format!(
                "mcf x secddr_ctr through CpuSystem over ShardedEngine \
                 (xor interleave, {n} channel{})",
                if n == 1 { "" } else { "s" }
            ),
            ref_secs: ref_a.min(ref_b),
            fast_secs: fast_a.min(fast_b),
            core_steps: None,
            controller_cycles: Some((fast_t.decision_cycles, fast_t.busy_cycles)),
            telemetry: Some((fast_t, None)),
            series: Some(fast_series),
        });
    }
    records
}

/// The shared-backend shard count every multicore record runs over.
const MULTICORE_CHANNELS: usize = 4;

/// Scheduler telemetry of one rate-mode run, kept out of the compared
/// observables (the advance policies disagree on these by design: the
/// per-cycle reference executes every controller cycle and never wakes
/// a core).
struct MulticoreTelemetry {
    /// Summed core-step count.
    steps: u64,
    /// Channel-merged controller telemetry.
    controller: ControllerTelemetry,
    /// Wake-reason attribution (all zero under per-cycle).
    wake: WakeReasons,
    /// Recorded sim-time series, scheduler and channel layers merged.
    series: SeriesSnapshot,
    /// The matching aggregate snapshot (scheduler + controller rows),
    /// built in the same call so the reconciliation assert compares
    /// like with like.
    aggregate: TelemetrySnapshot,
}

/// One rate-mode run: N cores over one shared 4-channel `ShardedEngine`,
/// returning the simulated observables (for the identity asserts), the
/// run's scheduler telemetry, and the wall-clock seconds of the run
/// itself.
fn multicore_run(
    trace: &Arc<Vec<TraceOp>>,
    cores: usize,
    advance: Advance,
    epoch_width: u64,
) -> (
    (MultiCoreResult, EngineStats, DramStats),
    MulticoreTelemetry,
    f64,
) {
    let options = EngineOptions {
        advance,
        ..EngineOptions::default()
    };
    let cpu_cfg = CpuConfig {
        advance,
        batch_submit: options.batched_ingestion,
        ..CpuConfig::default()
    };
    let start = Instant::now();
    let mut engine = ShardedEngine::with_options(
        SecurityConfig::secddr_ctr(),
        cpu_cfg.clock_mhz,
        Interleave::xor(MULTICORE_CHANNELS),
        options,
    );
    engine.enable_series(epoch_width);
    let mut sys = MultiCoreSystem::new(cores, cpu_cfg, engine);
    sys.enable_series(epoch_width);
    let result = sys.run(CoreTrace::rate(trace, DATA_SPAN, cores));
    let secs = start.elapsed().as_secs_f64();
    let controller = sys.backend_mut().dram_telemetry();
    let mut aggregate = sys.telemetry_snapshot();
    controller.render_into(&mut aggregate);
    let mut series = sys
        .backend_mut()
        .series_snapshot()
        .expect("series recording was enabled");
    series.merge(&sys.series_snapshot().expect("series recording was enabled"));
    let telemetry = MulticoreTelemetry {
        steps: sys.core_step_counts().iter().sum(),
        controller,
        wake: sys.wake_reasons(),
        series,
        aggregate,
    };
    (
        (
            result,
            sys.backend_mut().stats(),
            sys.backend_mut().dram_stats(),
        ),
        telemetry,
        secs,
    )
}

/// Multi-core rate-mode records (N = 1, 2, 4, 8, 16 cores over a shared
/// 4-channel `ShardedEngine`), ABBA-ordered per N. Asserts along the way
/// that each N's event-driven core scheduler matches its per-cycle
/// reference and that the single-core `MultiCoreSystem` is bit-identical
/// to the bare `CpuSystem` over the same backend and trace stream.
fn multicore_records(params: RunParams) -> Vec<Record> {
    let bench = workloads::Benchmark::by_name("mcf").expect("mcf exists");
    // Shared (memoized) rate-mode trace: every core of every N iterates
    // this one allocation.
    let trace = bench.generate_shared(params.instructions, params.seed);

    // Single-core baseline for the N=1 identity gate: the monolithic
    // CpuSystem over an identically built backend, fed the same
    // window-mapped trace stream (event-driven, the default options).
    let single = {
        let options = EngineOptions::default();
        let cpu_cfg = CpuConfig {
            batch_submit: options.batched_ingestion,
            ..CpuConfig::default()
        };
        let engine = ShardedEngine::with_options(
            SecurityConfig::secddr_ctr(),
            cpu_cfg.clock_mhz,
            Interleave::xor(MULTICORE_CHANNELS),
            options,
        );
        let mut sys = CpuSystem::new(cpu_cfg, engine);
        let mut streams = CoreTrace::rate(&trace, DATA_SPAN, 1);
        let sim = sys.run(streams.remove(0));
        (
            sim,
            sys.backend_mut().stats(),
            sys.backend_mut().dram_stats(),
        )
    };

    let width = series_width(params.instructions);
    let mut records = Vec::new();
    for (n, name) in [
        (1usize, "multicore_rate_n1"),
        (2, "multicore_rate_n2"),
        (4, "multicore_rate_n4"),
        (8, "multicore_rate_n8"),
        (16, "multicore_rate_n16"),
    ] {
        let (ref_res, ref_t, ref_a) = multicore_run(&trace, n, Advance::PerCycle, width);
        let (fast_res, fast_t, fast_a) = multicore_run(&trace, n, Advance::ToNextEvent, width);
        let (_, _, fast_b) = multicore_run(&trace, n, Advance::ToNextEvent, width);
        let (_, _, ref_b) = multicore_run(&trace, n, Advance::PerCycle, width);
        assert_eq!(
            fast_res, ref_res,
            "N={n}: event-driven multicore run diverged from per-cycle"
        );
        if n == 1 {
            assert_eq!(
                fast_res.0.per_core[0], single.0,
                "multicore N=1 SimResult != bare CpuSystem"
            );
            assert_eq!(
                fast_res.1, single.1,
                "multicore N=1 EngineStats != bare CpuSystem"
            );
            assert_eq!(
                fast_res.2, single.2,
                "multicore N=1 DramStats != bare CpuSystem"
            );
        }
        let adv = fast_t.controller;
        assert!(
            adv.decision_cycles < adv.busy_cycles,
            "N={n}: a saturated controller must execute strictly fewer cycles \
             than it covers busy ({} vs {})",
            adv.decision_cycles,
            adv.busy_cycles,
        );
        assert_eq!(
            adv.causes.total(),
            adv.decision_cycles,
            "N={n}: decision causes must partition the executed cycles"
        );
        assert_eq!(ref_t.wake, WakeReasons::default(), "per-cycle never wakes");
        assert!(
            fast_t.series.reconciles_with(&fast_t.aggregate),
            "N={n}: per-epoch series sums must reconcile with the aggregate"
        );
        records.push(Record {
            name,
            detail: format!(
                "mcf rate mode x secddr_ctr: {n} core{} over MultiCoreSystem \
                 sharing a 4-channel ShardedEngine (aggregate ipc {:.3})",
                if n == 1 { "" } else { "s" },
                fast_res.0.aggregate_ipc(),
            ),
            ref_secs: ref_a.min(ref_b),
            fast_secs: fast_a.min(fast_b),
            core_steps: Some((ref_t.steps, fast_t.steps)),
            controller_cycles: Some((adv.decision_cycles, adv.busy_cycles)),
            telemetry: Some((adv, Some(fast_t.wake))),
            series: Some(fast_t.series),
        });
    }
    records
}

/// Bursty rate-mode records: the mcf trace chopped into 64-op chunks
/// separated by 2000-instruction compute blocks, so every channel sees
/// real idle windows between bursts — the ROADMAP's n8/n16 open item,
/// where block-advance should win biggest at high core counts.
fn multicore_bursty_records(params: RunParams) -> Vec<Record> {
    let bench = workloads::Benchmark::by_name("mcf").expect("mcf exists");
    let base = bench.generate_shared(params.instructions, params.seed);
    let trace = {
        let mut ops = Vec::with_capacity(base.len() + base.len() / 64 + 1);
        for chunk in base.chunks(64) {
            ops.extend_from_slice(chunk);
            ops.push(TraceOp::Compute(2_000));
        }
        Arc::new(ops)
    };
    let width = series_width(params.instructions);
    let mut records = Vec::new();
    for (n, name) in [
        (8usize, "multicore_bursty_n8"),
        (16, "multicore_bursty_n16"),
    ] {
        let (ref_res, ref_t, ref_a) = multicore_run(&trace, n, Advance::PerCycle, width);
        let (fast_res, fast_t, fast_a) = multicore_run(&trace, n, Advance::ToNextEvent, width);
        let (_, _, fast_b) = multicore_run(&trace, n, Advance::ToNextEvent, width);
        let (_, _, ref_b) = multicore_run(&trace, n, Advance::PerCycle, width);
        assert_eq!(
            fast_res, ref_res,
            "N={n}: event-driven bursty multicore run diverged from per-cycle"
        );
        let adv = fast_t.controller;
        assert_eq!(
            adv.causes.total(),
            adv.decision_cycles,
            "N={n}: decision causes must partition the executed cycles"
        );
        assert!(
            fast_t.series.reconciles_with(&fast_t.aggregate),
            "N={n}: per-epoch series sums must reconcile with the aggregate"
        );
        records.push(Record {
            name,
            detail: format!(
                "mcf bursty rate mode x secddr_ctr: {n} cores, 64-op bursts + \
                 2000-instruction compute gaps over a 4-channel ShardedEngine \
                 (aggregate ipc {:.3})",
                fast_res.0.aggregate_ipc(),
            ),
            ref_secs: ref_a.min(ref_b),
            fast_secs: fast_a.min(fast_b),
            core_steps: Some((ref_t.steps, fast_t.steps)),
            controller_cycles: Some((adv.decision_cycles, adv.busy_cycles)),
            telemetry: Some((adv, Some(fast_t.wake))),
            series: Some(fast_t.series),
        });
    }
    records
}

struct Record {
    name: &'static str,
    detail: String,
    ref_secs: f64,
    fast_secs: f64,
    /// Summed core-step counts (per-cycle, event-driven) for multicore
    /// records: the deterministic scheduler-efficiency measure behind
    /// the host-dependent wall-clocks.
    core_steps: Option<(u64, u64)>,
    /// Channel-merged controller advance counters
    /// (`decision_cycles`, `busy_cycles`) from the event-driven run:
    /// DRAM cycles executed vs busy cycles covered. Deterministic, so
    /// immune to the steal noise that makes seconds unreliable here.
    controller_cycles: Option<(u64, u64)>,
    /// Per-record attribution breakdowns from the event-driven run: the
    /// controller's decision-cause buckets (whose sum is asserted equal
    /// to `controller_decision_cycles` before the record is built) and,
    /// for multicore records, the scheduler's wake-reason buckets.
    telemetry: Option<(ControllerTelemetry, Option<WakeReasons>)>,
    /// Sim-time windowed series from the event-driven run (sharded and
    /// multicore records only), already asserted to reconcile with the
    /// aggregate telemetry. Summarised into a compact per-record
    /// attribution block rather than dumped row-by-row.
    series: Option<SeriesSnapshot>,
}

impl Record {
    fn to_json(&self, at_baseline_budget: bool) -> String {
        let pr1 = PR1_BASELINE
            .iter()
            .find(|(n, _)| *n == self.name)
            .and_then(|(_, b)| *b)
            .filter(|_| at_baseline_budget);
        let mut extra = String::new();
        if let Some((ref_steps, fast_steps)) = self.core_steps {
            extra.push_str(&format!(
                ",\n    \"per_cycle_core_steps\": {ref_steps},\n    \
                 \"event_driven_core_steps\": {fast_steps},\n    \
                 \"core_step_ratio\": {:.2}",
                ref_steps as f64 / fast_steps as f64
            ));
        }
        if let Some((decisions, busy)) = self.controller_cycles {
            extra.push_str(&format!(
                ",\n    \"controller_decision_cycles\": {decisions},\n    \
                 \"controller_busy_cycles\": {busy},\n    \
                 \"decision_cycle_fraction\": {:.3}",
                decisions as f64 / busy.max(1) as f64
            ));
        }
        if let Some((controller, wake)) = &self.telemetry {
            let c = controller.causes;
            extra.push_str(&format!(
                ",\n    \"telemetry\": {{\n      \
                 \"decision_causes\": {{\"issue_hit\": {}, \"issue_miss\": {}, \
                 \"refresh\": {}, \"completion\": {}, \"drain_flip\": {}, \
                 \"aging\": {}, \"noop\": {}, \"total\": {}}}",
                c.issue_hit,
                c.issue_miss,
                c.refresh,
                c.completion,
                c.drain_flip,
                c.aging,
                c.noop,
                c.total(),
            ));
            if let Some(w) = wake {
                extra.push_str(&format!(
                    ",\n      \"wake_reasons\": {{\"completion\": {}, \
                     \"timer\": {}, \"spurious\": {}, \
                     \"submit_rederive\": {}, \"total\": {}}}",
                    w.completion,
                    w.timer,
                    w.spurious,
                    w.submit_rederive,
                    w.total(),
                ));
            }
            extra.push_str("\n    }");
        }
        if let Some(series) = &self.series {
            let phases: Vec<String> = series_report::phase_summaries(series, 4)
                .iter()
                .map(|p| {
                    format!(
                        "{{\"from_epoch\": {}, \"to_epoch\": {}, \
                         \"dominant_cause\": \"{}\", \"share\": {:.3}, \
                         \"decisions\": {}}}",
                        p.from_epoch, p.to_epoch, p.dominant_cause, p.dominant_share, p.decisions
                    )
                })
                .collect();
            let aging = series_report::aging_onset_epoch(series)
                .map_or("null".to_string(), |e| e.to_string());
            let imbalance = series_report::channel_imbalance(series)
                .map_or("null".to_string(), |(_, _, r)| format!("{r:.2}"));
            extra.push_str(&format!(
                ",\n    \"series_reconciles\": true,\n    \
                 \"series\": {{\"epoch_width\": {}, \"epochs\": {}, \
                 \"aging_onset_epoch\": {aging}, \
                 \"channel_imbalance\": {imbalance}, \"phases\": [{}]}}",
                series.epoch_width,
                series.epochs(),
                phases.join(", ")
            ));
        }
        if let Some((pr1_ref, pr1_fast)) = pr1 {
            if pr1_ref >= MIN_MEANINGFUL_BASELINE_SECS {
                extra.push_str(&format!(
                    ",\n    \"per_cycle_vs_pr1\": {:.2}",
                    pr1_ref / self.ref_secs
                ));
            }
            if pr1_fast >= MIN_MEANINGFUL_BASELINE_SECS {
                extra.push_str(&format!(
                    ",\n    \"event_driven_vs_pr1\": {:.2}",
                    pr1_fast / self.fast_secs
                ));
            }
        }
        format!(
            "  {{\n    \"benchmark\": \"{}\",\n    \
             \"detail\": \"{}\",\n    \
             \"per_cycle_seconds\": {:.3},\n    \
             \"event_driven_seconds\": {:.3},\n    \
             \"speedup\": {:.2}{extra}\n  }}",
            self.name,
            self.detail,
            self.ref_secs,
            self.fast_secs,
            self.ref_secs / self.fast_secs,
        )
    }
}

/// Runs all passes at the given budget and returns the JSON report.
///
/// # Panics
///
/// Panics if any pass pair disagrees on any simulated statistic — the
/// speedups are only meaningful for identical results.
pub fn report(instructions: u64, seed: u64) -> String {
    let params = RunParams { instructions, seed };
    // Warm the process-wide GAPBS graph (memoized per (vertices, seed))
    // so neither timed pass absorbs its one-off construction cost.
    let _ = workloads::Benchmark::by_name("pr")
        .expect("pr exists")
        .generate(1_000, seed);

    // ABBA pass order (reference, fast, fast, reference): on a shared or
    // frequency-ramping host, wall-clock drifts over the measurement
    // window; mirrored ordering cancels linear drift instead of crediting
    // it to whichever policy runs later. The minimum of each pair then
    // drops residual scheduler noise.
    let (reference, ref_a) = timed_sweep(params, Advance::PerCycle);
    let (fast, fast_a) = timed_sweep(params, Advance::ToNextEvent);
    let (_, fast_b) = timed_sweep(params, Advance::ToNextEvent);
    let (_, ref_b) = timed_sweep(params, Advance::PerCycle);
    let (fast_secs, ref_secs) = (fast_a.min(fast_b), ref_a.min(ref_b));
    assert_sweeps_identical(&fast, &reference);

    // Latency-bound record: the pointer-chase benchmark, whose long quiet
    // stalls are what the idle-skip targets.
    let subset = "mcf";
    std::env::set_var("SECDDR_BENCH", subset);
    let (ref_lat, ref_lat_a) = timed_sweep(params, Advance::PerCycle);
    let (fast_lat, fast_lat_a) = timed_sweep(params, Advance::ToNextEvent);
    let (_, fast_lat_b) = timed_sweep(params, Advance::ToNextEvent);
    let (_, ref_lat_b) = timed_sweep(params, Advance::PerCycle);
    std::env::remove_var("SECDDR_BENCH");
    let (fast_lat_secs, ref_lat_secs) = (fast_lat_a.min(fast_lat_b), ref_lat_a.min(ref_lat_b));
    assert_sweeps_identical(&fast_lat, &ref_lat);

    let dram_ref = dram_idle_gap_secs(Advance::PerCycle).min(dram_idle_gap_secs(Advance::PerCycle));
    let dram_fast =
        dram_idle_gap_secs(Advance::ToNextEvent).min(dram_idle_gap_secs(Advance::ToNextEvent));

    // Batched ingestion: per-call is the "reference" column, the batch is
    // the "fast" column; statistics must be identical before timing
    // counts.
    let (per_call_a, per_call_stats) = ingestion_run(false);
    let (batch_a, batch_stats) = ingestion_run(true);
    assert_eq!(
        per_call_stats, batch_stats,
        "submit_batch diverged from per-call submits"
    );
    let (batch_b, _) = ingestion_run(true);
    let (per_call_b, _) = ingestion_run(false);
    let (batch_secs, per_call_secs) = (batch_a.min(batch_b), per_call_a.min(per_call_b));

    let mut records = vec![
        Record {
            name: "fig6_smoke_sweep",
            detail: format!(
                "{} benchmarks x {} configs (mixed saturated + latency-bound)",
                fast.benches.len(),
                fast.configs.len() + 1
            ),
            ref_secs,
            fast_secs,
            core_steps: None,
            controller_cycles: None,
            telemetry: None,
            series: None,
        },
        Record {
            name: "pointer_chase_runs",
            detail: format!("{subset} x {} configs", fast_lat.configs.len() + 1),
            ref_secs: ref_lat_secs,
            fast_secs: fast_lat_secs,
            core_steps: None,
            controller_cycles: None,
            telemetry: None,
            series: None,
        },
        Record {
            name: "dram_idle_gaps",
            detail: "bare DDR4 controller, bursty traffic over 200k-cycle windows".into(),
            ref_secs: dram_ref,
            fast_secs: dram_fast,
            core_steps: None,
            controller_cycles: None,
            telemetry: None,
            series: None,
        },
        Record {
            name: "batched_ingestion",
            detail: "bare engine, 8-access volleys: submit_batch vs per-call submit \
                     (columns: per-call, batched)"
                .into(),
            ref_secs: per_call_secs,
            fast_secs: batch_secs,
            core_steps: None,
            controller_cycles: None,
            telemetry: None,
            series: None,
        },
    ];

    // Shard-scaling sweep: asserts per-policy identity at every N and
    // the N=1 ≡ unsharded gate before any timing is recorded.
    records.extend(shard_scaling_records(params));

    // Multi-core rate-mode sweep: asserts per-policy identity at every
    // core count and the N=1 ≡ single-core gate before any timing.
    records.extend(multicore_records(params));

    // Bursty rate-mode sweep (real idle windows per channel at 8/16
    // cores), same per-policy identity asserts.
    records.extend(multicore_bursty_records(params));

    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(16);
    let at_baseline_budget = instructions == PR1_BASELINE_INSTRUCTIONS;
    let body: Vec<String> = records
        .iter()
        .map(|r| r.to_json(at_baseline_budget))
        .collect();
    format!(
        "{{\n  \"instructions_per_run\": {instructions},\n  \
           \"seed\": {seed},\n  \
           \"host_threads\": {threads},\n  \
           \"results_identical\": true,\n  \
           \"sharded_n1_matches_unsharded\": true,\n  \
           \"multicore_n1_matches_single\": true,\n  \
           \"decision_cycles_below_busy\": true,\n  \
           \"telemetry_reconciles\": true,\n  \
           \"series_reconciles\": true,\n  \
           \"records\": [\n{}\n  ]\n}}\n",
        body.join(",\n"),
    )
}

/// Runs the baseline and writes `BENCH_kernel.json` into the current
/// directory (the workspace root under `cargo run`).
pub fn run() {
    let instructions = std::env::var("SECDDR_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000);
    let json = report(instructions, crate::seed());
    print!("{json}");
    match std::fs::write("BENCH_kernel.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_kernel.json"),
        Err(e) => eprintln!("could not write BENCH_kernel.json: {e}"),
    }
}
