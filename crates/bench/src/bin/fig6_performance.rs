//! Binary wrapper for the `fig6_performance` harness.
fn main() {
    secddr_bench::fig6_performance::run();
}
