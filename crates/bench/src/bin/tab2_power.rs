//! Binary wrapper for the `tab2_power` harness.
fn main() {
    secddr_bench::tab2_power::run();
}
