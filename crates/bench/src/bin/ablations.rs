//! Binary wrapper for the `ablations` harness.
fn main() {
    secddr_bench::ablations::run();
}
