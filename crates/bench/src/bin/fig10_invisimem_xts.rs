//! Binary wrapper for the `fig10_invisimem_xts` harness.
fn main() {
    secddr_bench::fig10_invisimem_xts::run();
}
