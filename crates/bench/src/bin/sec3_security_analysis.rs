//! Binary wrapper for the `sec3_security` harness.
fn main() {
    secddr_bench::sec3_security::run();
}
