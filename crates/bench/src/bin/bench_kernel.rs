//! Binary wrapper for the `bench_kernel` perf-baseline harness.
fn main() {
    secddr_bench::bench_kernel::run();
}
