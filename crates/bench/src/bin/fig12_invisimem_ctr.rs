//! Binary wrapper for the `fig12_invisimem_ctr` harness.
fn main() {
    secddr_bench::fig12_invisimem_ctr::run();
}
