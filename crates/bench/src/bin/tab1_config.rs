//! Binary wrapper for the `tab1_config` harness.
fn main() {
    secddr_bench::tab1_config::run();
}
