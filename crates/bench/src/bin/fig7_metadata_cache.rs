//! Binary wrapper for the `fig7_metadata_cache` harness.
fn main() {
    secddr_bench::fig7_metadata_cache::run();
}
