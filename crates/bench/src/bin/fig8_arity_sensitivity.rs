//! Binary wrapper for the `fig8_arity` harness.
fn main() {
    secddr_bench::fig8_arity::run();
}
