//! Shared experiment runner: the [`par_sweep`] harness every
//! figure/table binary fans out through, plus the benchmark ×
//! configuration sweep and paper-style normalized tables built on it.
//!
//! Since the experiment-service PR, [`par_sweep`] rides the process-wide
//! persistent [`secddr_service::WorkerPool`] — the same pool machinery
//! `secddr-serve` schedules jobs on (the service constructs its own
//! instances so tests can size and drain them independently) — so the
//! thread-count policy (`SECDDR_THREADS` override, capped at
//! [`secddr_service::DEFAULT_THREAD_CAP`]) lives in exactly one place.

use secddr_core::config::SecurityConfig;
use secddr_core::engine::EngineOptions;
use secddr_core::system::{gmean, run_trace_with_options, RunParams, RunResult};
use workloads::{Benchmark, Suite};

/// The one parallel map harness (order-preserving, caller-participating)
/// — see [`secddr_service::par_sweep`].
pub use secddr_service::par_sweep;

/// The paper's memory-intensity threshold (LLC MPKI >= 10).
pub const MEM_INTENSIVE_MPKI: f64 = 10.0;

/// Results of a full sweep: `results[bench][config]`.
pub struct Sweep {
    /// Benchmarks, in Figure 6 order.
    pub benches: Vec<Benchmark>,
    /// Configuration labels, in column order.
    pub configs: Vec<SecurityConfig>,
    /// One result per (benchmark, configuration).
    pub results: Vec<Vec<RunResult>>,
    /// The normalization (TDX) results per benchmark.
    pub baseline: Vec<RunResult>,
}

/// Runs every benchmark under every configuration (plus the TDX
/// normalization baseline), in parallel across benchmarks via
/// [`par_sweep`].
pub fn sweep(configs: &[SecurityConfig], params: RunParams) -> Sweep {
    sweep_with_options(configs, params, EngineOptions::default())
}

/// As [`sweep`] with explicit engine options (ablation knobs, clock
/// advance policy).
pub fn sweep_with_options(
    configs: &[SecurityConfig],
    params: RunParams,
    options: EngineOptions,
) -> Sweep {
    let benches: Vec<Benchmark> = match crate::bench_filter() {
        Some(filter) => Benchmark::all()
            .into_iter()
            .filter(|b| filter.iter().any(|f| f == b.name()))
            .collect(),
        None => Benchmark::all(),
    };
    let tdx = SecurityConfig::tdx_baseline();

    let config_list = configs.to_vec();
    let rows = par_sweep(benches.clone(), move |bench| {
        // One trace per benchmark, shared by the baseline and every
        // configuration (identical input is also what normalization
        // assumes).
        let trace = bench.generate(params.instructions, params.seed);
        let base = run_trace_with_options(bench, &trace, &tdx, options);
        let row: Vec<RunResult> = config_list
            .iter()
            .map(|c| run_trace_with_options(bench, &trace, c, options))
            .collect();
        (base, row)
    });

    let mut baseline = Vec::with_capacity(benches.len());
    let mut results = Vec::with_capacity(benches.len());
    for (base, row) in rows {
        baseline.push(base);
        results.push(row);
    }
    Sweep {
        benches,
        configs: configs.to_vec(),
        results,
        baseline,
    }
}

impl Sweep {
    /// Normalized IPC of `results[bench][config]` against the TDX baseline.
    pub fn normalized(&self, bench: usize, config: usize) -> f64 {
        self.results[bench][config].ipc() / self.baseline[bench].ipc()
    }

    /// Is benchmark `i` memory intensive (baseline LLC MPKI >= 10)?
    pub fn is_mem_intensive(&self, i: usize) -> bool {
        self.baseline[i].llc_mpki() >= MEM_INTENSIVE_MPKI
    }

    /// Geometric-mean normalized IPC per configuration over all
    /// benchmarks, and over the memory-intensive subset:
    /// `(gmean_all, gmean_mem_intensive)`.
    pub fn gmeans(&self, config: usize) -> (f64, f64) {
        let all: Vec<f64> = (0..self.benches.len())
            .map(|b| self.normalized(b, config))
            .collect();
        let mem: Vec<f64> = (0..self.benches.len())
            .filter(|b| self.is_mem_intensive(*b))
            .map(|b| self.normalized(b, config))
            .collect();
        let g_all = gmean(&all);
        let g_mem = if mem.is_empty() {
            f64::NAN
        } else {
            gmean(&mem)
        };
        (g_all, g_mem)
    }

    /// Prints the classic per-benchmark normalized-IPC table with gmean
    /// rows, in the paper's figure format.
    pub fn print_normalized_table(&self, title: &str) {
        println!("\n=== {title} ===");
        println!("(normalized IPC; 1.00 = Intel-TDX-like baseline)\n");
        print!("{:<12}", "benchmark");
        for c in &self.configs {
            print!(" {:>26}", c.label());
        }
        println!();
        for (bi, bench) in self.benches.iter().enumerate() {
            let tag = if self.is_mem_intensive(bi) { "*" } else { " " };
            print!("{:<11}{tag}", bench.name());
            for ci in 0..self.configs.len() {
                print!(" {:>26.3}", self.normalized(bi, ci));
            }
            println!();
        }
        println!("{}", "-".repeat(12 + 27 * self.configs.len()));
        print!("{:<12}", "gmean-memint");
        for ci in 0..self.configs.len() {
            print!(" {:>26.3}", self.gmeans(ci).1);
        }
        println!();
        print!("{:<12}", "gmean-all");
        for ci in 0..self.configs.len() {
            print!(" {:>26.3}", self.gmeans(ci).0);
        }
        println!(
            "\n(* = memory intensive, LLC MPKI >= 10; suites: {} SPEC + {} GAPBS)",
            self.benches
                .iter()
                .filter(|b| b.suite() == Suite::Spec)
                .count(),
            self.benches
                .iter()
                .filter(|b| b.suite() == Suite::Gapbs)
                .count()
        );
    }
}
