//! Figure 7: metadata cache behaviour (MPKI and miss rate) per benchmark
//! under the 64-ary-tree baseline configuration.

use secddr_core::config::SecurityConfig;
use secddr_core::system::{run_benchmark, RunParams};
use workloads::Benchmark;

use crate::runner::par_sweep;

/// Runs the Figure 7 measurement and prints the two series.
pub fn run_with_budget(instructions: u64, seed: u64) {
    println!("\n=== Figure 7: Metadata cache behavior (64-ary tree baseline) ===\n");
    println!("{:<12} {:>10} {:>10}", "benchmark", "MPKI", "miss-rate");
    let cfg = SecurityConfig::tree_64ary();
    let params = RunParams { instructions, seed };

    let benches: Vec<Benchmark> = match crate::bench_filter() {
        Some(f) => Benchmark::all()
            .into_iter()
            .filter(|b| f.iter().any(|n| n == b.name()))
            .collect(),
        None => Benchmark::all(),
    };

    let rows = par_sweep(benches.clone(), move |bench| {
        let r = run_benchmark(bench, &cfg, &params);
        (r.metadata_mpki(), r.metadata_miss_rate())
    });
    for (b, (mpki, mr)) in benches.iter().zip(rows.iter()) {
        println!("{:<12} {:>10.2} {:>9.1}%", b.name(), mpki, mr * 100.0);
    }
    println!(
        "\n(Paper shape: random-access workloads — mcf, omnetpp, pr, bc, sssp — show\n\
         the highest metadata MPKI/miss rates; bfs and tc show high locality.)"
    );
}

/// Runs with the environment-configured budget.
pub fn run() {
    run_with_budget(crate::instr_budget(), crate::seed());
}
