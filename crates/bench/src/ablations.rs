//! Ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! None of these reproduce a specific paper figure; they quantify the
//! individual mechanisms behind the figures:
//!
//! * **A1 — eWCRC write-burst cost**: SecDDR with its BL10 bursts vs a
//!   hypothetical BL8 SecDDR, on a write-heavy and a read-heavy workload.
//! * **A2 — metadata cache size**: tree vs SecDDR+CTR sensitivity to the
//!   metadata cache (the tree needs the cache far more).
//! * **A3 — parallel vs serial tree-level fetch**: what the paper's
//!   "parallel tree-level verification" assumption is worth.
//! * **A4 — FR-FCFS vs FCFS**: scheduler contribution, confirming metadata
//!   traffic (not scheduling artifacts) drives the tree penalty.

use secddr_core::config::SecurityConfig;
use secddr_core::engine::EngineOptions;
use secddr_core::system::{run_trace_with_options, RunParams};
use workloads::Benchmark;

use crate::runner::par_sweep;

/// Normalized IPC (vs the TDX baseline) of each `(config, options)`
/// variant, sharing one generated trace and one baseline run across the
/// whole row.
fn norms(
    bench: &Benchmark,
    params: &RunParams,
    variants: &[(SecurityConfig, EngineOptions)],
) -> Vec<f64> {
    let trace = bench.generate(params.instructions, params.seed);
    let tdx = run_trace_with_options(
        bench,
        &trace,
        &SecurityConfig::tdx_baseline(),
        EngineOptions::default(),
    );
    variants
        .iter()
        .map(|(cfg, options)| {
            run_trace_with_options(bench, &trace, cfg, *options).ipc() / tdx.ipc()
        })
        .collect()
}

/// Runs all four ablations.
pub fn run_with_budget(instructions: u64, seed: u64) {
    let params = RunParams { instructions, seed };

    println!("\n=== Ablation A1: eWCRC write-burst extension (BL10 vs BL8) ===\n");
    // Burst length only matters when the data bus saturates; the paper's
    // 4-core rate workloads saturate it, a single-core trace does not. We
    // therefore measure raw write bandwidth on a saturated channel plus
    // the workload-level effect.
    {
        let drain_cycles = |bl8: bool| -> u64 {
            use dram_sim::{DramSystem, MemRequest, ReqKind};
            let cfg = if bl8 {
                SecurityConfig::encrypt_only_ctr().dram_config()
            } else {
                SecurityConfig::secddr_ctr().dram_config()
            };
            let mut dram = DramSystem::new(cfg);
            let mut issued = 0u64;
            let mut done = 0u64;
            let total = 4_000u64;
            let mut last = 0u64;
            while done < total {
                if issued < total
                    && dram
                        .enqueue(MemRequest::new(
                            issued,
                            ReqKind::Write,
                            issued * 64,
                            dram.cycle(),
                        ))
                        .is_ok()
                {
                    issued += 1;
                }
                for c in dram.tick() {
                    done += 1;
                    last = last.max(c.finish_cycle);
                }
            }
            last
        };
        let bl10 = drain_cycles(false);
        let bl8 = drain_cycles(true);
        println!(
            "  saturated write stream, 4000 lines: BL8 {bl8} cycles, BL10 {bl10} cycles \
             -> {:.1}% write-bandwidth cost",
            (bl10 as f64 / bl8 as f64 - 1.0) * 100.0
        );
    }
    let a1_rows = par_sweep(vec!["lbm", "omnetpp"], move |name| {
        let bench = Benchmark::by_name(name).expect("known benchmark");
        let row = norms(
            &bench,
            &params,
            &[
                (SecurityConfig::secddr_ctr(), EngineOptions::default()),
                (
                    SecurityConfig::secddr_ctr(),
                    EngineOptions {
                        force_bl8: true,
                        ..Default::default()
                    },
                ),
            ],
        );
        (*name, row[0], row[1])
    });
    for (name, bl10, bl8) in a1_rows {
        println!(
            "  {name:<10} SecDDR+CTR BL10: {bl10:.3}   BL8 (no eWCRC): {bl8:.3}   \
             eWCRC cost: {:.1}%",
            (bl8 / bl10 - 1.0) * 100.0
        );
    }
    println!(
        "  (single-core traces rarely saturate the bus, so the workload-level cost\n\
         \x20  is below the paper's 4-core rate setup; the saturated-stream row shows\n\
         \x20  the mechanism's full 25% burst-occupancy cost)"
    );

    println!("\n=== Ablation A2: metadata cache size sensitivity ===\n");
    let bench = Benchmark::by_name("omnetpp").expect("known benchmark");
    println!(
        "  {:<10} {:>22} {:>14}",
        "md cache", "Integrity Tree 64ary", "SecDDR+CTR"
    );
    let a2_rows = par_sweep(vec![32u64, 128, 512, 2048], move |&kb| {
        let opt = EngineOptions {
            metadata_cache_bytes: kb << 10,
            ..Default::default()
        };
        let row = norms(
            &bench,
            &params,
            &[
                (SecurityConfig::tree_64ary(), opt),
                (SecurityConfig::secddr_ctr(), opt),
            ],
        );
        (kb, row[0], row[1])
    });
    for (kb, tree, secddr) in a2_rows {
        println!(
            "  {:<10} {:>22.3} {:>14.3}",
            format!("{kb} KB"),
            tree,
            secddr
        );
    }
    println!("  (the tree depends on the cache much more strongly than SecDDR)");

    println!("\n=== Ablation A3: parallel vs serial tree-level fetch ===\n");
    let a3_rows = par_sweep(vec!["omnetpp", "pr"], move |name| {
        let bench = Benchmark::by_name(name).expect("known benchmark");
        let row = norms(
            &bench,
            &params,
            &[
                (SecurityConfig::tree_64ary(), EngineOptions::default()),
                (
                    SecurityConfig::tree_64ary(),
                    EngineOptions {
                        serial_tree_fetch: true,
                        ..Default::default()
                    },
                ),
            ],
        );
        (*name, row[0], row[1])
    });
    for (name, parallel, serial) in a3_rows {
        println!(
            "  {name:<10} parallel: {parallel:.3}   serial: {serial:.3}   \
             parallelism gain: +{:.1}%",
            (parallel / serial - 1.0) * 100.0
        );
    }

    println!("\n=== Ablation A5: eWCRC burst cost on DDR4 vs DDR5 ===\n");
    // Paper (Section IV-B): "for DDR5 memories the impact of increasing
    // the write burst length is smaller — from 16 to 18". Measured as the
    // saturated write-stream bandwidth cost on each generation.
    {
        use dram_sim::{DramConfig, DramSystem, MemRequest, ReqKind};
        let drain_cycles = |cfg: DramConfig| -> u64 {
            let mut dram = DramSystem::new(cfg);
            let (mut issued, mut done, total, mut last) = (0u64, 0u64, 4_000u64, 0u64);
            while done < total {
                if issued < total
                    && dram
                        .enqueue(MemRequest::new(
                            issued,
                            ReqKind::Write,
                            issued * 64,
                            dram.cycle(),
                        ))
                        .is_ok()
                {
                    issued += 1;
                }
                for c in dram.tick() {
                    done += 1;
                    last = last.max(c.finish_cycle);
                }
            }
            last
        };
        let d4 = drain_cycles(DramConfig::ddr4_3200());
        let d4e = drain_cycles(DramConfig::ddr4_3200_ewcrc());
        let d5 = drain_cycles(DramConfig::ddr5_4800());
        let d5e = drain_cycles(DramConfig::ddr5_4800_ewcrc());
        println!(
            "  DDR4-3200: BL8 {d4} -> BL10 {d4e} cycles   ({:+.1}% bandwidth cost)",
            (d4e as f64 / d4 as f64 - 1.0) * 100.0
        );
        println!(
            "  DDR5-4800: BL16 {d5} -> BL18 {d5e} cycles  ({:+.1}% bandwidth cost)",
            (d5e as f64 / d5 as f64 - 1.0) * 100.0
        );
        println!("  [paper: the DDR5 extension is proportionally half as costly]");
    }

    println!("\n=== Ablation A4: FR-FCFS vs FCFS scheduling ===\n");
    let a4_rows = par_sweep(vec!["bwaves", "omnetpp"], move |name| {
        let bench = Benchmark::by_name(name).expect("known benchmark");
        let row = norms(
            &bench,
            &params,
            &[
                (SecurityConfig::secddr_xts(), EngineOptions::default()),
                (
                    SecurityConfig::secddr_xts(),
                    EngineOptions {
                        fcfs: true,
                        ..Default::default()
                    },
                ),
            ],
        );
        (*name, row[0], row[1])
    });
    for (name, frfcfs, fcfs) in a4_rows {
        println!(
            "  {name:<10} FR-FCFS: {frfcfs:.3}   FCFS: {fcfs:.3}   \
             row-hit-first gain: +{:.1}%",
            (frfcfs / fcfs - 1.0) * 100.0
        );
    }
    println!("  (streaming bwaves benefits most from row-hit-first scheduling)");
}

/// Runs with the environment-configured budget.
pub fn run() {
    run_with_budget(crate::instr_budget(), crate::seed());
}
