//! Table II: AES-engine power overhead of SecDDR's on-DRAM security logic,
//! plus the Section V-B area and attestation-unit figures.

use secddr_crypto::power::{
    attestation_power_mw, evaluate, DimmPowerConfig, DDR4_X4, DDR4_X8, DDR5_X4,
};

fn print_column(cfg: &DimmPowerConfig) {
    let r = evaluate(cfg);
    println!("  {:<26} {}", "configuration", cfg.label);
    println!(
        "  {:<26} {}",
        "AES units per ECC chip", r.aes_units_per_ecc_chip
    );
    println!(
        "  {:<26} {:.1} mW",
        "AES power per ECC chip", r.aes_power_per_chip_mw
    );
    println!(
        "  {:<26} {:.0} mW",
        "DRAM chip power", cfg.dram_chip_power_mw
    );
    println!(
        "  {:<26} {:.0} mW",
        "16GB dual-rank DIMM power", cfg.dimm_power_mw
    );
    println!(
        "  {:<26} {:.1}%",
        "overhead per rank",
        r.overhead_per_rank * 100.0
    );
    println!(
        "  {:<26} {:.3} mm^2 (45nm)",
        "security-logic area", r.area_mm2
    );
    println!();
}

/// Prints Table II and the surrounding Section V-B figures.
pub fn run() {
    println!("\n=== Table II: AES engine power overhead ===\n");
    println!("DDR4-3200, 1600 MHz, 1.2 V:\n");
    print_column(&DDR4_X4);
    print_column(&DDR4_X8);
    println!("DDR5-8800, 1.1 V (Section V-B):\n");
    print_column(&DDR5_X4);

    let (ec, sha) = attestation_power_mw();
    println!("Attestation units at the 500 MHz DRAM clock (Section V-B):");
    println!("  EC scalar multiplier: {ec:.1} mW   [paper: 14.2 mW]");
    println!("  SHA-256:              {sha:.1} mW   [paper: 21 mW]");
    println!("\nPaper reference values: x4 = 2 units / 70.8 mW / 2.1%;");
    println!("x8 = 3 units / 106.3 mW / 2.3%; DDR5 = 89.3 mW, <5%; area < 1.5 mm^2.");
}
