//! Experiment harnesses that regenerate every table and figure of the
//! SecDDR paper (DSN 2023).
//!
//! Each `figN_*` / `tabN_*` module prints the same rows/series the paper
//! reports. Run them as binaries (`cargo run --release -p secddr-bench
//! --bin fig6_performance`) or all together via `cargo bench` (the
//! `figures` bench target runs every harness at a reduced instruction
//! budget).
//!
//! Knobs (environment variables):
//!
//! * `SECDDR_INSTRS` — instruction budget per benchmark (default
//!   300,000; the paper simulates 200M-instruction SimPoints — larger
//!   budgets sharpen the numbers at proportional runtime).
//! * `SECDDR_SEED` — trace generation seed (default 0xD5).
//! * `SECDDR_BENCH` — comma-separated benchmark filter (default: all 29).

#![forbid(unsafe_code)]

pub mod ablations;
pub mod bench_kernel;
pub mod fig10_invisimem_xts;
pub mod fig12_invisimem_ctr;
pub mod fig6_performance;
pub mod fig7_metadata_cache;
pub mod fig8_arity;
pub mod runner;
pub mod sec3_security;
pub mod tab1_config;
pub mod tab2_power;

/// Instruction budget from `SECDDR_INSTRS` (default 300k).
pub fn instr_budget() -> u64 {
    std::env::var("SECDDR_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300_000)
}

/// Seed from `SECDDR_SEED` (default 0xD5).
pub fn seed() -> u64 {
    std::env::var("SECDDR_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xD5)
}

/// Benchmark filter from `SECDDR_BENCH`.
pub fn bench_filter() -> Option<Vec<String>> {
    std::env::var("SECDDR_BENCH")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
}
