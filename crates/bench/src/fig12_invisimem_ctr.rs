//! Figure 12: SecDDR vs DDR-adapted InvisiMem, all with counter-mode
//! encryption (64 counters per line).
//!
//! Paper shape: SecDDR outperforms unrealistic InvisiMem by ~9.4% and
//! realistic InvisiMem by ~16.6%; overall levels sit below the XTS
//! variants of Figure 10.

use secddr_core::config::{EncMode, SecurityConfig};
use secddr_core::system::RunParams;

use crate::runner::sweep;

/// Runs the Figure 12 sweep and prints the table.
pub fn run_with_budget(instructions: u64, seed: u64) {
    let configs = [
        SecurityConfig::invisimem_unrealistic(EncMode::Ctr),
        SecurityConfig::invisimem_realistic(EncMode::Ctr),
        SecurityConfig::secddr_ctr(),
        SecurityConfig::encrypt_only_ctr(),
    ];
    let s = sweep(&configs, RunParams { instructions, seed });
    s.print_normalized_table("Figure 12: Comparison with InvisiMem (counter-mode)");

    let (unreal_all, _) = s.gmeans(0);
    let (real_all, _) = s.gmeans(1);
    let (secddr_all, _) = s.gmeans(2);
    println!("\nHeadline comparisons (paper values in brackets):");
    println!(
        "  SecDDR CNT vs InvisiMem-unrealistic CNT: +{:.1}%  [paper: +9.4%]",
        (secddr_all / unreal_all - 1.0) * 100.0
    );
    println!(
        "  SecDDR CNT vs InvisiMem-realistic CNT:   +{:.1}%  [paper: +16.6%]",
        (secddr_all / real_all - 1.0) * 100.0
    );
}

/// Runs with the environment-configured budget.
pub fn run() {
    run_with_budget(crate::instr_budget(), crate::seed());
}
