//! Section III-B/III-C security analysis: eWCRC brute-force longevity,
//! counter overflow horizon, DIMM-substitution success probability.

use secddr_core::analysis::{
    counter_overflow_years, dimm_substitution_success_probability, EwcrcAttackModel,
};

/// Prints the security-analysis numbers next to the paper's.
pub fn run() {
    println!("\n=== Section III-B: Security of the encrypted eWCRC ===\n");

    let worst = EwcrcAttackModel::jedec_worst_case();
    println!(
        "JEDEC worst-case BER {:.0e}: one natural CCCA error every {:.2} days per channel \
         [paper: 11.13 days]",
        worst.ber,
        worst.days_between_natural_errors()
    );
    println!(
        "Attempts for 50% brute-force success vs 16-bit eWCRC: {:.3e} [paper: >= 4.5e4]",
        worst.attempts_for_success_probability(0.5)
    );
    println!(
        "Single-channel attack duration: {:.0} years [paper: 1,385 years]",
        worst.attack_years(0.5, 1.0)
    );

    let real = EwcrcAttackModel::realistic();
    println!(
        "Realistic BER {:.0e}: {:.2e} years [paper: 138 million years]",
        real.ber,
        real.attack_years(0.5, 1.0)
    );
    let low = EwcrcAttackModel::realistic_low();
    println!(
        "Parallel attack, 1,000 nodes x 16 channels at BER {:.0e}: {:.0} years \
         [paper: > 86,000 years]",
        low.ber,
        low.attack_years(0.5, 16_000.0)
    );

    println!("\n=== Section III-C: Transaction counters ===\n");
    println!(
        "64-bit counter overflow at 1 transaction/ns/rank: {:.0} years [paper: > 500 years]",
        counter_overflow_years(1e9)
    );
    println!(
        "DIMM-substitution counter-match probability: {:.3e} [paper: 2^-64 = 5.4e-20]",
        dimm_substitution_success_probability()
    );
}
