//! Figure 8: sensitivity to tree arity and counter packing.
//!
//! Three groups (8 / 64 / 128 counters per line); within each group a tree
//! of matching arity, SecDDR+CTR, and encrypt-only CTR. The 8-ary group is
//! the XTS-compatible hash-tree design (MACs in memory), which the paper
//! reports at a severe 38.8% slowdown.

use secddr_core::config::SecurityConfig;
use secddr_core::system::RunParams;

use crate::runner::sweep;

/// Runs the Figure 8 sweep and prints the nine gmean bars.
pub fn run_with_budget(instructions: u64, seed: u64) {
    let configs = [
        // 8 counters/line group: hash tree (8-ary) + CTR configs packed 8.
        SecurityConfig::tree_8ary_hash(),
        SecurityConfig::secddr_ctr().with_packing(8),
        SecurityConfig::encrypt_only_ctr().with_packing(8),
        // 64 group (paper baseline).
        SecurityConfig::tree_64ary(),
        SecurityConfig::secddr_ctr(),
        SecurityConfig::encrypt_only_ctr(),
        // 128 group (MorphTree-like).
        SecurityConfig::tree_128ary(),
        SecurityConfig::secddr_ctr().with_packing(128),
        SecurityConfig::encrypt_only_ctr().with_packing(128),
    ];
    let s = sweep(&configs, RunParams { instructions, seed });

    println!("\n=== Figure 8: Sensitivity to tree arity and counter packing ===");
    println!("(gmean normalized IPC over all benchmarks; paper values in brackets)\n");
    let labels = [
        ("8-ary (hash tree)", "0.61"),
        ("SecDDR    (8 cnt/line)", "0.86"),
        ("Encrypt-only (8 cnt/line)", "0.88"),
        ("64-ary", "0.84"),
        ("SecDDR    (64 cnt/line)", "0.92"),
        ("Encrypt-only (64 cnt/line)", "0.94"),
        ("128-ary", "0.86"),
        ("SecDDR    (128 cnt/line)", "0.92"),
        ("Encrypt-only (128 cnt/line)", "0.94"),
    ];
    for (i, (label, paper)) in labels.iter().enumerate() {
        let (all, _) = s.gmeans(i);
        println!("  {label:<30} {all:>6.3}   [paper: {paper}]");
    }
    let tree64 = s.gmeans(3).0;
    let tree128 = s.gmeans(6).0;
    let secddr64 = s.gmeans(4).0;
    println!("\nDerived comparisons:");
    println!(
        "  SecDDR+CTR vs 128-ary tree: +{:.1}%  [paper: +6.3%]",
        (secddr64 / tree128 - 1.0) * 100.0
    );
    println!(
        "  8-ary hash tree slowdown vs baseline: {:.1}%  [paper: -38.8%]",
        (s.gmeans(0).0 - 1.0) * 100.0
    );
    println!(
        "  128-ary vs 64-ary tree: +{:.1}%  [paper: removes one level, small gain]",
        (tree128 / tree64 - 1.0) * 100.0
    );
}

/// Runs with the environment-configured budget.
pub fn run() {
    run_with_budget(crate::instr_budget(), crate::seed());
}
