//! Table I: configuration parameters of the simulated system, printed from
//! the live configuration structs (so the table cannot drift from the
//! code).

use cpu_model::cache::CacheConfig;
use cpu_model::CpuConfig;
use dram_sim::DramConfig;
use secddr_core::config::CRYPTO_LATENCY;

/// Prints Table I.
pub fn run() {
    let cpu = CpuConfig::default();
    let l1 = CacheConfig::l1d();
    let llc = CacheConfig::llc();
    let md = CacheConfig::metadata();
    let dram = DramConfig::ddr4_3200();

    println!("\n=== Table I: Configuration Parameters ===\n");
    println!(
        "Core              {}-wide fetch/retire out-of-order, {}-entry ROB,\n\
         \x20                 {} MHz",
        cpu.dispatch_width, cpu.rob_entries, cpu.clock_mhz
    );
    println!(
        "L1 Cache          Private {} KB d-cache, {} B line, {}-way",
        l1.size_bytes >> 10,
        l1.line_bytes,
        l1.ways
    );
    println!(
        "Last Level Cache  Shared {} MB, {} B line, {}-way",
        llc.size_bytes >> 20,
        llc.line_bytes,
        llc.ways
    );
    println!("Prefetcher        Stream prefetcher");
    println!(
        "Metadata Cache    Shared {} KB, {} B line, {}-way",
        md.size_bytes >> 10,
        md.line_bytes,
        md.ways
    );
    println!("Security Mech.    {CRYPTO_LATENCY} processor-cycles encryption and MAC");
    println!(
        "Main Memory       {} GB DRAM, 1 channel, {} ranks, {} bank-groups,\n\
         \x20                 {} banks, x8. {} read- and {} write-entry queues.",
        dram.capacity_bytes() >> 30,
        dram.ranks,
        dram.bank_groups,
        dram.total_banks() / dram.ranks,
        dram.read_queue,
        dram.write_queue
    );
    println!(
        "Memory Timings    DDR4-3200 at {} MHz,\n\
         \x20                 tCL/tCCDS/tCCDL/tCWL/tWTRS/tWTRL/tRP/tRCD/tRAS =\n\
         \x20                 {}/{}/{}/{}/{}/{}/{}/{}/{} cycles",
        dram.freq_mhz,
        dram.t_cl,
        dram.t_ccd_s,
        dram.t_ccd_l,
        dram.t_cwl,
        dram.t_wtr_s,
        dram.t_wtr_l,
        dram.t_rp,
        dram.t_rcd,
        dram.t_ras
    );
}
