//! Figure 10: SecDDR vs DDR-adapted InvisiMem, all with AES-XTS.
//!
//! Paper shape: unrealistic InvisiMem (@3200, only the 2x MAC latency)
//! trails SecDDR by ~2.9% average (3.8% memory-intensive); the realistic
//! variant (@2400, centralized-buffer derating) trails by ~7.2% (11.2%).
//! SecDDR loses slightly on lbm/fotonik3d/roms due to its longer write
//! bursts.

use secddr_core::config::{EncMode, SecurityConfig};
use secddr_core::system::RunParams;

use crate::runner::sweep;

/// Runs the Figure 10 sweep and prints the table.
pub fn run_with_budget(instructions: u64, seed: u64) {
    let configs = [
        SecurityConfig::invisimem_unrealistic(EncMode::Xts),
        SecurityConfig::invisimem_realistic(EncMode::Xts),
        SecurityConfig::secddr_xts(),
        SecurityConfig::encrypt_only_xts(),
    ];
    let s = sweep(&configs, RunParams { instructions, seed });
    s.print_normalized_table("Figure 10: Comparison with InvisiMem (AES-XTS)");

    let (unreal_all, unreal_mem) = s.gmeans(0);
    let (real_all, real_mem) = s.gmeans(1);
    let (secddr_all, secddr_mem) = s.gmeans(2);
    println!("\nHeadline comparisons (paper values in brackets):");
    println!(
        "  SecDDR vs InvisiMem-unrealistic (all):     +{:.1}%  [paper: +2.9%]",
        (secddr_all / unreal_all - 1.0) * 100.0
    );
    println!(
        "  SecDDR vs InvisiMem-unrealistic (mem-int): +{:.1}%  [paper: +3.8%]",
        (secddr_mem / unreal_mem - 1.0) * 100.0
    );
    println!(
        "  SecDDR vs InvisiMem-realistic (all):       +{:.1}%  [paper: +7.2%]",
        (secddr_all / real_all - 1.0) * 100.0
    );
    println!(
        "  SecDDR vs InvisiMem-realistic (mem-int):   +{:.1}%  [paper: +11.2%]",
        (secddr_mem / real_mem - 1.0) * 100.0
    );
}

/// Runs with the environment-configured budget.
pub fn run() {
    run_with_budget(crate::instr_budget(), crate::seed());
}
