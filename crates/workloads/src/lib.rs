//! Workloads for the SecDDR reproduction: the 29 benchmarks of the paper's
//! Figure 6 (23 SPEC CPU2017 profiles + 6 GAPBS kernels).
//!
//! GAPBS kernels are real graph algorithms executed on synthetic graphs
//! with their address streams captured ([`gapbs`]); SPEC benchmarks are
//! synthetic generators calibrated to each benchmark's miss rate, access
//! pattern, and write intensity ([`spec`]). Both produce
//! [`cpu_model::TraceOp`] streams consumed by the full-system simulator in
//! `secddr-core`.
//!
//! # Example
//!
//! ```
//! use workloads::Benchmark;
//!
//! let all = Benchmark::all();
//! assert_eq!(all.len(), 29);
//! let mcf = Benchmark::by_name("mcf").unwrap();
//! let trace = mcf.generate(10_000, 42);
//! let instrs: u64 = trace.iter().map(|o| o.instructions()).sum();
//! assert!(instrs >= 9_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod gapbs;
pub mod graph;
pub mod sink;
pub mod spec;

pub use cache::{trace_cache_stats, TraceCacheStats};
pub use gapbs::Kernel;
pub use graph::{CsrGraph, GraphLayout};
pub use sink::TraceSink;
pub use spec::{Pattern, SpecProfile};

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use cpu_model::TraceOp;

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2017 (rate).
    Spec,
    /// GAP Benchmark Suite.
    Gapbs,
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    Spec(SpecProfile),
    Gapbs(Kernel),
}

/// One benchmark of the paper's evaluation.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    kind: Kind,
}

/// GAPBS graph scale used for trace generation: 2^21 vertices, average
/// degree 8. The per-vertex property arrays alone are 16 MB — 4x the LLC —
/// so the kernels' scattered property reads genuinely miss, as on the
/// paper's full-size GAPBS inputs.
const GRAPH_VERTICES: u32 = 1 << 21;
const GRAPH_DEGREE: u32 = 8;

/// Seed of the shared GAPBS input graph.
const GRAPH_SEED: u64 = 0xBEEF;

fn shared_graph() -> std::sync::Arc<CsrGraph> {
    // Memoized per (vertices, degree, seed) in `graph`: sweeps that fan
    // out across benchmarks and configurations reuse one generation.
    CsrGraph::shared(GRAPH_VERTICES, GRAPH_DEGREE, GRAPH_SEED)
}

/// Key of one memoized trace: `(benchmark, instruction budget, seed)`.
type TraceKey = (&'static str, u64, u64);

fn trace_cache() -> &'static Mutex<HashMap<TraceKey, Arc<Vec<TraceOp>>>> {
    static CACHE: OnceLock<Mutex<HashMap<TraceKey, Arc<Vec<TraceOp>>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl Benchmark {
    /// All 29 benchmarks in Figure 6 order.
    pub fn all() -> Vec<Benchmark> {
        let mut v: Vec<Benchmark> = spec::spec_profiles()
            .into_iter()
            .map(|p| Benchmark {
                kind: Kind::Spec(p),
            })
            .collect();
        for k in [
            Kernel::Bfs,
            Kernel::Pr,
            Kernel::Tc,
            Kernel::Cc,
            Kernel::Bc,
            Kernel::Sssp,
        ] {
            v.push(Benchmark {
                kind: Kind::Gapbs(k),
            });
        }
        v
    }

    /// Looks a benchmark up by its paper label.
    pub fn by_name(name: &str) -> Option<Benchmark> {
        Self::all().into_iter().find(|b| b.name() == name)
    }

    /// The paper's label for this benchmark.
    pub fn name(&self) -> &'static str {
        match &self.kind {
            Kind::Spec(p) => p.name,
            Kind::Gapbs(k) => k.name(),
        }
    }

    /// Which suite it belongs to.
    pub fn suite(&self) -> Suite {
        match self.kind {
            Kind::Spec(_) => Suite::Spec,
            Kind::Gapbs(_) => Suite::Gapbs,
        }
    }

    /// Generates an instruction trace of roughly `instruction_budget`
    /// instructions. The same `(budget, seed)` always yields the same
    /// trace, so all security configurations are compared on identical
    /// input.
    pub fn generate(&self, instruction_budget: u64, seed: u64) -> Vec<TraceOp> {
        match &self.kind {
            Kind::Spec(p) => p.generate(instruction_budget, seed),
            Kind::Gapbs(k) => gapbs::trace(
                *k,
                &shared_graph(),
                GraphLayout::default(),
                instruction_budget,
                seed,
            ),
        }
    }

    /// As [`Self::generate`], memoized per `(benchmark, budget, seed)`
    /// through three tiers: a process-wide memo map (the
    /// [`CsrGraph::shared`] idiom, one level up), then the on-disk
    /// [`cache`] under `target/trace-cache/`, then the trace kernels.
    /// Disk round-trips are lossless, so all tiers hand out identical
    /// traces; freshly generated traces are persisted best-effort so
    /// the *next process* skips the kernels too.
    ///
    /// Rate-mode multi-core runs and repeated sweeps hand each consumer
    /// an `Arc` of one trace instead of regenerating or deep-cloning it
    /// per core. [`trace_cache_stats`] reports the per-tier hit
    /// counters (the experiment service's cache-stats endpoint).
    pub fn generate_shared(&self, instruction_budget: u64, seed: u64) -> Arc<Vec<TraceOp>> {
        let key = (self.name(), instruction_budget, seed);
        if let Some(t) = trace_cache()
            .lock()
            .expect("trace cache poisoned")
            .get(&key)
        {
            cache::count_memory_hit();
            return Arc::clone(t);
        }
        // Load or generate outside the lock: trace generation can be
        // expensive (graph kernels), and a parallel sweep's first
        // touches should not serialize on it. A racing duplicate is
        // dropped in favor of whichever entry landed first.
        let loaded = match cache::load(self.name(), instruction_budget, seed) {
            Some(trace) => {
                cache::count_disk_hit();
                Arc::new(trace)
            }
            None => {
                cache::count_generated();
                let generated = Arc::new(self.generate(instruction_budget, seed));
                cache::store(self.name(), instruction_budget, seed, &generated);
                generated
            }
        };
        let mut cache = trace_cache().lock().expect("trace cache poisoned");
        Arc::clone(cache.entry(key).or_insert(loaded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_29_benchmarks_in_paper_order() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 29);
        assert_eq!(all[0].name(), "perlbench");
        assert_eq!(all[22].name(), "roms");
        assert_eq!(all[23].name(), "bfs");
        assert_eq!(all[28].name(), "sssp");
    }

    #[test]
    fn names_are_unique() {
        let all = Benchmark::all();
        let set: std::collections::HashSet<&str> = all.iter().map(|b| b.name()).collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn by_name_finds_everything() {
        for b in Benchmark::all() {
            assert!(Benchmark::by_name(b.name()).is_some(), "{}", b.name());
        }
        assert!(Benchmark::by_name("nonexistent").is_none());
    }

    #[test]
    fn suites_partition() {
        let all = Benchmark::all();
        assert_eq!(all.iter().filter(|b| b.suite() == Suite::Spec).count(), 23);
        assert_eq!(all.iter().filter(|b| b.suite() == Suite::Gapbs).count(), 6);
    }

    #[test]
    fn shared_traces_memoize_per_key() {
        let mcf = Benchmark::by_name("mcf").unwrap();
        let a = mcf.generate_shared(5_000, 42);
        let b = mcf.generate_shared(5_000, 42);
        assert!(Arc::ptr_eq(&a, &b), "same parameters share one trace");
        let c = mcf.generate_shared(5_000, 43);
        assert!(!Arc::ptr_eq(&a, &c), "different seed is a different entry");
        assert_eq!(*a, mcf.generate(5_000, 42), "memoized == generated");
        let gcc = Benchmark::by_name("gcc").unwrap();
        assert!(!Arc::ptr_eq(&a, &gcc.generate_shared(5_000, 42)));
    }

    #[test]
    fn gapbs_traces_generate() {
        let b = Benchmark::by_name("pr").unwrap();
        let t = b.generate(30_000, 1);
        let instrs: u64 = t.iter().map(|o| o.instructions()).sum();
        assert!(instrs >= 25_000);
    }
}
