//! On-disk trace cache: serialized [`TraceOp`] streams keyed by
//! `(benchmark, instruction budget, seed)`.
//!
//! [`Benchmark::generate_shared`](crate::Benchmark::generate_shared)
//! consults three tiers: the in-process memo map, then this disk cache,
//! then the trace kernels themselves. A repeated *process* (a restarted
//! experiment service, a re-run bench binary) therefore skips trace
//! generation entirely — the remaining step of the ROADMAP's
//! capture/replay item.
//!
//! # Format
//!
//! A version-stamped little-endian binary file, written atomically
//! (temp file + rename) so concurrent writers can race benignly:
//!
//! ```text
//! magic  b"SDTR"            4 bytes
//! version u32               bumped on any layout change
//! budget  u64  seed u64     the key, re-verified on load
//! count   u64               number of ops
//! ops     count × (tag u8, value u64)
//! ```
//!
//! Any mismatch (magic, version, key, truncation, trailing bytes,
//! unknown tag) makes the load fall through to generation — a stale or
//! corrupt file is never trusted.
//!
//! The directory defaults to `target/trace-cache/` under the workspace
//! root; `SECDDR_TRACE_CACHE` overrides it (a path, or `off`/`0` to
//! disable the disk tier).

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use cpu_model::TraceOp;
use secddr_telemetry::{Counter, Registry};

const MAGIC: &[u8; 4] = b"SDTR";
const VERSION: u32 = 1;

const TAG_COMPUTE: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_DEPENDENT_LOAD: u8 = 2;
const TAG_STORE: u8 = 3;

/// Cumulative process-wide trace-cache counters (the experiment
/// service's cache-stats endpoint reports these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// `generate_shared` calls answered by the in-process memo map.
    pub memory_hits: u64,
    /// Calls answered by a deserialized disk file.
    pub disk_hits: u64,
    /// Calls that fell through to the trace kernels.
    pub generated: u64,
}

// The counters live in the process-wide telemetry registry (under the
// `workloads.trace_cache.*` names) so the service's metrics endpoint
// and `trace_cache_stats` read the same numbers. Each handle is cached
// in a `OnceLock` so the hot path is one relaxed atomic add — the
// registry's name lookup happens once per process.
static MEMORY_HITS: OnceLock<Counter> = OnceLock::new();
static DISK_HITS: OnceLock<Counter> = OnceLock::new();
static GENERATED: OnceLock<Counter> = OnceLock::new();

fn handle(slot: &'static OnceLock<Counter>, name: &'static str) -> &'static Counter {
    slot.get_or_init(|| Registry::global().counter(name))
}

fn memory_hits() -> &'static Counter {
    handle(&MEMORY_HITS, "workloads.trace_cache.memory_hits")
}

fn disk_hits() -> &'static Counter {
    handle(&DISK_HITS, "workloads.trace_cache.disk_hits")
}

fn generated() -> &'static Counter {
    handle(&GENERATED, "workloads.trace_cache.generated")
}

pub(crate) fn count_memory_hit() {
    memory_hits().inc();
}

pub(crate) fn count_disk_hit() {
    disk_hits().inc();
}

pub(crate) fn count_generated() {
    generated().inc();
}

/// A snapshot of the process-wide trace-cache counters (the same values
/// the global telemetry registry reports under
/// `workloads.trace_cache.*`).
#[must_use]
pub fn trace_cache_stats() -> TraceCacheStats {
    TraceCacheStats {
        memory_hits: memory_hits().get(),
        disk_hits: disk_hits().get(),
        generated: generated().get(),
    }
}

/// The disk-cache directory, or `None` when the disk tier is disabled
/// via `SECDDR_TRACE_CACHE=off` (or `0`).
///
/// The default lives under the *workspace* `target/` directory (derived
/// from this crate's manifest location) so test binaries — whose working
/// directory is their own crate root — share one cache with the
/// binaries and never scatter `target/` directories around the tree.
#[must_use]
pub fn cache_dir() -> Option<PathBuf> {
    match std::env::var("SECDDR_TRACE_CACHE") {
        Ok(v) if v == "off" || v == "0" => None,
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => {
            let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
            let workspace = manifest.parent()?.parent()?;
            Some(workspace.join("target").join("trace-cache"))
        }
    }
}

fn file_name(name: &str, budget: u64, seed: u64) -> String {
    // Benchmark names are short ASCII identifiers; sanitize defensively
    // so a hostile name cannot escape the cache directory.
    let safe: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("{safe}-{budget}-{seed}.trace")
}

/// Serializes `trace` into the on-disk format.
#[must_use]
pub fn encode(budget: u64, seed: u64, trace: &[TraceOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 + 8 + 8 + 8 + trace.len() * 9);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&budget.to_le_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    for op in trace {
        let (tag, value) = match op {
            TraceOp::Compute(n) => (TAG_COMPUTE, u64::from(*n)),
            TraceOp::Load(a) => (TAG_LOAD, *a),
            TraceOp::DependentLoad(a) => (TAG_DEPENDENT_LOAD, *a),
            TraceOp::Store(a) => (TAG_STORE, *a),
        };
        out.push(tag);
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

/// Decodes a cache file body, verifying the header against the expected
/// key. Returns `None` on any mismatch or corruption.
#[must_use]
pub fn decode(budget: u64, seed: u64, bytes: &[u8]) -> Option<Vec<TraceOp>> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let slice = bytes.get(*at..*at + n)?;
        *at += n;
        Some(slice)
    };
    if take(&mut at, 4)? != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?);
    if version != VERSION {
        return None;
    }
    let file_budget = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
    let file_seed = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
    if (file_budget, file_seed) != (budget, seed) {
        return None;
    }
    let count = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
    let count = usize::try_from(count).ok()?;
    // Reject absurd counts before allocating (a truncation-proof bound:
    // each op costs 9 bytes; checked so a crafted header can neither
    // wrap the size check nor drive a huge allocation).
    if count.checked_mul(9) != Some(bytes.len() - at) {
        return None;
    }
    let mut trace = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = take(&mut at, 1)?[0];
        let value = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
        trace.push(match tag {
            TAG_COMPUTE => TraceOp::Compute(u32::try_from(value).ok()?),
            TAG_LOAD => TraceOp::Load(value),
            TAG_DEPENDENT_LOAD => TraceOp::DependentLoad(value),
            TAG_STORE => TraceOp::Store(value),
            _ => return None,
        });
    }
    Some(trace)
}

/// Loads a cached trace for the key, if the disk tier is enabled and a
/// valid file exists.
pub(crate) fn load(name: &str, budget: u64, seed: u64) -> Option<Vec<TraceOp>> {
    let path = cache_dir()?.join(file_name(name, budget, seed));
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .ok()?
        .read_to_end(&mut bytes)
        .ok()?;
    decode(budget, seed, &bytes)
}

/// Persists a generated trace, best-effort: a full cache disk or racing
/// writer never fails the simulation. The write is atomic (unique temp
/// file + rename) so readers only ever see complete files.
pub(crate) fn store(name: &str, budget: u64, seed: u64, trace: &[TraceOp]) {
    let Some(dir) = cache_dir() else {
        return;
    };
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let final_path = dir.join(file_name(name, budget, seed));
    let tmp_path = dir.join(format!(
        "{}.tmp.{}",
        file_name(name, budget, seed),
        std::process::id()
    ));
    let bytes = encode(budget, seed, trace);
    let written = std::fs::File::create(&tmp_path)
        .and_then(|mut f| f.write_all(&bytes))
        .is_ok();
    if written {
        let _ = std::fs::rename(&tmp_path, &final_path);
    } else {
        let _ = std::fs::remove_file(&tmp_path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceOp> {
        vec![
            TraceOp::Compute(17),
            TraceOp::Load(0x00DE_ADBE_EFC0),
            TraceOp::DependentLoad(!63),
            TraceOp::Store(0),
            TraceOp::Compute(u32::MAX),
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        let trace = sample();
        let bytes = encode(40_000, 0xD5, &trace);
        assert_eq!(decode(40_000, 0xD5, &bytes), Some(trace));
    }

    #[test]
    fn decode_rejects_wrong_key_version_and_corruption() {
        let trace = sample();
        let bytes = encode(40_000, 0xD5, &trace);
        assert_eq!(decode(40_000, 0xD6, &bytes), None, "wrong seed");
        assert_eq!(decode(40_001, 0xD5, &bytes), None, "wrong budget");
        let mut wrong_version = bytes.clone();
        wrong_version[4] ^= 1;
        assert_eq!(decode(40_000, 0xD5, &wrong_version), None, "version");
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode(40_000, 0xD5, &bad_magic), None, "magic");
        assert_eq!(
            decode(40_000, 0xD5, &bytes[..bytes.len() - 1]),
            None,
            "truncated"
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(decode(40_000, 0xD5, &trailing), None, "trailing bytes");
        let mut bad_tag = bytes;
        let tag_at = 4 + 4 + 8 + 8 + 8;
        bad_tag[tag_at] = 9;
        assert_eq!(decode(40_000, 0xD5, &bad_tag), None, "unknown tag");
    }

    #[test]
    fn decode_rejects_wrapping_count_header() {
        // A crafted header whose `count × 9` wraps to exactly the
        // trailing byte count must be rejected, not trusted into a
        // huge allocation (9 is odd, hence invertible mod 2^64).
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(9u64.wrapping_mul(inv)));
        }
        assert_eq!(inv.wrapping_mul(9), 1);
        let evil_count = inv.wrapping_mul(7);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&evil_count.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 7]);
        assert_eq!(decode(1, 2, &bytes), None);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode(1, 2, &[]);
        assert_eq!(decode(1, 2, &bytes), Some(Vec::new()));
    }

    #[test]
    fn store_then_load_round_trips_via_disk() {
        // Uses the real cache directory (under the workspace target/);
        // the key is private to this test so parallel suites cannot
        // collide. Skipped silently when the disk tier is disabled.
        if cache_dir().is_none() {
            return;
        }
        let trace = sample();
        store("disk_roundtrip_test", 123_456, 777, &trace);
        assert_eq!(load("disk_roundtrip_test", 123_456, 777), Some(trace));
        assert_eq!(load("disk_roundtrip_test", 123_456, 778), None, "other key");
    }

    #[test]
    fn counters_live_in_the_global_registry() {
        let before = trace_cache_stats();
        count_memory_hit();
        count_disk_hit();
        count_generated();
        let after = trace_cache_stats();
        assert_eq!(after.memory_hits, before.memory_hits + 1);
        assert_eq!(after.disk_hits, before.disk_hits + 1);
        assert_eq!(after.generated, before.generated + 1);
        let snap = Registry::global().snapshot();
        assert_eq!(
            snap.counter("workloads.trace_cache.memory_hits"),
            after.memory_hits,
            "stats and the registry read the same counter"
        );
        assert!(snap.counter_prefix_sum("workloads.trace_cache.") >= 3);
    }

    #[test]
    fn file_names_are_sanitized() {
        assert_eq!(file_name("mcf", 10, 2), "mcf-10-2.trace");
        assert_eq!(file_name("../evil", 1, 1), "___evil-1-1.trace");
    }
}
