//! Synthetic graphs in CSR form for the GAPBS kernels.
//!
//! The GAP Benchmark Suite runs on Kronecker/uniform synthetic graphs; we
//! generate a power-law-ish graph with a deterministic RNG so traces are
//! reproducible. The CSR arrays are also given *memory layout* base
//! addresses, because the kernels emit the address stream of their real
//! data-structure accesses.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A directed graph in compressed-sparse-row form.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// Per-vertex offsets into `neighbors` (len = vertices + 1).
    pub offsets: Vec<u32>,
    /// Flattened adjacency lists.
    pub neighbors: Vec<u32>,
}

/// `(vertices, avg_degree, seed)` — the full generation-parameter key of
/// a memoized graph.
type GraphKey = (u32, u32, u64);

/// Process-wide memo of generated graphs keyed by their full generation
/// parameters. Sweeps re-request the same graph for every benchmark ×
/// configuration × advance-policy pass; regeneration (minutes at the
/// default 2^21-vertex scale) is pure repeated work, while the CSR arrays
/// themselves are immutable and safely shared.
fn graph_cache() -> &'static Mutex<HashMap<GraphKey, Arc<CsrGraph>>> {
    static CACHE: OnceLock<Mutex<HashMap<GraphKey, Arc<CsrGraph>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Base virtual addresses of the graph data structures in the simulated
/// address space (distinct regions so streams do not alias).
#[derive(Debug, Clone, Copy)]
pub struct GraphLayout {
    /// Base of the offsets array (4 B elements).
    pub offsets_base: u64,
    /// Base of the neighbors array (4 B elements).
    pub neighbors_base: u64,
    /// Base of the first per-vertex property array (8 B elements).
    pub prop_a_base: u64,
    /// Base of the second per-vertex property array (8 B elements).
    pub prop_b_base: u64,
    /// Base of the worklist/frontier region (4 B elements).
    pub frontier_base: u64,
}

impl Default for GraphLayout {
    fn default() -> Self {
        Self {
            offsets_base: 0x1000_0000,
            neighbors_base: 0x4000_0000,
            prop_a_base: 0x8000_0000,
            prop_b_base: 0xA000_0000,
            frontier_base: 0xC000_0000,
        }
    }
}

impl CsrGraph {
    /// As [`Self::synthetic`], memoized per `(vertices, avg_degree,
    /// seed)`: the first request generates and caches the graph, every
    /// later request for the same parameters shares it. Use this from
    /// sweeps so repeated trace generation stops rebuilding identical
    /// graphs.
    pub fn shared(vertices: u32, avg_degree: u32, seed: u64) -> Arc<CsrGraph> {
        let key: GraphKey = (vertices, avg_degree, seed);
        if let Some(g) = graph_cache().lock().expect("graph cache").get(&key) {
            return Arc::clone(g);
        }
        // Generate outside the lock: graph construction is expensive and
        // other keys' lookups should not serialize behind it. A racing
        // generation of the same key is deterministic, so whichever insert
        // lands first wins and the duplicate is dropped.
        let generated = Arc::new(Self::synthetic(vertices, avg_degree, seed));
        let mut cache = graph_cache().lock().expect("graph cache");
        Arc::clone(cache.entry(key).or_insert(generated))
    }

    /// Generates a graph with `vertices` vertices and average degree
    /// `avg_degree`, with a skewed (power-law-ish) degree distribution.
    pub fn synthetic(vertices: u32, avg_degree: u32, seed: u64) -> Self {
        assert!(vertices >= 2, "graph needs at least two vertices");
        let mut rng = SmallRng::seed_from_u64(seed);
        let total_edges = u64::from(vertices) * u64::from(avg_degree);
        // Skewed degree assignment: half the edges go to the first
        // sqrt-sized hub set, the rest uniformly.
        let mut degrees = vec![0u32; vertices as usize];
        let hubs = (f64::from(vertices).sqrt() as u32).max(1);
        for _ in 0..total_edges {
            let u = if rng.gen_bool(0.3) {
                rng.gen_range(0..hubs)
            } else {
                rng.gen_range(0..vertices)
            };
            degrees[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(vertices as usize + 1);
        offsets.push(0u32);
        for d in &degrees {
            let last = *offsets.last().expect("nonempty");
            offsets.push(last + d);
        }
        let mut neighbors = Vec::with_capacity(total_edges as usize);
        for u in 0..vertices {
            for _ in 0..degrees[u as usize] {
                // Destination skew mirrors the source skew.
                let v = if rng.gen_bool(0.3) {
                    rng.gen_range(0..hubs)
                } else {
                    rng.gen_range(0..vertices)
                };
                neighbors.push(v);
            }
        }
        // Sort each adjacency list (GAPBS graphs are sorted; also needed
        // for triangle counting's merge intersections).
        for u in 0..vertices as usize {
            let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
            neighbors[s..e].sort_unstable();
        }
        Self { offsets, neighbors }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    pub fn edges(&self) -> u64 {
        self.neighbors.len() as u64
    }

    /// The adjacency list of `u`.
    pub fn neighbors_of(&self, u: u32) -> &[u32] {
        let s = self.offsets[u as usize] as usize;
        let e = self.offsets[u as usize + 1] as usize;
        &self.neighbors[s..e]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let g = CsrGraph::synthetic(1000, 8, 42);
        assert_eq!(g.vertices(), 1000);
        assert_eq!(g.edges(), 8000);
        assert_eq!(*g.offsets.last().unwrap() as u64, g.edges());
    }

    #[test]
    fn neighbors_in_range_and_sorted() {
        let g = CsrGraph::synthetic(500, 10, 7);
        for u in 0..g.vertices() {
            let adj = g.neighbors_of(u);
            assert!(adj.windows(2).all(|w| w[0] <= w[1]), "sorted");
            assert!(adj.iter().all(|&v| v < g.vertices()));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = CsrGraph::synthetic(200, 4, 9);
        let b = CsrGraph::synthetic(200, 4, 9);
        assert_eq!(a.neighbors, b.neighbors);
        let c = CsrGraph::synthetic(200, 4, 10);
        assert_ne!(a.neighbors, c.neighbors);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = CsrGraph::synthetic(10_000, 16, 1);
        let max_deg = (0..g.vertices())
            .map(|u| g.neighbors_of(u).len())
            .max()
            .unwrap();
        assert!(max_deg > 16 * 5, "hubs should be much hotter than average");
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    #[test]
    fn shared_memoizes_per_parameters() {
        let a = CsrGraph::shared(300, 4, 11);
        let b = CsrGraph::shared(300, 4, 11);
        assert!(Arc::ptr_eq(&a, &b), "same parameters share one graph");
        let c = CsrGraph::shared(300, 4, 12);
        assert!(!Arc::ptr_eq(&a, &c), "different seed is a different entry");
        let d = CsrGraph::shared(301, 4, 11);
        assert!(!Arc::ptr_eq(&a, &d), "different size is a different entry");
        assert_eq!(a.neighbors, CsrGraph::synthetic(300, 4, 11).neighbors);
    }

    #[test]
    fn shared_is_thread_safe() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| CsrGraph::shared(500, 6, 77)))
            .collect();
        let graphs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for g in &graphs[1..] {
            assert!(Arc::ptr_eq(&graphs[0], g));
        }
    }
}
