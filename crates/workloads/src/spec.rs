//! SPEC CPU2017-calibrated synthetic trace generators.
//!
//! The paper evaluates 200M-instruction SimPoints of the SPEC CPU2017 rate
//! suite. Those binaries (and Pin) are unavailable here, so each benchmark
//! is modelled by a generator tuned along the three axes the evaluation
//! actually depends on: LLC miss rate (footprint + hot-set fraction),
//! access pattern (streaming / random / pointer-chase — which determines
//! both prefetcher efficacy and security-metadata locality), and write
//! intensity (which interacts with SecDDR's longer write bursts; see lbm).
//! DESIGN.md records this substitution.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cpu_model::TraceOp;

use crate::sink::TraceSink;

/// Memory access pattern class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// `streams` concurrent sequential streams (prefetch-friendly).
    Stream {
        /// Number of concurrent streams.
        streams: u32,
    },
    /// Uniform random over the cold footprint.
    Random,
    /// Serialized pointer chasing over the cold footprint.
    Chase,
    /// A mix of streaming and random with the given streaming fraction.
    Mixed {
        /// Probability that a cold access continues a stream.
        stream_frac: f64,
    },
}

/// Calibration parameters for one SPEC benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecProfile {
    /// Benchmark name as the paper labels it.
    pub name: &'static str,
    /// Cold-data footprint in bytes.
    pub footprint: u64,
    /// Hot working-set size in bytes (intended to be cache-resident).
    pub hot_bytes: u64,
    /// Probability a memory access targets the hot set.
    pub hot_frac: f64,
    /// Non-memory instructions per memory instruction.
    pub compute_per_mem: u32,
    /// Fraction of memory accesses that are stores.
    pub write_frac: f64,
    /// Cold-access pattern.
    pub pattern: Pattern,
}

impl SpecProfile {
    /// Generates a trace of `instruction_budget` instructions.
    pub fn generate(&self, instruction_budget: u64, seed: u64) -> Vec<TraceOp> {
        let mut sink = TraceSink::new(instruction_budget);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EC0_DD12);
        let hot_base: u64 = 0x1_0000_0000;
        let cold_base: u64 = 0x2_0000_0000;
        let streams = match self.pattern {
            Pattern::Stream { streams } => streams.max(1),
            Pattern::Mixed { .. } => 4,
            _ => 1,
        };
        let mut cursors: Vec<u64> = (0..streams)
            .map(|i| u64::from(i) * (self.footprint / u64::from(streams)))
            .collect();
        let mut which = 0usize;
        let mut chase_ptr = 0u64;
        while !sink.full() {
            sink.compute(self.compute_per_mem);
            let is_write = rng.gen_bool(self.write_frac);
            if rng.gen_bool(self.hot_frac) {
                let addr = hot_base + (rng.gen_range(0..self.hot_bytes) & !7);
                if is_write {
                    sink.store(addr);
                } else {
                    sink.load(addr);
                }
                continue;
            }
            let cold_random =
                |rng: &mut SmallRng| cold_base + (rng.gen_range(0..self.footprint) & !7);
            match self.pattern {
                Pattern::Stream { .. } => {
                    let c = &mut cursors[which];
                    let addr = cold_base + *c;
                    *c = (*c + 8) % self.footprint;
                    which = (which + 1) % cursors.len();
                    if is_write {
                        sink.store(addr);
                    } else {
                        sink.load(addr);
                    }
                }
                Pattern::Random => {
                    let addr = cold_random(&mut rng);
                    if is_write {
                        sink.store(addr);
                    } else {
                        sink.load(addr);
                    }
                }
                Pattern::Chase => {
                    // Deterministic permutation walk: next pointer derived
                    // from the current one, serialized via DependentLoad.
                    chase_ptr = chase_ptr
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let addr = cold_base + ((chase_ptr % self.footprint) & !7);
                    if is_write {
                        sink.store(addr);
                    } else {
                        sink.chase(addr);
                    }
                }
                Pattern::Mixed { stream_frac } => {
                    if rng.gen_bool(stream_frac) {
                        let c = &mut cursors[which];
                        let addr = cold_base + *c;
                        *c = (*c + 8) % self.footprint;
                        which = (which + 1) % cursors.len();
                        if is_write {
                            sink.store(addr);
                        } else {
                            sink.load(addr);
                        }
                    } else {
                        let addr = cold_random(&mut rng);
                        if is_write {
                            sink.store(addr);
                        } else {
                            sink.load(addr);
                        }
                    }
                }
            }
        }
        sink.into_trace()
    }
}

const MB: u64 = 1 << 20;

/// The 23 SPEC CPU2017 profiles in the order Figure 6 lists them.
pub fn spec_profiles() -> Vec<SpecProfile> {
    vec![
        SpecProfile {
            name: "perlbench",
            footprint: 64 * MB,
            hot_bytes: 2 * MB,
            hot_frac: 0.97,
            compute_per_mem: 4,
            write_frac: 0.30,
            pattern: Pattern::Mixed { stream_frac: 0.5 },
        },
        SpecProfile {
            name: "gcc",
            footprint: 128 * MB,
            hot_bytes: 2 * MB,
            hot_frac: 0.93,
            compute_per_mem: 4,
            write_frac: 0.30,
            pattern: Pattern::Mixed { stream_frac: 0.5 },
        },
        SpecProfile {
            name: "mcf",
            footprint: 1024 * MB,
            hot_bytes: MB,
            hot_frac: 0.35,
            compute_per_mem: 3,
            write_frac: 0.15,
            pattern: Pattern::Chase,
        },
        SpecProfile {
            name: "omnetpp",
            footprint: 512 * MB,
            hot_bytes: MB,
            hot_frac: 0.50,
            compute_per_mem: 3,
            write_frac: 0.30,
            pattern: Pattern::Random,
        },
        SpecProfile {
            name: "xalancbmk",
            footprint: 64 * MB,
            hot_bytes: 2 * MB,
            hot_frac: 0.95,
            compute_per_mem: 4,
            write_frac: 0.20,
            pattern: Pattern::Random,
        },
        SpecProfile {
            name: "x264",
            footprint: 32 * MB,
            hot_bytes: 3 * MB,
            hot_frac: 0.97,
            compute_per_mem: 6,
            write_frac: 0.35,
            pattern: Pattern::Stream { streams: 4 },
        },
        SpecProfile {
            name: "deepsjeng",
            footprint: 8 * MB,
            hot_bytes: 3 * MB,
            hot_frac: 0.97,
            compute_per_mem: 6,
            write_frac: 0.25,
            pattern: Pattern::Random,
        },
        SpecProfile {
            name: "leela",
            footprint: 4 * MB,
            hot_bytes: 2 * MB,
            hot_frac: 0.98,
            compute_per_mem: 8,
            write_frac: 0.20,
            pattern: Pattern::Random,
        },
        SpecProfile {
            name: "exchange2",
            footprint: MB,
            hot_bytes: MB / 2,
            hot_frac: 0.999,
            compute_per_mem: 12,
            write_frac: 0.30,
            pattern: Pattern::Random,
        },
        SpecProfile {
            name: "xz",
            footprint: 256 * MB,
            hot_bytes: 2 * MB,
            hot_frac: 0.65,
            compute_per_mem: 4,
            write_frac: 0.30,
            pattern: Pattern::Random,
        },
        SpecProfile {
            name: "bwaves",
            footprint: 768 * MB,
            hot_bytes: MB,
            hot_frac: 0.20,
            compute_per_mem: 3,
            write_frac: 0.25,
            pattern: Pattern::Stream { streams: 16 },
        },
        SpecProfile {
            name: "cactuBSSN",
            footprint: 256 * MB,
            hot_bytes: 2 * MB,
            hot_frac: 0.88,
            compute_per_mem: 4,
            write_frac: 0.35,
            pattern: Pattern::Stream { streams: 12 },
        },
        SpecProfile {
            name: "namd",
            footprint: 64 * MB,
            hot_bytes: 3 * MB,
            hot_frac: 0.96,
            compute_per_mem: 8,
            write_frac: 0.20,
            pattern: Pattern::Stream { streams: 8 },
        },
        SpecProfile {
            name: "parest",
            footprint: 128 * MB,
            hot_bytes: 3 * MB,
            hot_frac: 0.90,
            compute_per_mem: 5,
            write_frac: 0.25,
            pattern: Pattern::Mixed { stream_frac: 0.6 },
        },
        SpecProfile {
            name: "povray",
            footprint: 2 * MB,
            hot_bytes: MB,
            hot_frac: 0.995,
            compute_per_mem: 10,
            write_frac: 0.20,
            pattern: Pattern::Random,
        },
        SpecProfile {
            name: "lbm",
            footprint: 512 * MB,
            hot_bytes: MB / 2,
            hot_frac: 0.10,
            compute_per_mem: 3,
            write_frac: 0.50,
            pattern: Pattern::Stream { streams: 8 },
        },
        SpecProfile {
            name: "wrf",
            footprint: 256 * MB,
            hot_bytes: 2 * MB,
            hot_frac: 0.85,
            compute_per_mem: 4,
            write_frac: 0.30,
            pattern: Pattern::Stream { streams: 8 },
        },
        SpecProfile {
            name: "blender",
            footprint: 64 * MB,
            hot_bytes: 2 * MB,
            hot_frac: 0.94,
            compute_per_mem: 6,
            write_frac: 0.25,
            pattern: Pattern::Mixed { stream_frac: 0.5 },
        },
        SpecProfile {
            name: "cam4",
            footprint: 128 * MB,
            hot_bytes: 3 * MB,
            hot_frac: 0.92,
            compute_per_mem: 5,
            write_frac: 0.30,
            pattern: Pattern::Mixed { stream_frac: 0.6 },
        },
        SpecProfile {
            name: "imagick",
            footprint: 16 * MB,
            hot_bytes: 2 * MB,
            hot_frac: 0.985,
            compute_per_mem: 10,
            write_frac: 0.30,
            pattern: Pattern::Stream { streams: 2 },
        },
        SpecProfile {
            name: "nab",
            footprint: 16 * MB,
            hot_bytes: 3 * MB,
            hot_frac: 0.96,
            compute_per_mem: 8,
            write_frac: 0.25,
            pattern: Pattern::Random,
        },
        SpecProfile {
            name: "fotonik3d",
            footprint: 512 * MB,
            hot_bytes: MB,
            hot_frac: 0.25,
            compute_per_mem: 3,
            write_frac: 0.30,
            pattern: Pattern::Stream { streams: 12 },
        },
        SpecProfile {
            name: "roms",
            footprint: 512 * MB,
            hot_bytes: MB,
            hot_frac: 0.30,
            compute_per_mem: 4,
            write_frac: 0.35,
            pattern: Pattern::Stream { streams: 12 },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_generate_within_budget() {
        for p in spec_profiles() {
            let t = p.generate(20_000, 1);
            let instrs: u64 = t.iter().map(|o| o.instructions()).sum();
            assert!(
                (19_000..=21_000).contains(&instrs),
                "{}: {instrs} instructions",
                p.name
            );
        }
    }

    #[test]
    fn profile_count_matches_figure_6() {
        assert_eq!(spec_profiles().len(), 23);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = spec_profiles()[2]; // mcf
        assert_eq!(p.generate(10_000, 9), p.generate(10_000, 9));
    }

    #[test]
    fn write_fraction_roughly_respected() {
        let p = spec_profiles()
            .into_iter()
            .find(|p| p.name == "lbm")
            .unwrap();
        let t = p.generate(100_000, 2);
        let (mut loads, mut stores) = (0u64, 0u64);
        for op in &t {
            match op {
                TraceOp::Load(_) | TraceOp::DependentLoad(_) => loads += 1,
                TraceOp::Store(_) => stores += 1,
                _ => {}
            }
        }
        let frac = stores as f64 / (loads + stores) as f64;
        assert!((frac - 0.5).abs() < 0.05, "lbm write fraction {frac}");
    }

    #[test]
    fn mcf_uses_dependent_loads() {
        let p = spec_profiles()[2];
        let t = p.generate(50_000, 3);
        assert!(t.iter().any(|o| matches!(o, TraceOp::DependentLoad(_))));
    }

    #[test]
    fn hot_set_dominates_low_mpki_benchmarks() {
        let p = spec_profiles()
            .into_iter()
            .find(|p| p.name == "povray")
            .unwrap();
        let t = p.generate(100_000, 4);
        let cold = t
            .iter()
            .filter_map(|o| o.address())
            .filter(|a| *a >= 0x2_0000_0000)
            .count();
        let total = t.iter().filter(|o| o.address().is_some()).count();
        assert!((cold as f64) < total as f64 * 0.02, "{cold}/{total} cold");
    }
}
