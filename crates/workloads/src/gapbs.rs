//! GAP Benchmark Suite kernels instrumented to emit their memory address
//! streams.
//!
//! Each kernel genuinely executes on a synthetic CSR graph while recording
//! the loads/stores of its real data structures (offsets, adjacency lists,
//! per-vertex property arrays, frontiers) into a [`TraceSink`]. The access
//! patterns are therefore authentic: `pr`/`sssp`/`bc` scatter reads across
//! the property arrays (the low-locality behaviour that makes integrity
//! trees expensive in Figure 6), while `tc`'s merge intersections are
//! largely sequential (the high counter-cache locality the paper notes).

use cpu_model::TraceOp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::{CsrGraph, GraphLayout};
use crate::sink::TraceSink;

/// Which GAPBS kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Breadth-first search (top-down).
    Bfs,
    /// PageRank (pull direction).
    Pr,
    /// Connected components (label propagation).
    Cc,
    /// Betweenness centrality (one source, Brandes).
    Bc,
    /// Single-source shortest paths (Bellman-Ford rounds over active set).
    Sssp,
    /// Triangle counting (sorted-list intersection).
    Tc,
}

impl Kernel {
    /// Kernel name as the paper labels it.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Bfs => "bfs",
            Kernel::Pr => "pr",
            Kernel::Cc => "cc",
            Kernel::Bc => "bc",
            Kernel::Sssp => "sssp",
            Kernel::Tc => "tc",
        }
    }
}

struct Emitter<'a> {
    sink: &'a mut TraceSink,
    layout: GraphLayout,
}

impl Emitter<'_> {
    fn off(&mut self, u: u32) {
        self.sink.load(self.layout.offsets_base + u64::from(u) * 4);
    }
    fn nbr(&mut self, i: u64) {
        self.sink.load(self.layout.neighbors_base + i * 4);
    }
    fn pa_load(&mut self, u: u32) {
        self.sink.load(self.layout.prop_a_base + u64::from(u) * 8);
    }
    fn pa_store(&mut self, u: u32) {
        self.sink.store(self.layout.prop_a_base + u64::from(u) * 8);
    }
    fn pb_load(&mut self, u: u32) {
        self.sink.load(self.layout.prop_b_base + u64::from(u) * 8);
    }
    fn pb_store(&mut self, u: u32) {
        self.sink.store(self.layout.prop_b_base + u64::from(u) * 8);
    }
    fn frontier_load(&mut self, i: u64) {
        self.sink.load(self.layout.frontier_base + i * 4);
    }
    fn frontier_store(&mut self, i: u64) {
        self.sink.store(self.layout.frontier_base + i * 4);
    }
}

/// Runs `kernel` on `graph`, recording the address stream until
/// `instruction_budget` instructions have been emitted (re-running the
/// kernel from new sources if it finishes early).
pub fn trace(
    kernel: Kernel,
    graph: &CsrGraph,
    layout: GraphLayout,
    instruction_budget: u64,
    seed: u64,
) -> Vec<TraceOp> {
    let mut sink = TraceSink::new(instruction_budget);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut round = 0u64;
    while !sink.full() && round < 64 {
        let source = rng.gen_range(0..graph.vertices());
        let mut em = Emitter {
            sink: &mut sink,
            layout,
        };
        match kernel {
            Kernel::Bfs => bfs(graph, source, &mut em),
            Kernel::Pr => pagerank(graph, &mut em),
            Kernel::Cc => cc(graph, &mut em),
            Kernel::Bc => bc(graph, source, &mut em),
            Kernel::Sssp => sssp(graph, source, &mut em),
            Kernel::Tc => tc(graph, &mut em),
        }
        round += 1;
    }
    sink.into_trace()
}

fn bfs(g: &CsrGraph, source: u32, em: &mut Emitter<'_>) {
    let mut parent = vec![u32::MAX; g.vertices() as usize];
    parent[source as usize] = source;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut fpos = 0u64;
    while !frontier.is_empty() && !em.sink.full() {
        for &u in &frontier {
            if em.sink.full() {
                break;
            }
            em.frontier_load(fpos);
            fpos += 1;
            em.off(u);
            em.off(u + 1);
            let (s, e) = (
                g.offsets[u as usize] as u64,
                g.offsets[u as usize + 1] as u64,
            );
            for i in s..e {
                em.nbr(i);
                let v = g.neighbors[i as usize];
                em.pa_load(v); // parent check: scattered read
                em.sink.compute(2);
                if parent[v as usize] == u32::MAX {
                    parent[v as usize] = u;
                    em.pa_store(v);
                    em.frontier_store(fpos + next.len() as u64);
                    next.push(v);
                }
            }
        }
        frontier = std::mem::take(&mut next);
    }
}

fn pagerank(g: &CsrGraph, em: &mut Emitter<'_>) {
    let v = g.vertices();
    for _iter in 0..2 {
        for u in 0..v {
            if em.sink.full() {
                return;
            }
            em.off(u);
            em.off(u + 1);
            let (s, e) = (
                g.offsets[u as usize] as u64,
                g.offsets[u as usize + 1] as u64,
            );
            for i in s..e {
                em.nbr(i);
                let w = g.neighbors[i as usize];
                em.pa_load(w); // incoming rank: the classic scatter
                em.sink.compute(3);
            }
            em.pb_store(u);
            em.sink.compute(6);
        }
    }
}

fn cc(g: &CsrGraph, em: &mut Emitter<'_>) {
    let v = g.vertices() as usize;
    let mut label: Vec<u32> = (0..v as u32).collect();
    for _iter in 0..3 {
        let mut changed = false;
        for u in 0..v as u32 {
            if em.sink.full() {
                return;
            }
            em.off(u);
            em.off(u + 1);
            em.pa_load(u);
            let (s, e) = (
                g.offsets[u as usize] as u64,
                g.offsets[u as usize + 1] as u64,
            );
            for i in s..e {
                em.nbr(i);
                let w = g.neighbors[i as usize] as usize;
                em.pa_load(w as u32);
                em.sink.compute(2);
                if label[w] < label[u as usize] {
                    label[u as usize] = label[w];
                    em.pa_store(u);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

fn bc(g: &CsrGraph, source: u32, em: &mut Emitter<'_>) {
    // Forward BFS counting shortest paths (sigma in prop_a), then a
    // backward dependency accumulation (delta in prop_b).
    let v = g.vertices() as usize;
    let mut depth = vec![i32::MAX; v];
    let mut order: Vec<u32> = Vec::new();
    depth[source as usize] = 0;
    let mut frontier = vec![source];
    while !frontier.is_empty() && !em.sink.full() {
        let mut next = Vec::new();
        for &u in &frontier {
            if em.sink.full() {
                return;
            }
            order.push(u);
            em.off(u);
            em.off(u + 1);
            let (s, e) = (
                g.offsets[u as usize] as u64,
                g.offsets[u as usize + 1] as u64,
            );
            for i in s..e {
                em.nbr(i);
                let w = g.neighbors[i as usize];
                em.pa_load(w); // sigma
                em.sink.compute(2);
                if depth[w as usize] == i32::MAX {
                    depth[w as usize] = depth[u as usize] + 1;
                    em.pa_store(w);
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    for &u in order.iter().rev() {
        if em.sink.full() {
            return;
        }
        em.off(u);
        em.off(u + 1);
        let (s, e) = (
            g.offsets[u as usize] as u64,
            g.offsets[u as usize + 1] as u64,
        );
        for i in s..e {
            em.nbr(i);
            let w = g.neighbors[i as usize];
            em.pb_load(w); // delta
            em.sink.compute(4);
        }
        em.pb_store(u);
    }
}

fn sssp(g: &CsrGraph, source: u32, em: &mut Emitter<'_>) {
    // Bellman-Ford over an active worklist with unit-ish weights derived
    // from vertex ids (deterministic).
    let v = g.vertices() as usize;
    let mut dist = vec![u64::MAX; v];
    dist[source as usize] = 0;
    let mut active = vec![source];
    let mut rounds = 0;
    while !active.is_empty() && rounds < 16 && !em.sink.full() {
        let mut next = Vec::new();
        for (i, &u) in active.iter().enumerate() {
            if em.sink.full() {
                return;
            }
            em.frontier_load(i as u64);
            em.off(u);
            em.off(u + 1);
            em.pa_load(u); // dist[u]
            let (s, e) = (
                g.offsets[u as usize] as u64,
                g.offsets[u as usize + 1] as u64,
            );
            for j in s..e {
                em.nbr(j);
                let w = g.neighbors[j as usize];
                em.pa_load(w); // dist[w]: scattered
                em.sink.compute(3);
                let weight = u64::from(w % 16) + 1;
                if dist[u as usize] != u64::MAX && dist[u as usize] + weight < dist[w as usize] {
                    dist[w as usize] = dist[u as usize] + weight;
                    em.pa_store(w);
                    next.push(w);
                }
            }
        }
        active = next;
        rounds += 1;
    }
}

fn tc(g: &CsrGraph, em: &mut Emitter<'_>) {
    // Sorted-list intersection: mostly sequential scans of two adjacency
    // ranges — high spatial locality.
    let v = g.vertices();
    for u in 0..v {
        if em.sink.full() {
            return;
        }
        em.off(u);
        em.off(u + 1);
        let adj_u = g.neighbors_of(u);
        let (su, _) = (g.offsets[u as usize] as u64, 0);
        for (k, &w) in adj_u.iter().enumerate() {
            if w <= u {
                continue;
            }
            if em.sink.full() {
                return;
            }
            em.nbr(su + k as u64);
            em.off(w);
            em.off(w + 1);
            let adj_w = g.neighbors_of(w);
            let sw = g.offsets[w as usize] as u64;
            // Merge-intersect the two sorted lists.
            let (mut i, mut j) = (0usize, 0usize);
            while i < adj_u.len() && j < adj_w.len() {
                em.nbr(su + i as u64);
                em.nbr(sw + j as u64);
                em.sink.compute(2);
                match adj_u[i].cmp(&adj_w[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                    }
                }
                if em.sink.full() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> CsrGraph {
        CsrGraph::synthetic(2000, 8, 3)
    }

    #[test]
    fn all_kernels_emit_traces() {
        let g = small_graph();
        for k in [
            Kernel::Bfs,
            Kernel::Pr,
            Kernel::Cc,
            Kernel::Bc,
            Kernel::Sssp,
            Kernel::Tc,
        ] {
            let t = trace(k, &g, GraphLayout::default(), 50_000, 1);
            let instrs: u64 = t.iter().map(|o| o.instructions()).sum();
            assert!(
                instrs >= 45_000,
                "{} produced only {instrs} instructions",
                k.name()
            );
            let mem_ops = t.iter().filter(|o| o.address().is_some()).count();
            assert!(mem_ops > 1000, "{} too few memory ops: {mem_ops}", k.name());
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let g = small_graph();
        let a = trace(Kernel::Pr, &g, GraphLayout::default(), 20_000, 5);
        let b = trace(Kernel::Pr, &g, GraphLayout::default(), 20_000, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn budget_respected() {
        let g = small_graph();
        for k in [Kernel::Bfs, Kernel::Tc] {
            let t = trace(k, &g, GraphLayout::default(), 10_000, 1);
            let instrs: u64 = t.iter().map(|o| o.instructions()).sum();
            assert!(instrs <= 10_100, "{}: {instrs}", k.name());
        }
    }

    #[test]
    fn pr_scatters_more_than_tc() {
        // Distinct-line working sets: pr touches the property array all
        // over; tc mostly walks adjacency ranges linearly. Compare unique
        // lines per memory op.
        let g = CsrGraph::synthetic(20_000, 12, 4);
        let uniq_ratio = |k: Kernel| -> f64 {
            let t = trace(k, &g, GraphLayout::default(), 100_000, 2);
            let mem: Vec<u64> = t
                .iter()
                .filter_map(|o| o.address())
                .map(|a| a >> 6)
                .collect();
            let uniq: std::collections::HashSet<u64> = mem.iter().copied().collect();
            uniq.len() as f64 / mem.len() as f64
        };
        let pr = uniq_ratio(Kernel::Pr);
        let tc = uniq_ratio(Kernel::Tc);
        assert!(pr > tc, "pr {pr} should scatter more than tc {tc}");
    }
}
