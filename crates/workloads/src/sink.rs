//! Budgeted trace recorder used by the workload generators.

use cpu_model::TraceOp;

/// Collects [`TraceOp`]s up to an instruction budget.
///
/// Kernels call [`TraceSink::load`]/[`TraceSink::store`]/
/// [`TraceSink::compute`] as they execute and poll [`TraceSink::full`] to
/// stop early once the budget is reached (mirroring the paper's
/// 200M-instruction SimPoint regions, scaled down).
#[derive(Debug)]
pub struct TraceSink {
    ops: Vec<TraceOp>,
    instructions: u64,
    budget: u64,
    pending_compute: u32,
}

impl TraceSink {
    /// A sink that stops accepting work after `instruction_budget`
    /// instructions.
    pub fn new(instruction_budget: u64) -> Self {
        Self {
            ops: Vec::with_capacity(1024),
            instructions: 0,
            budget: instruction_budget,
            pending_compute: 0,
        }
    }

    /// True once the budget is exhausted.
    pub fn full(&self) -> bool {
        self.instructions >= self.budget
    }

    /// Instructions recorded so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    fn flush_compute(&mut self) {
        if self.pending_compute > 0 {
            self.ops.push(TraceOp::Compute(self.pending_compute));
            self.pending_compute = 0;
        }
    }

    /// Records `n` non-memory instructions (coalesced).
    pub fn compute(&mut self, n: u32) {
        if self.full() {
            return;
        }
        self.pending_compute += n;
        self.instructions += u64::from(n);
        if self.pending_compute >= 1 << 16 {
            self.flush_compute();
        }
    }

    /// Records a load.
    pub fn load(&mut self, addr: u64) {
        if self.full() {
            return;
        }
        self.flush_compute();
        self.ops.push(TraceOp::Load(addr));
        self.instructions += 1;
    }

    /// Records a pointer-chase load (serialized behind the previous one).
    pub fn chase(&mut self, addr: u64) {
        if self.full() {
            return;
        }
        self.flush_compute();
        self.ops.push(TraceOp::DependentLoad(addr));
        self.instructions += 1;
    }

    /// Records a store.
    pub fn store(&mut self, addr: u64) {
        if self.full() {
            return;
        }
        self.flush_compute();
        self.ops.push(TraceOp::Store(addr));
        self.instructions += 1;
    }

    /// Finishes recording and returns the trace.
    pub fn into_trace(mut self) -> Vec<TraceOp> {
        self.flush_compute();
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_compute() {
        let mut s = TraceSink::new(1000);
        s.compute(5);
        s.compute(7);
        s.load(0x40);
        let t = s.into_trace();
        assert_eq!(t, vec![TraceOp::Compute(12), TraceOp::Load(0x40)]);
    }

    #[test]
    fn respects_budget() {
        let mut s = TraceSink::new(10);
        for i in 0..100 {
            s.load(i * 64);
        }
        assert!(s.full());
        let t = s.into_trace();
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn instruction_count_matches() {
        let mut s = TraceSink::new(1000);
        s.compute(30);
        s.load(0);
        s.store(64);
        s.chase(128);
        assert_eq!(s.instructions(), 33);
        let total: u64 = s.into_trace().iter().map(|o| o.instructions()).sum();
        assert_eq!(total, 33);
    }

    #[test]
    fn trailing_compute_flushed() {
        let mut s = TraceSink::new(1000);
        s.load(0);
        s.compute(9);
        let t = s.into_trace();
        assert_eq!(t.last(), Some(&TraceOp::Compute(9)));
    }
}
