//! Line-granularity address interleaving across channel shards.
//!
//! An [`Interleave`] maps every physical line address to exactly one
//! `(shard, local address)` pair and back. Both policies are bijections,
//! so each shard sees a *dense* local line space (consecutive local lines
//! are every-Nth physical lines) and no two physical lines alias to the
//! same slot of the same shard — the property the bijectivity proptests
//! pin for every shard count in `1..=8`.

/// Cache-line size the interleave operates at, in bytes. Matches the
/// line size everywhere else in the stack (`CpuConfig::line_bytes`,
/// the metadata layout's 64-byte lines).
pub const LINE_BYTES: u64 = 64;

const LINE_SHIFT: u32 = LINE_BYTES.trailing_zeros();

/// Which hash spreads lines over shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterleavePolicy {
    /// `shard = line mod N`, `local line = line / N`. Works for any
    /// shard count; adjacent lines round-robin over the shards.
    Modulo,
    /// `shard = (line ^ (line >> log2 N)) & (N - 1)`,
    /// `local line = line >> log2 N`. Requires a power-of-two shard
    /// count; the XOR fold breaks the pathological case where a strided
    /// stream with stride `k·N` camps on one shard.
    Xor,
}

/// A round-trippable line→(shard, local) mapping for `N` channel shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleave {
    policy: InterleavePolicy,
    shards: u64,
    /// `log2(shards)` (only used by [`InterleavePolicy::Xor`]).
    shift: u32,
}

impl Interleave {
    /// Modulo interleaving over `shards` channels.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    #[must_use]
    pub fn modulo(shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard is required");
        Self {
            policy: InterleavePolicy::Modulo,
            shards: shards as u64,
            shift: 0,
        }
    }

    /// XOR-folded interleaving over `shards` channels.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or not a power of two.
    #[must_use]
    pub fn xor(shards: usize) -> Self {
        assert!(
            shards >= 1 && shards.is_power_of_two(),
            "xor interleaving needs a power-of-two shard count, got {shards}"
        );
        Self {
            policy: InterleavePolicy::Xor,
            shards: shards as u64,
            shift: (shards as u64).trailing_zeros(),
        }
    }

    /// The hash policy.
    #[must_use]
    pub fn policy(&self) -> InterleavePolicy {
        self.policy
    }

    /// Number of shards the address space is interleaved over.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// The shard serving physical address `addr`.
    #[must_use]
    pub fn shard_of(&self, addr: u64) -> usize {
        self.to_local(addr).0
    }

    /// Splits a physical address into `(shard, dense local address)`.
    /// The byte offset within the line is preserved.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn to_local(&self, addr: u64) -> (usize, u64) {
        let line = addr >> LINE_SHIFT;
        let off = addr & (LINE_BYTES - 1);
        let (shard, local_line) = match self.policy {
            InterleavePolicy::Modulo => (line % self.shards, line / self.shards),
            InterleavePolicy::Xor => {
                let mask = self.shards - 1;
                let high = line >> self.shift;
                ((line ^ high) & mask, high)
            }
        };
        (shard as usize, (local_line << LINE_SHIFT) | off)
    }

    /// Reassembles the physical address of `(shard, local)` — the inverse
    /// of [`Self::to_local`].
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range. Local addresses must come
    /// from [`Self::to_local`] (in debug builds, reconstructing a line
    /// beyond the physical address space overflows and panics).
    #[must_use]
    pub fn to_physical(&self, shard: usize, local: u64) -> u64 {
        assert!((shard as u64) < self.shards, "shard {shard} out of range");
        let local_line = local >> LINE_SHIFT;
        let off = local & (LINE_BYTES - 1);
        let line = match self.policy {
            InterleavePolicy::Modulo => local_line * self.shards + shard as u64,
            InterleavePolicy::Xor => {
                let mask = self.shards - 1;
                let low = (shard as u64 ^ local_line) & mask;
                (local_line << self.shift) | low
            }
        };
        (line << LINE_SHIFT) | off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_is_identity() {
        for il in [Interleave::modulo(1), Interleave::xor(1)] {
            for addr in [0u64, 63, 64, 0x1234_5678, u64::from(u32::MAX)] {
                assert_eq!(il.to_local(addr), (0, addr), "{il:?}");
                assert_eq!(il.to_physical(0, addr), addr, "{il:?}");
            }
        }
    }

    #[test]
    fn modulo_round_robins_adjacent_lines() {
        let il = Interleave::modulo(3);
        assert_eq!(il.shard_of(0), 0);
        assert_eq!(il.shard_of(64), 1);
        assert_eq!(il.shard_of(128), 2);
        assert_eq!(il.shard_of(192), 0);
        // Dense local space: lines 0 and 192 are local lines 0 and 1.
        assert_eq!(il.to_local(192), (0, 64));
    }

    #[test]
    fn xor_preserves_offsets_and_round_trips() {
        let il = Interleave::xor(4);
        for line in 0u64..1024 {
            for off in [0u64, 17, 63] {
                let addr = (line << 6) | off;
                let (s, local) = il.to_local(addr);
                assert_eq!(local & 63, off);
                assert_eq!(il.to_physical(s, local), addr);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn xor_rejects_non_power_of_two() {
        let _ = Interleave::xor(6);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn modulo_rejects_zero_shards() {
        let _ = Interleave::modulo(0);
    }
}
