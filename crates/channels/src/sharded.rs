//! N interleaved security-engine + DDR-channel shards behind one
//! [`MemoryBackend`].
//!
//! [`ShardedEngine`] owns N independent [`SecurityEngine`]s (each with its
//! own metadata cache and DDR4 channel) and an [`Interleave`] that splits
//! the physical line space across them. The CPU front-end sees a single
//! backend: tokens, batch results, and completions are translated at this
//! layer, so `CpuSystem` is oblivious to the shard count.
//!
//! The top-level advance is event-driven: each shard registers its
//! memoized [`MemoryBackend::next_event`] lower bound in a min-heap
//! ([`sim_kernel::EventQueue`] with lazy staleness filtering), and
//! [`MemoryBackend::tick`] steps **only the shards whose bound is due**.
//! A shard whose bound is in the future provably has nothing observable
//! to report (the bound contract `CpuSystem` already relies on), so its
//! channel clock is left lagging and caught up wholesale on its next
//! interaction — the per-shard idle windows that grow with N are skipped
//! at the top level instead of being re-proven per shard per cycle.
//! [`ShardedEngine::sync`] catches every shard up to the last observed
//! CPU cycle, which the statistics accessors do implicitly so merged
//! stats are bit-comparable with an always-ticked engine.
//!
//! A lagging shard's wholesale catch-up is itself block-advanced: the
//! engine's `advance` rides the controller's *decision bound*
//! (`DramSystem::tick_until`), so a busy stretch executes only the
//! cycles where a command can issue or a completion pop — not one
//! controller tick per covered busy cycle. The per-shard `next_event`
//! bounds this layer heaps come from the same decision bound, so a
//! saturated shard no longer pins the heap head to `now + 1`.

use cpu_model::system::{AccessKind, BatchAccess, Busy, MemoryBackend};
use dram_sim::{ControllerTelemetry, DramStats};
use secddr_core::config::SecurityConfig;
use secddr_core::engine::{EngineOptions, EngineStats, SecurityEngine};
use secddr_telemetry::{SeriesSnapshot, TraceSink};
use sim_kernel::{Advance, EventQueue, FxHashMap};

use crate::interleave::Interleave;

/// N interleaved [`SecurityEngine`] channel shards behind one
/// [`MemoryBackend`].
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<SecurityEngine>,
    interleave: Interleave,
    advance: Advance,
    /// Global token source (one per accepted submit, like the bare
    /// engine, so `ShardedEngine` with one shard hands out the same
    /// token values a bare [`SecurityEngine`] would).
    next_token: u64,
    /// Per shard: local read token → global token (writes complete
    /// silently and are never mapped).
    local_to_global: Vec<FxHashMap<u64, u64>>,
    /// Registered next-event lower bound per shard; `u64::MAX` means "no
    /// internal event pending" and keeps the shard out of the heap.
    bounds: Vec<u64>,
    /// Min-heap of `(bound, shard)` wake-ups. Entries whose time no
    /// longer matches `bounds[shard]` are stale and skipped on pop.
    due: EventQueue<usize>,
    /// Latest CPU cycle observed on any trait call — the catch-up target
    /// for lagging shards in [`Self::sync`].
    last_now: u64,
    /// Times each shard was actually stepped (diagnostic for the
    /// "only due shards tick" property and the scaling benchmarks).
    shard_ticks: Vec<u64>,
    /// Reusable batch fan-out scratch (one slot per shard).
    split: Vec<Vec<BatchAccess>>,
    split_results: Vec<Vec<Result<u64, Busy>>>,
    cursors: Vec<usize>,
    /// Scratch list of shards due in the current tick.
    due_now: Vec<usize>,
    /// Reusable `(cycle, local token)` buffer for per-shard block
    /// advances.
    stamp_scratch: Vec<(u64, u64)>,
    /// Opt-in span recorder: each shard step is recorded as a span on the
    /// shard's track covering the window it advanced through. `None`
    /// (the default) keeps the hot path free of any tracing work.
    trace: Option<TraceSink>,
    /// Per shard: the cycle its track has been traced up to (span starts
    /// for the next step). Only maintained while tracing is enabled.
    trace_mark: Vec<u64>,
}

impl ShardedEngine {
    /// Builds `interleave.shard_count()` identical shards for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails.
    #[must_use]
    pub fn new(cfg: SecurityConfig, cpu_mhz: u32, interleave: Interleave) -> Self {
        Self::with_options(cfg, cpu_mhz, interleave, EngineOptions::default())
    }

    /// As [`Self::new`] with explicit engine options (shared by every
    /// shard).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails.
    #[must_use]
    pub fn with_options(
        cfg: SecurityConfig,
        cpu_mhz: u32,
        interleave: Interleave,
        options: EngineOptions,
    ) -> Self {
        let n = interleave.shard_count();
        Self {
            shards: (0..n)
                .map(|_| SecurityEngine::with_options(cfg, cpu_mhz, options))
                .collect(),
            interleave,
            advance: options.advance,
            next_token: 0,
            local_to_global: vec![FxHashMap::default(); n],
            bounds: vec![u64::MAX; n],
            due: EventQueue::new(),
            last_now: 0,
            shard_ticks: vec![0; n],
            split: vec![Vec::new(); n],
            split_results: vec![Vec::new(); n],
            cursors: vec![0; n],
            due_now: Vec::new(),
            stamp_scratch: Vec::new(),
            trace: None,
            trace_mark: vec![0; n],
        }
    }

    /// Number of channel shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The interleave policy splitting the line space.
    #[must_use]
    pub fn interleave(&self) -> Interleave {
        self.interleave
    }

    /// Read access to one shard's engine (sync first for up-to-date
    /// channel statistics).
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &SecurityEngine {
        &self.shards[shard]
    }

    /// How many times each shard was actually stepped by
    /// [`MemoryBackend::tick`] — idle shards stay at zero because they
    /// never enter the wake-up heap.
    #[must_use]
    pub fn shard_tick_counts(&self) -> &[u64] {
        &self.shard_ticks
    }

    /// Catches every lagging shard's channel clock up to the latest CPU
    /// cycle observed on this backend.
    ///
    /// Completions harvested during the catch-up stay scheduled inside
    /// the shard and surface on the next [`MemoryBackend::tick`] exactly
    /// as they would have without the lag (the skipped ticks were
    /// provably observation-free), so syncing is safe at any point.
    pub fn sync(&mut self) {
        let now = self.last_now;
        for shard in &mut self.shards {
            shard.sync_to(now);
        }
    }

    /// Merged engine statistics over all shards (syncs first).
    pub fn stats(&mut self) -> EngineStats {
        self.sync();
        let mut merged = EngineStats::default();
        for shard in &self.shards {
            merged.merge(&shard.stats());
        }
        merged
    }

    /// Merged DRAM channel statistics over all shards (syncs first).
    /// Counters and occupancy/latency histograms sum; the rate helpers
    /// on the merged value are therefore aggregates over all channels.
    pub fn dram_stats(&mut self) -> DramStats {
        self.sync();
        let mut merged = DramStats::default();
        for shard in &self.shards {
            merged.merge(&shard.dram_stats());
        }
        merged
    }

    /// Merged controller telemetry over all shards (syncs first):
    /// decision/busy cycle counts and decision-cause attribution summed
    /// across every channel.
    pub fn dram_telemetry(&mut self) -> ControllerTelemetry {
        self.sync();
        let mut merged = ControllerTelemetry::default();
        for shard in &self.shards {
            merged.merge(&shard.dram_telemetry());
        }
        merged
    }

    /// Turns on sim-time windowed series recording on every shard's
    /// channel at `epoch_width` CPU cycles per epoch (see
    /// [`SecurityEngine::enable_series`]). Opt-in and non-perturbing
    /// like tracing.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_width` is zero.
    pub fn enable_series(&mut self, epoch_width: u64) {
        for shard in &mut self.shards {
            shard.enable_series(epoch_width);
        }
    }

    /// Merged per-epoch series over all shards (syncs first). Policy
    /// rows (`dram.decision.*`, `dram.decisions_total`,
    /// `dram.busy_cycles`) sum across channels so they still reconcile
    /// with the merged [`Self::dram_telemetry`]; per-bank and occupancy
    /// rows are scoped per channel (`dram.ch01.bank03.issues`,
    /// `dram.ch01.read_q_integral`), and each channel gains a summed
    /// `dram.chNN.issues` heatmap row for imbalance analysis. `None`
    /// unless [`Self::enable_series`] was called.
    pub fn series_snapshot(&mut self) -> Option<SeriesSnapshot> {
        self.sync();
        let mut merged: Option<SeriesSnapshot> = None;
        for (s, shard) in self.shards.iter().enumerate() {
            let scoped = scope_channel(&shard.series_snapshot()?, s);
            match &mut merged {
                Some(m) => m.merge(&scoped),
                None => merged = Some(scoped),
            }
        }
        merged
    }

    /// Turns on per-shard advance-span tracing into a bounded ring of
    /// `capacity` spans (oldest evicted first). Tracing never changes
    /// simulated behaviour — it only observes the windows each shard is
    /// stepped through.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceSink::new(capacity));
    }

    /// Takes the recorded trace (if tracing was enabled), disabling
    /// further recording.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take()
    }

    /// Records shard `s` having advanced its window up to `end` on its
    /// trace track (no-op unless [`Self::enable_trace`] was called).
    fn trace_step(&mut self, s: usize, name: &'static str, end: u64) {
        if let Some(sink) = &mut self.trace {
            let start = self.trace_mark[s].min(end);
            #[allow(clippy::cast_possible_truncation)]
            sink.record(s as u32, name, start, end);
            self.trace_mark[s] = end;
        }
    }

    /// Allocates the global token for an accepted access and records the
    /// local→global mapping for reads (the only kind that completes).
    fn register(
        &mut self,
        shard: usize,
        kind: AccessKind,
        result: Result<u64, Busy>,
    ) -> Result<u64, Busy> {
        let local = result?;
        let global = self.next_token;
        self.next_token += 1;
        if kind == AccessKind::Read {
            self.local_to_global[shard].insert(local, global);
        }
        Ok(global)
    }

    /// Re-registers shard `s`'s next-event bound after an interaction
    /// changed its state. Keeps the earliest registered bound: a stale
    /// early wake-up just re-derives the bound, while a late one could
    /// miss an event.
    fn refresh_bound(&mut self, s: usize, now: u64) {
        if !self.advance.is_event_driven() {
            return;
        }
        let bound = self.shards[s].next_event(now).unwrap_or(u64::MAX);
        if bound < self.bounds[s] {
            self.bounds[s] = bound;
            if bound != u64::MAX {
                self.due.push(bound, s);
            }
        }
    }

    /// Steps shard `s` to `now`, translating its completions to global
    /// tokens, and re-registers its bound.
    fn tick_shard(&mut self, s: usize, now: u64, done: &mut Vec<u64>) {
        self.shard_ticks[s] += 1;
        self.trace_step(s, "tick", now);
        for local in self.shards[s].tick(now) {
            let global = self.local_to_global[s]
                .remove(&local)
                .expect("completed read was registered at submit");
            done.push(global);
        }
        self.refresh_bound(s, now);
    }

    /// Block-advances shard `s` to `target`, translating its stamped
    /// completions to global tokens, and re-registers its bound.
    fn advance_shard_to(&mut self, s: usize, target: u64, out: &mut Vec<(u64, u64)>) {
        self.shard_ticks[s] += 1;
        self.trace_step(s, "advance", target);
        let mut scratch = std::mem::take(&mut self.stamp_scratch);
        scratch.clear();
        self.shards[s].advance_to(target, &mut scratch);
        for &(at, local) in &scratch {
            let global = self.local_to_global[s]
                .remove(&local)
                .expect("completed read was registered at submit");
            out.push((at, global));
        }
        self.stamp_scratch = scratch;
        self.refresh_bound(s, target);
    }

    /// Folds `f(shard, now)` over all shards into one lower bound with
    /// the backend-trait `max(now + 1)` convention.
    fn fold_shards(
        &self,
        now: u64,
        f: impl Fn(&SecurityEngine, u64) -> Option<u64>,
    ) -> Option<u64> {
        let mut bound = u64::MAX;
        for shard in &self.shards {
            if let Some(t) = f(shard, now) {
                bound = bound.min(t);
            }
        }
        (bound != u64::MAX).then(|| bound.max(now + 1))
    }
}

/// Scopes one shard's series rows to its channel: heatmap rows gain a
/// `chNN` segment, policy rows stay shared (they sum on merge), and a
/// per-channel `dram.chNN.issues` row (the shard's bank rows summed) is
/// added for cross-channel imbalance analysis.
fn scope_channel(snap: &SeriesSnapshot, shard: usize) -> SeriesSnapshot {
    let mut scoped = snap.map_names(|name| {
        if let Some(rest) = name.strip_prefix("dram.bank") {
            format!("dram.ch{shard:02}.bank{rest}")
        } else if name == "dram.read_q_integral" || name == "dram.write_q_integral" {
            format!("dram.ch{shard:02}.{}", &name["dram.".len()..])
        } else {
            name.to_string()
        }
    });
    let mut issues: Vec<u64> = Vec::new();
    for (name, row) in &snap.rows {
        if name.starts_with("dram.bank") {
            if issues.len() < row.len() {
                issues.resize(row.len(), 0);
            }
            for (total, v) in issues.iter_mut().zip(row) {
                *total += v;
            }
        }
    }
    for (e, v) in issues.iter().enumerate() {
        scoped.add(&format!("dram.ch{shard:02}.issues"), e as u64, *v);
    }
    scoped
}

impl MemoryBackend for ShardedEngine {
    fn submit(
        &mut self,
        kind: AccessKind,
        addr: u64,
        now: u64,
        is_prefetch: bool,
    ) -> Result<u64, Busy> {
        self.last_now = self.last_now.max(now);
        let (s, local) = self.interleave.to_local(addr);
        // The shard's own submit catches its channel clock up to `now`
        // before stamping, so a lagging shard re-synchronizes here.
        let result = self.shards[s].submit(kind, local, now, is_prefetch);
        let result = self.register(s, kind, result);
        self.refresh_bound(s, now);
        result
    }

    fn submit_batch(
        &mut self,
        batch: &[BatchAccess],
        now: u64,
        results: &mut Vec<Result<u64, Busy>>,
    ) {
        self.last_now = self.last_now.max(now);
        // Fan out: split the batch per shard, preserving relative order
        // within each shard (all the batch contract requires).
        for v in &mut self.split {
            v.clear();
        }
        for access in batch {
            let (s, local) = self.interleave.to_local(access.addr);
            self.split[s].push(BatchAccess {
                addr: local,
                ..*access
            });
        }
        // One batched submission per touched shard: each pays its channel
        // catch-up once for its whole sub-batch.
        for s in 0..self.shards.len() {
            self.split_results[s].clear();
            if !self.split[s].is_empty() {
                self.shards[s].submit_batch(&self.split[s], now, &mut self.split_results[s]);
            }
        }
        // Merge back in submission order: walk the original batch and
        // take each shard's results in sequence, so `results[i]` always
        // answers `batch[i]` and global tokens are allocated in batch
        // order (exactly what per-call submission would have produced).
        self.cursors.fill(0);
        for access in batch {
            let s = self.interleave.shard_of(access.addr);
            let r = self.split_results[s][self.cursors[s]];
            self.cursors[s] += 1;
            let r = self.register(s, access.kind, r);
            results.push(r);
        }
        for s in 0..self.shards.len() {
            if !self.split[s].is_empty() {
                self.refresh_bound(s, now);
            }
        }
    }

    fn tick(&mut self, now: u64) -> Vec<u64> {
        self.last_now = self.last_now.max(now);
        let mut done = Vec::new();
        if self.advance.is_event_driven() {
            // Step only the shards whose registered bound is due; the
            // rest provably have nothing to report and keep lagging.
            // Due shards are stepped in shard-index order so the merged
            // completion order is a function of the simulated state, not
            // of heap insertion history (batched and per-call ingestion
            // register bounds in different orders but must stay
            // observationally identical).
            let mut due_now = std::mem::take(&mut self.due_now);
            due_now.clear();
            while let Some((at, s)) = self.due.pop_due(now) {
                if self.bounds[s] != at {
                    continue; // stale entry superseded by an earlier bound
                }
                self.bounds[s] = u64::MAX;
                due_now.push(s);
            }
            due_now.sort_unstable();
            for &s in &due_now {
                self.tick_shard(s, now, &mut done);
            }
            self.due_now = due_now;
        } else {
            // Per-cycle reference semantics: every shard steps every call.
            for s in 0..self.shards.len() {
                self.tick_shard(s, now, &mut done);
            }
        }
        done
    }

    fn advance_to(&mut self, target: u64, completions: &mut Vec<(u64, u64)>) {
        self.last_now = self.last_now.max(target);
        let start = completions.len();
        if self.advance.is_event_driven() {
            // Same due-shard discipline as `tick`: shards whose bound is
            // after `target` provably surface nothing in the window.
            let mut due_now = std::mem::take(&mut self.due_now);
            due_now.clear();
            while let Some((at, s)) = self.due.pop_due(target) {
                if self.bounds[s] != at {
                    continue; // stale entry superseded by an earlier bound
                }
                self.bounds[s] = u64::MAX;
                due_now.push(s);
            }
            due_now.sort_unstable();
            for &s in &due_now {
                self.advance_shard_to(s, target, completions);
            }
            self.due_now = due_now;
        } else {
            for s in 0..self.shards.len() {
                self.advance_shard_to(s, target, completions);
            }
        }
        // Shards were advanced in ascending index order; the stable sort
        // re-merges their streams by cycle while keeping shard-index
        // order within a cycle — exactly what a per-cycle tick loop over
        // all shards would have produced.
        completions[start..].sort_by_key(|&(at, _)| at);
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        self.fold_shards(now, |sh, n| sh.next_event(n))
    }

    fn next_completion_event(&self, now: u64) -> Option<u64> {
        self.fold_shards(now, |sh, n| sh.next_completion_event(n))
    }

    fn next_read_capacity_event(&self, now: u64, addr: u64) -> Option<u64> {
        // Capacity for the stalled access frees only on its owning shard
        // (an unrelated shard's empty queue cannot unblock the retry),
        // so bound the wait by that shard's capacity event — but keep
        // every shard's completions observable: a read returning
        // anywhere wakes ROB waiters regardless of the stall.
        let (s, local) = self.interleave.to_local(addr);
        let mut bound = self.shards[s]
            .next_read_capacity_event(now, local)
            .unwrap_or(u64::MAX);
        for (i, shard) in self.shards.iter().enumerate() {
            if i != s {
                if let Some(t) = shard.next_completion_event(now) {
                    bound = bound.min(t);
                }
            }
        }
        (bound != u64::MAX).then(|| bound.max(now + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::LINE_BYTES;

    const CPU_MHZ: u32 = 3200;

    fn engine(n: usize) -> ShardedEngine {
        ShardedEngine::new(SecurityConfig::secddr_ctr(), CPU_MHZ, Interleave::xor(n))
    }

    fn drive_to_completion(e: &mut ShardedEngine, token: u64, start: u64) -> u64 {
        for now in start..start + 100_000 {
            if e.tick(now).contains(&token) {
                return now;
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn read_completes_through_any_shard() {
        let mut e = engine(4);
        for i in 0..4u64 {
            let addr = i * LINE_BYTES; // lines 0..4 hit 4 distinct shards
            let t = e.submit(AccessKind::Read, addr, 100 + i, false).unwrap();
            drive_to_completion(&mut e, t, 101 + i);
        }
        assert_eq!(e.stats().data_reads, 4);
        let reads: Vec<u64> = (0..4).map(|s| e.shard(s).stats().data_reads).collect();
        assert_eq!(reads, vec![1, 1, 1, 1], "one line per shard");
    }

    #[test]
    fn idle_shards_never_tick() {
        let mut e = engine(4);
        // Lines local to shard 0 only (xor(4): line 0 maps to shard 0).
        let addr = e.interleave().to_physical(0, 0x40_0000);
        assert_eq!(e.interleave().shard_of(addr), 0);
        let t = e.submit(AccessKind::Read, addr, 100, false).unwrap();
        drive_to_completion(&mut e, t, 101);
        let ticks = e.shard_tick_counts();
        assert!(ticks[0] > 0, "active shard must step");
        assert_eq!(&ticks[1..], &[0, 0, 0], "idle shards never enter the heap");
    }

    #[test]
    fn batch_results_answer_batch_order() {
        // Same access stream through submit_batch and per-call submit on
        // two identically built engines: identical results and stats.
        let batch: Vec<BatchAccess> = (0..12u64)
            .map(|i| BatchAccess {
                kind: if i % 5 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                addr: i.wrapping_mul(0x9E37_79B9) & !(LINE_BYTES - 1),
                is_prefetch: false,
            })
            .collect();
        let mut batched = engine(4);
        let mut per_call = engine(4);
        let mut batch_results = Vec::new();
        batched.submit_batch(&batch, 100, &mut batch_results);
        let per_call_results: Vec<_> = batch
            .iter()
            .map(|b| per_call.submit(b.kind, b.addr, 100, b.is_prefetch))
            .collect();
        assert_eq!(batch_results, per_call_results);
        let mut now = 100;
        for _ in 0..500 {
            now += 40;
            assert_eq!(batched.tick(now), per_call.tick(now));
        }
        assert_eq!(batched.stats(), per_call.stats());
        assert_eq!(batched.dram_stats(), per_call.dram_stats());
    }

    #[test]
    fn tracing_is_non_perturbing_and_telemetry_reconciles() {
        // Identical streams through a traced and an untraced engine must
        // produce bit-identical completions and stats; the merged
        // telemetry's cause buckets must partition its decision cycles.
        let mut traced = engine(4);
        let mut plain = engine(4);
        traced.enable_trace(64);
        let mut now = 100u64;
        for i in 0..30u64 {
            let a = traced.submit(AccessKind::Read, i * LINE_BYTES * 3, now, false);
            let b = plain.submit(AccessKind::Read, i * LINE_BYTES * 3, now, false);
            assert_eq!(a, b);
            now += 60;
            assert_eq!(traced.tick(now), plain.tick(now));
        }
        for _ in 0..300 {
            now += 50;
            assert_eq!(traced.tick(now), plain.tick(now));
        }
        assert_eq!(traced.stats(), plain.stats());
        assert_eq!(traced.dram_stats(), plain.dram_stats());
        let t = traced.dram_telemetry();
        assert_eq!(t, plain.dram_telemetry());
        assert_eq!(t.causes.total(), t.decision_cycles);
        assert!(t.causes.completion > 0, "reads completed");
        let sink = traced.take_trace().expect("tracing was enabled");
        assert!(!sink.is_empty(), "stepped shards recorded spans");
        assert!(
            sink.spans().all(|sp| sp.start <= sp.end),
            "spans are well-formed windows"
        );
    }

    #[test]
    fn merged_stats_sum_over_shards() {
        let mut e = engine(2);
        let mut now = 100u64;
        for i in 0..40u64 {
            let _ = e.submit(AccessKind::Read, i * LINE_BYTES * 7, now, false);
            now += 100;
            e.tick(now);
        }
        for _ in 0..200 {
            now += 50;
            e.tick(now);
        }
        let merged = e.stats();
        let by_hand = e.shard(0).stats().data_reads + e.shard(1).stats().data_reads;
        assert_eq!(merged.data_reads, by_hand);
        let dram = e.dram_stats();
        assert_eq!(
            dram.reads,
            e.shard(0).dram_stats().reads + e.shard(1).dram_stats().reads
        );
    }
}
