//! Sharded multi-channel memory subsystem: N interleaved SecDDR channels
//! behind one [`cpu_model::system::MemoryBackend`].
//!
//! The paper evaluates a single DDR4 channel behind the security engine;
//! production-scale serving wants N channels with address interleaving.
//! This crate adds that layer without the CPU front-end noticing:
//!
//! * [`Interleave`] — a pluggable, round-trippable line-granularity
//!   hash (modulo or XOR-folded) mapping every physical line to exactly
//!   one `(shard, dense local address)` pair;
//! * [`ShardedEngine`] — N independent
//!   [`secddr_core::engine::SecurityEngine`] + DDR-channel shards whose
//!   top-level advance is event-driven: a min-heap over the shards'
//!   memoized next-event bounds steps only the shard(s) that are due, so
//!   the per-shard idle windows that *grow* with N are skipped at the
//!   top level;
//! * [`ChannelStats`] — per-channel DRAM statistics
//!   ([`dram_sim::DramStats`]) whose `merge` aggregates counters and
//!   occupancy/latency histograms across shards.
//!
//! A `ShardedEngine` with one shard is observationally identical to a
//! bare `SecurityEngine` (pinned end-to-end by
//! `tests/sharded_differential.rs`), so the whole experiment surface can
//! switch between 1 and N channels freely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interleave;
mod sharded;

pub use interleave::{Interleave, InterleavePolicy, LINE_BYTES};
pub use sharded::ShardedEngine;

/// Per-channel DRAM statistics; [`ChannelStats::merge`] aggregates
/// across shards.
pub use dram_sim::DramStats as ChannelStats;
