//! Boot-time memory attestation and key exchange (Section III-F).
//!
//! The memory vendor embeds an endorsement keypair `(EKp, EKs)` in each
//! rank's ECC chip and a certificate authority signs `EKp`. At every power
//! up (or legitimate DIMM replacement) the processor and the rank run an
//! authenticated Diffie–Hellman exchange: the rank signs its ephemeral
//! public key with `EKs`, the processor validates the certificate chain and
//! the signature, both derive the transaction key `Kt`, and the processor
//! picks and shares the initial counter value (plaintext is fine — counter
//! tampering surfaces as MAC failures). The processor then clears memory.

use secddr_crypto::aes::Aes128;
use secddr_crypto::dh::{self, DhKeyPair, Signature, U256};

/// Errors raised by the processor while validating the rank's attestation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestError {
    /// The endorsement key's certificate does not verify against the CA.
    BadCertificate,
    /// The key-exchange message signature does not verify under `EKp`.
    BadSignature,
}

impl core::fmt::Display for AttestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AttestError::BadCertificate => write!(f, "endorsement certificate invalid"),
            AttestError::BadSignature => write!(f, "key-exchange signature invalid"),
        }
    }
}

impl std::error::Error for AttestError {}

/// The certificate authority trusted by the processor (the memory vendor
/// or a third party).
#[derive(Debug)]
pub struct CertificateAuthority {
    keypair: DhKeyPair,
}

impl CertificateAuthority {
    /// Creates a CA with a deterministic key for the given seed.
    pub fn new(seed: u64) -> Self {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&seed.to_le_bytes());
        s[31] = 0xCA;
        Self {
            keypair: DhKeyPair::from_seed(&s),
        }
    }

    /// The CA's public key, provisioned into processors.
    pub fn public(&self) -> U256 {
        self.keypair.public
    }

    /// Issues a certificate: a signature over the endorsement public key.
    pub fn issue(&self, ek_public: &U256) -> Signature {
        dh::sign(&self.keypair, &ek_public.to_le_bytes())
    }
}

/// The rank's attestation identity: endorsement keypair plus certificate.
#[derive(Debug)]
pub struct RankIdentity {
    endorsement: DhKeyPair,
    /// CA certificate over the endorsement public key.
    pub certificate: Signature,
}

impl RankIdentity {
    /// Manufactures an identity: generates `EK` and obtains a certificate.
    pub fn manufacture(seed: u64, ca: &CertificateAuthority) -> Self {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&seed.to_le_bytes());
        s[31] = 0xEC;
        let endorsement = DhKeyPair::from_seed(&s);
        let certificate = ca.issue(&endorsement.public);
        Self {
            endorsement,
            certificate,
        }
    }

    /// The endorsement public key `EKp`.
    pub fn ek_public(&self) -> U256 {
        self.endorsement.public
    }
}

/// The rank's half of the key exchange.
#[derive(Debug)]
pub struct RankKexResponse {
    /// The rank's ephemeral DH public key.
    pub ephemeral_public: U256,
    /// `EKp` for certificate validation.
    pub ek_public: U256,
    /// The CA certificate over `EKp`.
    pub certificate: Signature,
    /// Signature (under `EKs`) over the exchange transcript.
    pub signature: Signature,
}

/// Result of a successful attestation on the processor side.
#[derive(Debug)]
pub struct AttestationOutcome {
    /// The derived transaction key `Kt` (both ends compute the same).
    pub kt: Aes128,
    /// The initial transaction-counter value chosen by the processor.
    pub initial_ct: u64,
}

fn transcript(host_pub: &U256, rank_pub: &U256) -> Vec<u8> {
    let mut t = Vec::with_capacity(64 + 16);
    t.extend_from_slice(b"secddr-kex-v1");
    t.extend_from_slice(&host_pub.to_le_bytes());
    t.extend_from_slice(&rank_pub.to_le_bytes());
    t
}

/// The rank answers the processor's ephemeral public key: it generates its
/// own ephemeral pair, signs the transcript with `EKs`, and derives `Kt`.
/// Returns the wire response and the rank's derived key.
pub fn rank_respond(
    identity: &RankIdentity,
    host_ephemeral_public: &U256,
    seed: u64,
) -> (RankKexResponse, Aes128) {
    let mut s = [0u8; 32];
    s[..8].copy_from_slice(&seed.to_le_bytes());
    s[31] = 0xEF;
    let eph = DhKeyPair::from_seed(&s);
    let signature = dh::sign(
        &identity.endorsement,
        &transcript(host_ephemeral_public, &eph.public),
    );
    let shared = eph.shared_secret(host_ephemeral_public);
    let kt_bytes = DhKeyPair::derive_kt(&shared, host_ephemeral_public, &eph.public);
    let resp = RankKexResponse {
        ephemeral_public: eph.public,
        ek_public: identity.ek_public(),
        certificate: identity.certificate,
        signature,
    };
    (resp, Aes128::new(&kt_bytes))
}

/// The processor validates the rank's response and derives the channel
/// parameters.
///
/// # Errors
///
/// * [`AttestError::BadCertificate`] if `EKp` is not certified by the CA.
/// * [`AttestError::BadSignature`] if the transcript signature fails —
///   e.g. a man-in-the-middle substituted its own ephemeral key.
pub fn host_verify(
    host_ephemeral: &DhKeyPair,
    resp: &RankKexResponse,
    ca_public: &U256,
    initial_ct: u64,
) -> Result<AttestationOutcome, AttestError> {
    if !dh::verify(ca_public, &resp.ek_public.to_le_bytes(), &resp.certificate) {
        return Err(AttestError::BadCertificate);
    }
    if !dh::verify(
        &resp.ek_public,
        &transcript(&host_ephemeral.public, &resp.ephemeral_public),
        &resp.signature,
    ) {
        return Err(AttestError::BadSignature);
    }
    let shared = host_ephemeral.shared_secret(&resp.ephemeral_public);
    let kt_bytes = DhKeyPair::derive_kt(&shared, &host_ephemeral.public, &resp.ephemeral_public);
    Ok(AttestationOutcome {
        kt: Aes128::new(&kt_bytes),
        initial_ct,
    })
}

/// Convenience: the host's ephemeral keypair for this boot.
pub fn host_ephemeral(seed: u64) -> DhKeyPair {
    let mut s = [0u8; 32];
    s[..8].copy_from_slice(&seed.to_le_bytes());
    s[31] = 0x10;
    DhKeyPair::from_seed(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimm::DimmRank;
    use crate::processor::{EncryptionMode, SecDdrProcessor};

    #[test]
    fn full_attestation_establishes_working_channel() {
        let ca = CertificateAuthority::new(1);
        let identity = RankIdentity::manufacture(2, &ca);
        let host = host_ephemeral(3);
        let (resp, rank_kt) = rank_respond(&identity, &host.public, 4);
        let outcome = host_verify(&host, &resp, &ca.public(), 1000).unwrap();

        // Both ends derived the same Kt: a channel built from the two
        // halves round-trips.
        let mut processor =
            SecDdrProcessor::new(EncryptionMode::Xts, outcome.kt, outcome.initial_ct, 5);
        let mut rank = DimmRank::new(rank_kt, outcome.initial_ct);
        let tx = processor.begin_write(0x40, &[0xAA; 64]);
        assert_eq!(rank.accept_write(&tx), crate::dimm::WriteOutcome::Committed);
        let resp = rank.serve_read(crate::geometry::decode(0x40));
        assert_eq!(processor.finish_read(0x40, &resp).unwrap(), [0xAA; 64]);
    }

    #[test]
    fn mitm_substituting_ephemeral_key_is_rejected() {
        let ca = CertificateAuthority::new(1);
        let identity = RankIdentity::manufacture(2, &ca);
        let host = host_ephemeral(3);
        let (mut resp, _) = rank_respond(&identity, &host.public, 4);
        // MITM swaps in its own ephemeral key (hoping to sit between).
        let mallory = host_ephemeral(666);
        resp.ephemeral_public = mallory.public;
        assert_eq!(
            host_verify(&host, &resp, &ca.public(), 0).unwrap_err(),
            AttestError::BadSignature
        );
    }

    #[test]
    fn uncertified_endorsement_key_is_rejected() {
        let ca = CertificateAuthority::new(1);
        let rogue_ca = CertificateAuthority::new(99);
        // A counterfeit DIMM with a key certified by the wrong CA.
        let identity = RankIdentity::manufacture(2, &rogue_ca);
        let host = host_ephemeral(3);
        let (resp, _) = rank_respond(&identity, &host.public, 4);
        assert_eq!(
            host_verify(&host, &resp, &ca.public(), 0).unwrap_err(),
            AttestError::BadCertificate
        );
    }

    #[test]
    fn tampered_transcript_signature_is_rejected() {
        let ca = CertificateAuthority::new(1);
        let identity = RankIdentity::manufacture(2, &ca);
        let host = host_ephemeral(3);
        let (mut resp, _) = rank_respond(&identity, &host.public, 4);
        resp.signature.s = resp.signature.s.add_mod(
            secddr_crypto::dh::U256::ONE,
            &secddr_crypto::dh::group_order(),
        );
        assert_eq!(
            host_verify(&host, &resp, &ca.public(), 0).unwrap_err(),
            AttestError::BadSignature
        );
    }

    #[test]
    fn distinct_boots_derive_distinct_keys() {
        let ca = CertificateAuthority::new(1);
        let identity = RankIdentity::manufacture(2, &ca);
        let host_a = host_ephemeral(3);
        let host_b = host_ephemeral(4);
        let (_, kt_a) = rank_respond(&identity, &host_a.public, 10);
        let (_, kt_b) = rank_respond(&identity, &host_b.public, 11);
        // Keys are secret; compare behaviourally.
        let block = [0u8; 16];
        assert_ne!(kt_a.encrypt_block(&block), kt_b.encrypt_block(&block));
    }
}
