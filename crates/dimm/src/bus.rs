//! Bus transactions and the attacker interposition trait.
//!
//! The threat model (Section II-A) lets the adversary tamper with anything
//! on the memory bus or the DIMM interconnects: data, E-MACs, eWCRCs, and
//! the command/address (CCCA) signals. [`Interposer`] is that adversary's
//! vantage point; the prebuilt attackers live in [`crate::attacks`].

use secddr_crypto::crc::WriteAddress;

/// Everything a write transaction puts on the wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteTransaction {
    /// CCCA signals: the decoded write address as chips will observe it.
    pub addr: WriteAddress,
    /// Ciphertext line for the data chips.
    pub data: [u8; 64],
    /// Encrypted MAC (E-MAC) for the ECC chip.
    pub emac: u64,
    /// Encrypted eWCRC trailing the ECC-chip burst.
    pub ewcrc: u16,
}

/// Everything a read response puts on the wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResponse {
    /// Ciphertext line from the data chips.
    pub data: [u8; 64],
    /// Encrypted MAC from the ECC chip.
    pub emac: u64,
}

/// What the adversary did with an intercepted write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAction {
    /// Forward (possibly after mutating the transaction in place).
    Deliver,
    /// Suppress the write entirely.
    Drop,
    /// Corrupt the command encoding so the DIMM performs a read instead.
    ConvertToRead,
}

/// A man-in-the-middle on the memory bus / DIMM interconnect.
///
/// Default implementations are honest; attackers override the hooks they
/// need. All state the attacker wants (recorded transactions, triggers)
/// lives in the implementing type.
pub trait Interposer {
    /// Observes / mutates / suppresses an in-flight write.
    fn on_write(&mut self, _tx: &mut WriteTransaction) -> WriteAction {
        WriteAction::Deliver
    }

    /// Observes / mutates the CCCA signals of an in-flight read command.
    fn on_read_cmd(&mut self, _addr: &mut WriteAddress) {}

    /// Observes / mutates an in-flight read response.
    fn on_read_resp(&mut self, _resp: &mut ReadResponse) {}
}

/// The honest bus: no interference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassThrough;

impl Interposer for PassThrough {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_delivers_untouched() {
        let mut p = PassThrough;
        let mut tx = WriteTransaction {
            addr: WriteAddress::default(),
            data: [1; 64],
            emac: 2,
            ewcrc: 3,
        };
        let orig = tx;
        assert_eq!(p.on_write(&mut tx), WriteAction::Deliver);
        assert_eq!(tx, orig);
        let mut resp = ReadResponse {
            data: [4; 64],
            emac: 5,
        };
        let orig_resp = resp;
        p.on_read_resp(&mut resp);
        assert_eq!(resp, orig_resp);
    }
}
