//! Prebuilt attackers implementing every scenario from Sections II-C and
//! III of the paper, plus the tests that execute each attack end-to-end and
//! assert the outcome the paper claims.

use secddr_crypto::crc::WriteAddress;

use crate::bus::{Interposer, ReadResponse, WriteAction, WriteTransaction};

/// Man-in-the-middle replaying a previously captured read response
/// (Section II-C: replay attack on data in motion).
///
/// Records the response of the `capture_on`-th read, then substitutes it
/// for the `replay_on`-th read's response.
#[derive(Debug, Default)]
pub struct BusReplay {
    /// Zero-based index of the read whose response to capture.
    pub capture_on: u64,
    /// Zero-based index of the read whose response to replace.
    pub replay_on: u64,
    seen: u64,
    captured: Option<ReadResponse>,
    /// Set when the replay was actually performed.
    pub replayed: bool,
}

impl BusReplay {
    /// Captures read `capture_on` and replays it on read `replay_on`.
    pub fn new(capture_on: u64, replay_on: u64) -> Self {
        Self {
            capture_on,
            replay_on,
            ..Self::default()
        }
    }
}

impl Interposer for BusReplay {
    fn on_read_resp(&mut self, resp: &mut ReadResponse) {
        if self.seen == self.capture_on {
            self.captured = Some(*resp);
        }
        if self.seen == self.replay_on {
            if let Some(old) = self.captured {
                *resp = old;
                self.replayed = true;
            }
        }
        self.seen += 1;
    }
}

/// Corrupts the row (or column) address of a chosen write's Activate, the
/// stale-data attack of Figure 3.
#[derive(Debug)]
pub struct AddressCorruptor {
    /// Zero-based index of the write to redirect.
    pub target_write: u64,
    /// XOR mask applied to the row address.
    pub row_xor: u32,
    /// XOR mask applied to the column address.
    pub column_xor: u16,
    seen: u64,
    /// Set when the corruption was applied.
    pub fired: bool,
}

impl AddressCorruptor {
    /// Redirects write `target_write` to a different row.
    pub fn redirect_row(target_write: u64, row_xor: u32) -> Self {
        Self {
            target_write,
            row_xor,
            column_xor: 0,
            seen: 0,
            fired: false,
        }
    }

    /// Redirects write `target_write` to a different column.
    pub fn redirect_column(target_write: u64, column_xor: u16) -> Self {
        Self {
            target_write,
            row_xor: 0,
            column_xor,
            seen: 0,
            fired: false,
        }
    }
}

impl Interposer for AddressCorruptor {
    fn on_write(&mut self, tx: &mut WriteTransaction) -> WriteAction {
        if self.seen == self.target_write {
            tx.addr.row ^= self.row_xor;
            tx.addr.column ^= self.column_xor;
            self.fired = true;
        }
        self.seen += 1;
        WriteAction::Deliver
    }
}

/// Suppresses a chosen write on the bus (Section III-B: dropped write).
#[derive(Debug)]
pub struct WriteDropper {
    /// Zero-based index of the write to drop.
    pub target_write: u64,
    seen: u64,
    /// Set when the drop occurred.
    pub fired: bool,
}

impl WriteDropper {
    /// Drops write number `target_write`.
    pub fn new(target_write: u64) -> Self {
        Self {
            target_write,
            seen: 0,
            fired: false,
        }
    }
}

impl Interposer for WriteDropper {
    fn on_write(&mut self, _tx: &mut WriteTransaction) -> WriteAction {
        let action = if self.seen == self.target_write {
            self.fired = true;
            WriteAction::Drop
        } else {
            WriteAction::Deliver
        };
        self.seen += 1;
        action
    }
}

/// Converts a chosen write command into a read and swallows the response
/// (Section III-B: command-conversion attack).
#[derive(Debug)]
pub struct CommandConverter {
    /// Zero-based index of the write to convert.
    pub target_write: u64,
    seen: u64,
    /// Set when the conversion occurred.
    pub fired: bool,
}

impl CommandConverter {
    /// Converts write number `target_write` into a read.
    pub fn new(target_write: u64) -> Self {
        Self {
            target_write,
            seen: 0,
            fired: false,
        }
    }
}

impl Interposer for CommandConverter {
    fn on_write(&mut self, _tx: &mut WriteTransaction) -> WriteAction {
        let action = if self.seen == self.target_write {
            self.fired = true;
            WriteAction::ConvertToRead
        } else {
            WriteAction::Deliver
        };
        self.seen += 1;
        action
    }
}

/// Flips bits in read responses (plain data tampering / bus bit flips).
#[derive(Debug)]
pub struct DataTamperer {
    /// Byte index within the line to corrupt.
    pub byte: usize,
    /// XOR mask for that byte.
    pub mask: u8,
}

impl Interposer for DataTamperer {
    fn on_read_resp(&mut self, resp: &mut ReadResponse) {
        resp.data[self.byte] ^= self.mask;
    }
}

/// Flips bits in the E-MAC lanes of read responses.
#[derive(Debug)]
pub struct EmacTamperer {
    /// XOR mask applied to the E-MAC.
    pub mask: u64,
}

impl Interposer for EmacTamperer {
    fn on_read_resp(&mut self, resp: &mut ReadResponse) {
        resp.emac ^= self.mask;
    }
}

/// Redirects read *commands* to a different row (the "read from where the
/// attacker stashed data" half of an address attack).
#[derive(Debug)]
pub struct ReadRedirector {
    /// XOR mask applied to the row address of every read command.
    pub row_xor: u32,
}

impl Interposer for ReadRedirector {
    fn on_read_cmd(&mut self, addr: &mut WriteAddress) {
        addr.row ^= self.row_xor;
    }
}

/// Random transmission noise rather than a targeted adversary: flips bits
/// on the bus with a configurable per-transaction probability. Models the
/// naturally occurring CCCA/data errors of the Section III-B reliability
/// analysis — SecDDR surfaces them as eWCRC alerts (writes) or MAC
/// failures (reads), never as silent corruption.
#[derive(Debug)]
pub struct BitErrorInjector {
    /// Per-transaction corruption probability in 1/65536 units.
    pub rate_per_64k: u32,
    state: u64,
    /// Corruptions injected so far.
    pub injected: u64,
}

impl BitErrorInjector {
    /// Noise source with the given per-transaction corruption probability
    /// (out of 65536) and RNG seed.
    pub fn new(rate_per_64k: u32, seed: u64) -> Self {
        Self {
            rate_per_64k,
            state: seed | 1,
            injected: 0,
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*: dependency-free deterministic noise.
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn fires(&mut self) -> bool {
        (self.next() & 0xFFFF) < u64::from(self.rate_per_64k)
    }
}

impl Interposer for BitErrorInjector {
    fn on_write(&mut self, tx: &mut WriteTransaction) -> WriteAction {
        if self.fires() {
            let r = self.next();
            match r % 3 {
                0 => tx.data[(r >> 8) as usize % 64] ^= 1 << ((r >> 16) % 8),
                1 => tx.emac ^= 1 << ((r >> 8) % 64),
                _ => tx.addr.row ^= 1 << ((r >> 8) % 18),
            }
            self.injected += 1;
        }
        WriteAction::Deliver
    }

    fn on_read_resp(&mut self, resp: &mut ReadResponse) {
        if self.fires() {
            let r = self.next();
            if r.is_multiple_of(2) {
                resp.data[(r >> 8) as usize % 64] ^= 1 << ((r >> 16) % 8);
            } else {
                resp.emac ^= 1 << ((r >> 8) % 64);
            }
            self.injected += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimm::WriteOutcome;
    use crate::processor::EncryptionMode;
    use crate::SecureChannel;

    const LINE: u64 = 0x4_2000;

    /// Paper Section II-C1 / Figure 1: replaying a stale (data, E-MAC)
    /// response is detected because the E-MAC pad has advanced.
    #[test]
    fn bus_replay_of_stale_response_is_detected() {
        let mut ch = SecureChannel::with_interposer(EncryptionMode::Xts, 11, BusReplay::new(0, 1));
        ch.write(LINE, &[1; 64]);
        assert!(ch.read(LINE).is_ok(), "capture read passes");
        ch.write(LINE, &[2; 64]);
        let r = ch.read(LINE); // attacker replays the old response
        assert!(ch.interposer.replayed);
        assert!(r.is_err(), "stale (data, E-MAC) must fail verification");
    }

    /// Even a replay of the *identical* data with its then-valid E-MAC
    /// fails: temporal uniqueness, not just value binding.
    #[test]
    fn replay_of_identical_data_still_detected() {
        let mut ch = SecureChannel::with_interposer(EncryptionMode::Xts, 12, BusReplay::new(0, 1));
        ch.write(LINE, &[9; 64]);
        assert!(ch.read(LINE).is_ok());
        // No intervening write: the data is unchanged, but the replayed
        // E-MAC was padded with an older read counter.
        let r = ch.read(LINE);
        assert!(ch.interposer.replayed);
        assert!(r.is_err());
    }

    /// Figure 3: the attacker redirects a write's Activate to row Y; the
    /// ECC chip's encrypted eWCRC check rejects the write at the chip.
    #[test]
    fn row_redirected_write_rejected_by_ewcrc() {
        let mut ch = SecureChannel::with_interposer(
            EncryptionMode::Xts,
            13,
            AddressCorruptor::redirect_row(1, 0x40),
        );
        assert_eq!(ch.write(LINE, &[1; 64]), WriteOutcome::Committed);
        let outcome = ch.write(LINE, &[2; 64]); // redirected
        assert!(ch.interposer.fired);
        assert_eq!(outcome, WriteOutcome::EwcrcRejected);
        assert_eq!(ch.rank.ewcrc_alerts, 1);
        // And since both ends consumed a write slot, counters stay in
        // lockstep: the platform reacted to the alert; no silent damage.
        assert_eq!(ch.processor.counter_state(), ch.rank.counter_state());
    }

    /// Column-redirection variant of the same attack.
    #[test]
    fn column_redirected_write_rejected_by_ewcrc() {
        let mut ch = SecureChannel::with_interposer(
            EncryptionMode::Xts,
            14,
            AddressCorruptor::redirect_column(0, 0x8),
        );
        let outcome = ch.write(LINE, &[1; 64]);
        assert_eq!(outcome, WriteOutcome::EwcrcRejected);
    }

    /// Without the address-bound OTPw, a redirected write would leave the
    /// stale tuple in place and the subsequent read would verify — this
    /// test demonstrates the attack SecDDR's eWCRC closes, by showing the
    /// stale read *would* pass if the write were simply suppressed at the
    /// wrong-address chip without an alert. (The committed=rejected
    /// distinction is the defence.)
    #[test]
    fn stale_data_would_verify_without_ewcrc_alert() {
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 15);
        ch.write(LINE, &[1; 64]);
        // Simulate "write redirected and lost" *without* the chip-side
        // alert path by just not performing the second write at all, while
        // manually burning the counter slots a real redirected write would
        // consume on both ends.
        let tx = ch.processor.begin_write(LINE, &[2; 64]);
        let _ = tx; // never delivered
        let _ = ch.rank.accept_write(&crate::bus::WriteTransaction {
            // The DIMM observed *some* write (to the wrong place); counters
            // advance there too. eWCRC fires, which is exactly the alert.
            addr: crate::geometry::decode(LINE ^ 0x1000),
            data: tx.data,
            emac: tx.emac,
            ewcrc: tx.ewcrc,
        });
        // The stale tuple still verifies on read — the read path alone
        // cannot see the attack. Detection hinges on the eWCRC alert above.
        assert_eq!(ch.read(LINE).unwrap(), [1; 64]);
        assert_eq!(ch.rank.ewcrc_alerts, 1, "the alert is the defence");
    }

    /// Section III-B: dropping a write desynchronizes the counters and all
    /// following reads fail.
    #[test]
    fn dropped_write_fails_all_following_reads() {
        let mut ch = SecureChannel::with_interposer(EncryptionMode::Xts, 16, WriteDropper::new(1));
        ch.write(LINE, &[1; 64]);
        assert!(ch.read(LINE).is_ok());
        assert_eq!(ch.write(LINE, &[2; 64]), WriteOutcome::DroppedOnBus);
        assert!(ch.interposer.fired);
        for other in [LINE, 0x40, 0x8000] {
            assert!(
                ch.read(other).is_err(),
                "paper claim: ALL following reads fail after a dropped write"
            );
        }
    }

    /// Section III-B: converting a write to a read (and intercepting the
    /// response) is caught by the even/odd counter split — the ends
    /// diverge permanently.
    #[test]
    fn command_conversion_detected_on_next_read() {
        let mut ch =
            SecureChannel::with_interposer(EncryptionMode::Xts, 17, CommandConverter::new(1));
        ch.write(LINE, &[1; 64]);
        assert!(ch.read(LINE).is_ok());
        assert_eq!(ch.write(LINE, &[2; 64]), WriteOutcome::ConvertedToRead);
        assert!(ch.interposer.fired);
        // The stale line — and everything else — now fails.
        assert!(ch.read(LINE).is_err());
        assert!(ch.read(0x40).is_err());
    }

    /// Plain data corruption on the bus: MAC mismatch.
    #[test]
    fn data_bit_flip_detected() {
        let mut ch = SecureChannel::with_interposer(
            EncryptionMode::Xts,
            18,
            DataTamperer {
                byte: 17,
                mask: 0x20,
            },
        );
        ch.write(LINE, &[5; 64]);
        assert!(ch.read(LINE).is_err());
    }

    /// E-MAC lane corruption: MAC mismatch.
    #[test]
    fn emac_bit_flip_detected() {
        let mut ch =
            SecureChannel::with_interposer(EncryptionMode::Xts, 19, EmacTamperer { mask: 1 << 63 });
        ch.write(LINE, &[5; 64]);
        assert!(ch.read(LINE).is_err());
    }

    /// Redirecting read commands serves the wrong line; the address bound
    /// into the MAC catches it (Section III-B: "if the processor ever
    /// reads the location the attacker redirected to, SecDDR detects it").
    #[test]
    fn redirected_read_detected_via_address_binding() {
        let mut ch = SecureChannel::with_interposer(
            EncryptionMode::Xts,
            20,
            ReadRedirector { row_xor: 0x10 },
        );
        ch.write(LINE, &[5; 64]);
        assert!(ch.read(LINE).is_err());
    }

    /// Natural transmission noise is never silent: every injected error
    /// surfaces as an eWCRC alert, a counter desync, or a MAC failure —
    /// no corrupted value is ever returned as valid data.
    #[test]
    fn random_bit_errors_never_cause_silent_corruption() {
        let mut ch = SecureChannel::with_interposer(
            EncryptionMode::Xts,
            40,
            BitErrorInjector::new(8_000, 0xACE1), // ~12% per transaction
        );
        let mut model = std::collections::HashMap::new();
        let mut channel_poisoned = false;
        for i in 0..300u64 {
            let addr = (i % 64) * 64;
            if i % 2 == 0 {
                let data = [i as u8; 64];
                match ch.write(addr, &data) {
                    WriteOutcome::Committed if !channel_poisoned => {
                        model.insert(addr, data);
                    }
                    WriteOutcome::Committed => {
                        // Possibly-corrupted commit: stop tracking this
                        // address so only untouched history is asserted.
                        model.remove(&addr);
                    }
                    WriteOutcome::EwcrcRejected => {
                        // Error caught at the chip; write suppressed. The
                        // old value remains the architected state — but a
                        // rejected *redirected* write may still leave the
                        // model stale; drop the entry conservatively.
                        model.remove(&addr);
                    }
                    _ => unreachable!("injector only corrupts in place"),
                }
                // An emac corruption on a committed write poisons the
                // stored MAC; every later read of it must fail. Track
                // conservatively: once any injection happened on a write
                // that still committed, reads may legitimately fail.
                if ch.interposer.injected > 0 {
                    channel_poisoned = true;
                }
            } else {
                // A read either verifies (and must match the model) or is
                // detected as tampered — an acceptable outcome.
                if let Ok(data) = ch.read(addr) {
                    if let Some(expected) = model.get(&addr) {
                        assert_eq!(
                            &data, expected,
                            "SILENT CORRUPTION at {addr:#x} after {} injections",
                            ch.interposer.injected
                        );
                    }
                }
            }
        }
        assert!(
            ch.interposer.injected > 10,
            "noise source must actually fire"
        );
    }

    /// Replaying captured *write-burst* signals to the chips at rest fails:
    /// the ECC chip's pad has advanced, so the replayed encrypted eWCRC
    /// decrypts to noise (this is how SecDDR blocks at-rest replay without
    /// trusting the data chips).
    #[test]
    fn replayed_write_burst_rejected_at_rest() {
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 21);
        let tx1 = ch.processor.begin_write(LINE, &[1; 64]);
        assert_eq!(ch.rank.accept_write(&tx1), WriteOutcome::Committed);
        let tx2 = ch.processor.begin_write(LINE, &[2; 64]);
        assert_eq!(ch.rank.accept_write(&tx2), WriteOutcome::Committed);
        // Attacker re-drives the captured first burst at the chip pins.
        assert_eq!(ch.rank.accept_write(&tx1), WriteOutcome::EwcrcRejected);
    }

    /// TCB boundary (Section III-E): an attacker who can bypass the ECC
    /// chip's logic and write its storage array directly — an in-package
    /// attack — defeats the scheme. The paper places exactly this out of
    /// scope; the test documents the boundary.
    #[test]
    fn in_package_tampering_is_the_tcb_boundary() {
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 22);
        ch.write(LINE, &[1; 64]);
        let (old_data, old_mac) = ch.rank.raw_stored(LINE).unwrap();
        ch.write(LINE, &[2; 64]);
        // Out-of-scope physical attack: rewrite both arrays in-package.
        ch.rank.tamper_stored(LINE, old_data, old_mac);
        assert_eq!(
            ch.read(LINE).unwrap(),
            [1; 64],
            "in-package replay succeeds — hence the ECC chip is in the TCB"
        );
    }

    /// DIMM-substitution / cold-boot replay (Section III-C): restoring a
    /// frozen snapshot desynchronizes the counters and every read fails.
    #[test]
    fn dimm_substitution_detected_by_stale_counters() {
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 23);
        ch.write(LINE, &[1; 64]);
        let frozen = ch.rank.snapshot();
        assert!(ch.read(LINE).is_ok());
        ch.write(LINE, &[2; 64]);
        // Attacker swaps in the frozen DIMM.
        ch.rank.restore(frozen);
        assert!(
            ch.read(LINE).is_err(),
            "stale counter state must not verify"
        );
    }

    /// Non-adversarial replacement (Section III-F): re-attestation with a
    /// fresh key/counter and cleared memory yields a working channel and no
    /// access to prior data.
    #[test]
    fn legitimate_replacement_reattests_cleanly() {
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 24);
        ch.write(LINE, &[1; 64]);
        // Platform-managed replacement.
        let new_kt = secddr_crypto::aes::Aes128::new(&[0x77; 16]);
        ch.rank.reattest(new_kt.clone(), 500);
        ch.processor = crate::processor::SecDdrProcessor::new(EncryptionMode::Xts, new_kt, 500, 99);
        // Old data is gone (cleared), new writes work.
        assert!(ch.rank.raw_stored(LINE).is_none());
        ch.write(LINE, &[3; 64]);
        assert_eq!(ch.read(LINE).unwrap(), [3; 64]);
    }
}
