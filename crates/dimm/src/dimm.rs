//! The DIMM rank: data chips, stored MACs, and the ECC chip's SecDDR logic
//! (Sections III-A, III-B, III-E of the paper).
//!
//! The ECC chip is the only trusted component on an untrusted DIMM. It
//! holds the transaction key register, the counter pair, and AES engines;
//! on writes it removes the write pad, checks the encrypted eWCRC against
//! the address it actually observed on the CCCA wires, and only then
//! commits; on reads it re-pads the stored MAC with a fresh read pad. It
//! never verifies data MACs — all verification is the processor's job.

use secddr_crypto::aes::Aes128;
use secddr_crypto::crc::{Ewcrc, WriteAddress};
use secddr_crypto::otp::TransactionCounter;

use crate::bus::{ReadResponse, WriteTransaction};
use crate::geometry;

use std::collections::HashMap;

/// What happened to a write on the DIMM / bus. Only [`Committed`] stores
/// data; everything else leaves the old `(data, MAC)` in place — which is
/// precisely what the stale-data attacks try to exploit and what the
/// protocol must detect later.
///
/// [`Committed`]: WriteOutcome::Committed
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The eWCRC verified and the write was performed.
    Committed,
    /// The ECC chip's encrypted eWCRC check failed (address/data tampering
    /// observed at the chip); the write was suppressed and the chip raised
    /// its alert signal.
    EwcrcRejected,
    /// The attacker suppressed the write on the bus; the DIMM never saw it.
    DroppedOnBus,
    /// The attacker converted the write command into a read.
    ConvertedToRead,
}

/// One rank of the DIMM with its ECC-chip security logic.
#[derive(Debug)]
pub struct DimmRank {
    /// Data-chip contents (ciphertext lines), keyed by canonical address.
    data: HashMap<u64, [u8; 64]>,
    /// ECC-chip contents: stored plaintext MACs (per Section III-A they
    /// are at rest un-padded; the pad only protects the bus).
    macs: HashMap<u64, u64>,
    /// Transaction key register inside the ECC chip.
    kt: Aes128,
    /// The chip's transaction counter pair.
    counter: TransactionCounter,
    /// Count of eWCRC alerts raised (DDR ALERT_n pulses).
    pub ewcrc_alerts: u64,
}

/// A frozen copy of the DIMM state, as captured by a cold-boot /
/// DIMM-substitution attacker (Section III-C). Data remanence preserves the
/// arrays *and* the ECC chip's last counter state.
#[derive(Debug, Clone)]
pub struct DimmSnapshot {
    data: HashMap<u64, [u8; 64]>,
    macs: HashMap<u64, u64>,
    counter: TransactionCounter,
}

impl DimmRank {
    /// Creates a rank that has completed attestation: it shares `kt` and
    /// the initial counter with the processor.
    pub fn new(kt: Aes128, initial_ct: u64) -> Self {
        Self {
            data: HashMap::new(),
            macs: HashMap::new(),
            kt,
            counter: TransactionCounter::new(initial_ct),
            ewcrc_alerts: 0,
        }
    }

    /// The chip's `(read, write)` counter state.
    pub fn counter_state(&self) -> (u64, u64) {
        self.counter.state()
    }

    /// Handles a write burst arriving at the chips. The address is whatever
    /// the CCCA wires carried — possibly corrupted in flight.
    pub fn accept_write(&mut self, tx: &WriteTransaction) -> WriteOutcome {
        // The chip derives OTPw from the address it observed. If the
        // attacker redirected the write, this pad differs from the
        // processor's and the decrypted eWCRC turns to noise.
        let pad = self.counter.write_pad(&self.kt, tx.addr.as_u64());
        let mac = pad.apply(tx.emac);
        let crc = pad.apply_crc(tx.ewcrc);
        if !Ewcrc::verify(&mac.to_le_bytes(), &tx.addr, crc) {
            self.ewcrc_alerts += 1;
            return WriteOutcome::EwcrcRejected;
        }
        let line = geometry::encode(&tx.addr);
        self.data.insert(line, tx.data);
        self.macs.insert(line, mac);
        WriteOutcome::Committed
    }

    /// Serves a read at the observed address: returns stored data and the
    /// stored MAC re-encrypted under a fresh read pad.
    pub fn serve_read(&mut self, addr: WriteAddress) -> ReadResponse {
        let line = geometry::encode(&addr);
        let data = self.data.get(&line).copied().unwrap_or([0u8; 64]);
        let mac = self.macs.get(&line).copied().unwrap_or(0);
        let pad = self.counter.read_pad(&self.kt);
        ReadResponse {
            data,
            emac: pad.apply(mac),
        }
    }

    /// Raw stored tuple for attacker inspection (the adversary can read
    /// bus traffic and probe chips' stored ciphertext; confidentiality of
    /// plaintext is the encryption engine's job, not SecDDR's).
    pub fn raw_stored(&self, line_addr: u64) -> Option<([u8; 64], u64)> {
        let canonical = geometry::encode(&geometry::decode(line_addr));
        Some((*self.data.get(&canonical)?, *self.macs.get(&canonical)?))
    }

    /// Directly overwrites the stored tuple, modelling an attacker with
    /// physical access to the chips at rest (e.g. replaying both data and
    /// MAC images captured earlier — the classic at-rest replay).
    pub fn tamper_stored(&mut self, line_addr: u64, data: [u8; 64], mac: u64) {
        let canonical = geometry::encode(&geometry::decode(line_addr));
        self.data.insert(canonical, data);
        self.macs.insert(canonical, mac);
    }

    /// Captures the full module state (cold-boot attacker freezing the
    /// DIMM).
    pub fn snapshot(&self) -> DimmSnapshot {
        DimmSnapshot {
            data: self.data.clone(),
            macs: self.macs.clone(),
            counter: self.counter,
        }
    }

    /// Replaces the module state with a previously captured snapshot
    /// (plugging the frozen DIMM back in).
    pub fn restore(&mut self, snap: DimmSnapshot) {
        self.data = snap.data;
        self.macs = snap.macs;
        self.counter = snap.counter;
    }

    /// Non-adversarial DIMM replacement (Section III-F): the platform
    /// re-attests, installing a fresh key and counter, and the processor
    /// clears memory — any prior content is discarded.
    pub fn reattest(&mut self, kt: Aes128, initial_ct: u64) {
        self.kt = kt;
        self.counter = TransactionCounter::new(initial_ct);
        self.data.clear();
        self.macs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank() -> DimmRank {
        DimmRank::new(Aes128::new(&[7; 16]), 0)
    }

    #[test]
    fn read_of_empty_line_returns_zeroes() {
        let mut r = rank();
        let resp = r.serve_read(geometry::decode(0x40));
        assert_eq!(resp.data, [0u8; 64]);
    }

    #[test]
    fn counter_advances_per_transaction() {
        let mut r = rank();
        let (r0, w0) = r.counter_state();
        let _ = r.serve_read(geometry::decode(0));
        assert_eq!(r.counter_state(), (r0 + 2, w0));
    }

    #[test]
    fn snapshot_restore_roundtrips_state() {
        let mut r = rank();
        let _ = r.serve_read(geometry::decode(0));
        let snap = r.snapshot();
        let _ = r.serve_read(geometry::decode(0x40));
        assert_ne!(r.counter_state(), snap.counter.state());
        r.restore(snap.clone());
        assert_eq!(r.counter_state(), snap.counter.state());
    }

    #[test]
    fn reattest_clears_memory() {
        let mut r = rank();
        r.tamper_stored(0x40, [1; 64], 99);
        assert!(r.raw_stored(0x40).is_some());
        r.reattest(Aes128::new(&[8; 16]), 100);
        assert!(r.raw_stored(0x40).is_none());
        assert_eq!(r.counter_state(), (100, 101));
    }

    #[test]
    fn ewcrc_alert_on_garbage_write() {
        let mut r = rank();
        // A transaction not produced by the legitimate processor: random
        // emac/ewcrc under the chip's pad will fail the CRC check with
        // overwhelming probability.
        let tx = WriteTransaction {
            addr: geometry::decode(0x80),
            data: [0xEE; 64],
            emac: 0x1234_5678_9ABC_DEF0,
            ewcrc: 0x4242,
        };
        assert_eq!(r.accept_write(&tx), WriteOutcome::EwcrcRejected);
        assert_eq!(r.ewcrc_alerts, 1);
        assert!(
            r.raw_stored(0x80).is_none(),
            "rejected write must not commit"
        );
    }
}
