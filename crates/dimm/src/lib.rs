//! Functional model of a SecDDR-protected DIMM, its memory bus, and the
//! attackers the paper defends against.
//!
//! Where the `dram-sim` crate answers *how fast*, this crate answers *is it
//! actually secure*: it models data bytes, MACs, E-MACs, eWCRCs, and
//! transaction counters end to end so that every attack scenario from
//! Sections II-C and III of the paper can be executed and its outcome
//! asserted:
//!
//! * bus replay of a stale `(data, MAC)` tuple — detected by E-MAC
//!   temporal uniqueness ([`attacks::BusReplay`]);
//! * write-address corruption (activate redirected to another row /
//!   column) — detected by the encrypted eWCRC inside the ECC chip
//!   ([`attacks::AddressCorruptor`]);
//! * dropped writes — detected by counter divergence
//!   ([`attacks::WriteDropper`]);
//! * write→read command conversion — detected by the even/odd counter
//!   parity split ([`attacks::CommandConverter`]);
//! * DIMM substitution / cold-boot replay — detected by stale transaction
//!   counters ([`DimmRank::snapshot`] / [`DimmRank::restore`]);
//! * man-in-the-middle on the attestation key exchange — rejected by
//!   endorsement-key signatures ([`attest`]).
//!
//! The model covers both TCB variants of the paper: the untrusted-DIMM
//! placement (security logic in the ECC chip) and the trusted-DIMM
//! placement (logic in the ECC data buffer) — functionally identical; the
//! difference is which physical attacks are in scope, which tests exercise
//! via the [`bus::Interposer`] hook placement.
//!
//! # Example
//!
//! ```
//! use dimm_model::{SecureChannel, EncryptionMode};
//!
//! let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 7);
//! ch.write(0x40, &[0xAB; 64]);
//! assert_eq!(ch.read(0x40).unwrap(), [0xAB; 64]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod attest;
pub mod bus;
pub mod dimm;
pub mod geometry;
pub mod invisimem;
pub mod module;
pub mod oblivious;
pub mod processor;

pub use bus::{Interposer, PassThrough, ReadResponse, WriteTransaction};
pub use dimm::{DimmRank, WriteOutcome};
pub use module::{Dimm, TcbPlacement};
pub use oblivious::ObliviousChannel;
pub use processor::{EncryptionMode, IntegrityError, SecDdrProcessor};

use secddr_crypto::aes::Aes128;

/// A processor↔rank secure channel with an attacker interposition point.
///
/// This is the top-level object functional tests drive: it owns the
/// processor-side SecDDR endpoint, one DIMM rank, and the [`Interposer`]
/// sitting on the bus between them.
#[derive(Debug)]
pub struct SecureChannel<I: Interposer = PassThrough> {
    /// Processor-side security endpoint (memory encryption engine).
    pub processor: SecDdrProcessor,
    /// The DIMM rank with its ECC-chip security logic.
    pub rank: DimmRank,
    /// The attacker (or [`PassThrough`]) on the bus.
    pub interposer: I,
}

impl SecureChannel<PassThrough> {
    /// Builds an honest, already-attested channel: both ends share a
    /// transaction key and an initial counter, as after the boot-time
    /// attestation of Section III-F.
    pub fn new_attested(mode: EncryptionMode, seed: u64) -> Self {
        Self::with_interposer(mode, seed, PassThrough)
    }
}

impl<I: Interposer> SecureChannel<I> {
    /// As [`SecureChannel::new_attested`] but with an attacker installed.
    pub fn with_interposer(mode: EncryptionMode, seed: u64, interposer: I) -> Self {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        key[8] = 0x5D;
        let kt = Aes128::new(&key);
        let initial_ct = seed.wrapping_mul(2); // even
        let processor = SecDdrProcessor::new(mode, kt.clone(), initial_ct, seed);
        let rank = DimmRank::new(kt, initial_ct);
        Self {
            processor,
            rank,
            interposer,
        }
    }

    /// A full secure write: encrypt, MAC, pad, traverse the (possibly
    /// hostile) bus, ECC-chip checks, commit. The outcome reports what the
    /// bus/DIMM observed; processor-side detection of a failed write is
    /// deferred to the next read, exactly as in the paper.
    pub fn write(&mut self, line_addr: u64, data: &[u8; 64]) -> WriteOutcome {
        let mut tx = self.processor.begin_write(line_addr, data);
        match self.interposer.on_write(&mut tx) {
            bus::WriteAction::Deliver => self.rank.accept_write(&tx),
            bus::WriteAction::Drop => WriteOutcome::DroppedOnBus,
            bus::WriteAction::ConvertToRead => {
                // The DIMM sees a read command instead; it returns data the
                // attacker intercepts. The write never commits.
                let _ = self.rank.serve_read(tx.addr);
                WriteOutcome::ConvertedToRead
            }
        }
    }

    /// A full secure read: command over the bus, DIMM response, pad
    /// removal, MAC verification.
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError::MacMismatch`] when verification fails —
    /// i.e. whenever any of the paper's attacks was attempted.
    pub fn read(&mut self, line_addr: u64) -> Result<[u8; 64], IntegrityError> {
        let mut addr = geometry::decode(line_addr);
        self.interposer.on_read_cmd(&mut addr);
        let mut resp = self.rank.serve_read(addr);
        self.interposer.on_read_resp(&mut resp);
        self.processor.finish_read(line_addr, &resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_channel_roundtrips() {
        for mode in [EncryptionMode::Xts, EncryptionMode::Ctr] {
            let mut ch = SecureChannel::new_attested(mode, 1);
            let data = [0x3C; 64];
            assert_eq!(ch.write(0x1000, &data), WriteOutcome::Committed);
            assert_eq!(ch.read(0x1000).unwrap(), data);
        }
    }

    #[test]
    fn many_lines_roundtrip() {
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 2);
        for i in 0..100u64 {
            let mut data = [0u8; 64];
            data[0] = i as u8;
            ch.write(i * 64, &data);
        }
        for i in 0..100u64 {
            assert_eq!(ch.read(i * 64).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn overwrites_return_latest_value() {
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 3);
        ch.write(0x40, &[1; 64]);
        ch.write(0x40, &[2; 64]);
        assert_eq!(ch.read(0x40).unwrap(), [2; 64]);
    }

    #[test]
    fn uninitialized_read_is_detected() {
        // Reading a never-written line returns zeroed storage whose MAC
        // does not verify under the line address; the processor flags it.
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 4);
        assert!(ch.read(0x9000).is_err());
    }

    #[test]
    fn ciphertext_on_bus_differs_from_plaintext() {
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 5);
        let data = [0x77; 64];
        let tx = ch.processor.begin_write(0x40, &data);
        assert_ne!(tx.data, data, "bus data must be encrypted");
    }
}
