//! Traffic-oblivious SecDDR: the paper's future-work extension
//! (Section VIII — "SecDDR can be extended to use the on-DIMM encryption
//! units to encrypt the address and command for traffic obliviousness").
//!
//! The memory controller permutes the line address with a keyed
//! format-preserving permutation (shared with the ECC-side logic via the
//! attested `Kt`); a bus observer sees valid-but-uncorrelated DRAM
//! addresses, hiding the access pattern's spatial structure. All SecDDR
//! integrity machinery runs unchanged *underneath* the permuted address
//! space — the E-MAC and eWCRC bind the permuted (bus-visible) address,
//! which is exactly the address an attacker would have to tamper with.

use secddr_crypto::aes::Aes128;
use secddr_crypto::feistel::FeistelPermutation;

use crate::bus::Interposer;
use crate::dimm::WriteOutcome;
use crate::processor::IntegrityError;
use crate::{EncryptionMode, SecureChannel};

/// Address-space width covered by the permutation (line index bits).
const LINE_INDEX_BITS: u32 = 32;

/// A [`SecureChannel`] whose bus addresses are obfuscated by a keyed
/// permutation over line indices.
///
/// ```
/// use dimm_model::oblivious::ObliviousChannel;
/// use dimm_model::EncryptionMode;
///
/// let mut ch = ObliviousChannel::new_attested(EncryptionMode::Xts, 9);
/// ch.write(0x40, &[1u8; 64]);
/// assert_eq!(ch.read(0x40).unwrap(), [1u8; 64]);
/// assert_ne!(ch.bus_address_of(0x40), 0x40, "bus address is obfuscated");
/// ```
#[derive(Debug)]
pub struct ObliviousChannel<I: Interposer = crate::PassThrough> {
    inner: SecureChannel<I>,
    permutation: FeistelPermutation,
}

impl ObliviousChannel<crate::PassThrough> {
    /// Builds an attested oblivious channel.
    pub fn new_attested(mode: EncryptionMode, seed: u64) -> Self {
        Self::with_interposer(mode, seed, crate::PassThrough)
    }
}

impl<I: Interposer> ObliviousChannel<I> {
    /// Builds an attested oblivious channel with an attacker installed on
    /// the (obfuscated) bus.
    pub fn with_interposer(mode: EncryptionMode, seed: u64, interposer: I) -> Self {
        let inner = SecureChannel::with_interposer(mode, seed, interposer);
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        key[15] = 0x0B;
        Self {
            inner,
            permutation: FeistelPermutation::new(&Aes128::new(&key), LINE_INDEX_BITS),
        }
    }

    /// The bus-visible (permuted) byte address for a logical line address.
    pub fn bus_address_of(&self, line_addr: u64) -> u64 {
        self.permutation.permute((line_addr >> 6) & 0xFFFF_FFFF) << 6
    }

    /// Secure write at a logical address; the bus carries the permuted
    /// address.
    pub fn write(&mut self, line_addr: u64, data: &[u8; 64]) -> WriteOutcome {
        let bus_addr = self.bus_address_of(line_addr);
        self.inner.write(bus_addr, data)
    }

    /// Secure read at a logical address.
    ///
    /// # Errors
    ///
    /// Propagates [`IntegrityError`] from the underlying SecDDR channel.
    pub fn read(&mut self, line_addr: u64) -> Result<[u8; 64], IntegrityError> {
        let bus_addr = self.bus_address_of(line_addr);
        self.inner.read(bus_addr)
    }

    /// The attacker's vantage point (for tests).
    pub fn interposer_mut(&mut self) -> &mut I {
        &mut self.inner.interposer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::BusReplay;

    #[test]
    fn roundtrips_like_a_normal_channel() {
        let mut ch = ObliviousChannel::new_attested(EncryptionMode::Xts, 61);
        for i in 0..50u64 {
            let mut data = [0u8; 64];
            data[0] = i as u8;
            assert_eq!(ch.write(i * 64, &data), WriteOutcome::Committed);
        }
        for i in 0..50u64 {
            assert_eq!(ch.read(i * 64).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn sequential_logical_addresses_scatter_on_the_bus() {
        let ch = ObliviousChannel::new_attested(EncryptionMode::Xts, 62);
        let adjacent = (0..500u64)
            .filter(|i| {
                let a = ch.bus_address_of(i * 64);
                let b = ch.bus_address_of((i + 1) * 64);
                a.abs_diff(b) == 64
            })
            .count();
        assert!(adjacent < 3, "{adjacent} sequential bus pairs leaked");
    }

    #[test]
    fn distinct_logical_lines_never_collide() {
        let ch = ObliviousChannel::new_attested(EncryptionMode::Xts, 63);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000u64 {
            assert!(
                seen.insert(ch.bus_address_of(i * 64)),
                "collision at line {i}"
            );
        }
    }

    #[test]
    fn replay_protection_is_preserved_under_obliviousness() {
        let mut ch =
            ObliviousChannel::with_interposer(EncryptionMode::Xts, 64, BusReplay::new(0, 1));
        ch.write(0x40, &[1; 64]);
        assert!(ch.read(0x40).is_ok());
        ch.write(0x40, &[2; 64]);
        assert!(ch.read(0x40).is_err(), "replay must still be detected");
    }

    #[test]
    fn different_boots_permute_differently() {
        let a = ObliviousChannel::new_attested(EncryptionMode::Xts, 65);
        let b = ObliviousChannel::new_attested(EncryptionMode::Xts, 66);
        let differing = (0..100u64)
            .filter(|i| a.bus_address_of(i * 64) != b.bus_address_of(i * 64))
            .count();
        assert!(differing > 90);
    }
}
