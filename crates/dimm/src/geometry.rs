//! Line-address ↔ DRAM-coordinate mapping for the functional model.
//!
//! The functional DIMM only needs a deterministic, injective mapping so the
//! eWCRC can bind rank/bank/row/column; the performance-accurate mapping
//! lives in `dram-sim`.

use secddr_crypto::crc::WriteAddress;

const COL_BITS: u32 = 7; // 128 lines per row
const BANK_BITS: u32 = 2;
const BG_BITS: u32 = 2;
const RANK_BITS: u32 = 1;

/// Decodes a byte address into DRAM write coordinates.
pub fn decode(line_addr: u64) -> WriteAddress {
    let mut a = line_addr >> 6;
    let column = (a & ((1 << COL_BITS) - 1)) as u16;
    a >>= COL_BITS;
    let bank = (a & ((1 << BANK_BITS) - 1)) as u8;
    a >>= BANK_BITS;
    let bank_group = (a & ((1 << BG_BITS) - 1)) as u8;
    a >>= BG_BITS;
    let rank = (a & ((1 << RANK_BITS) - 1)) as u8;
    a >>= RANK_BITS;
    let row = (a & 0xFFFF_FFFF) as u32;
    WriteAddress {
        rank,
        bank_group,
        bank,
        row,
        column,
    }
}

/// Re-encodes coordinates to a canonical line address (inverse of
/// [`decode`]).
pub fn encode(w: &WriteAddress) -> u64 {
    let mut a = u64::from(w.row);
    a = (a << RANK_BITS) | u64::from(w.rank);
    a = (a << BG_BITS) | u64::from(w.bank_group);
    a = (a << BANK_BITS) | u64::from(w.bank);
    a = (a << COL_BITS) | u64::from(w.column);
    a << 6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        // Addressable range is 50 bits (32-bit row + 18 low bits).
        for addr in [
            0u64,
            0x40,
            0x1000,
            0xDEAD_BE40,
            0xFFFF_FFC0,
            0x2_1234_5678_9AC0 & !63,
        ] {
            assert_eq!(encode(&decode(addr)), addr, "{addr:#x}");
        }
    }

    #[test]
    fn adjacent_lines_share_row() {
        let a = decode(0);
        let b = decode(64);
        assert_eq!(a.row, b.row);
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn distinct_addresses_distinct_coordinates() {
        let a = decode(0x1000);
        let b = decode(0x2000);
        assert_ne!(a, b);
    }
}
